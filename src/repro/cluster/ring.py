"""Consistent-hash ring: ``user_id`` → shard name.

The MSoD algorithm's correctness depends on one invariant above all
others: *every decision for a user must see that user's full retained
ADI history*.  The cluster therefore routes by ``user_id`` — a user's
read-modify-write cycle always lands on exactly one primary — and uses
consistent hashing so that adding or removing a shard relocates only
``~1/n`` of the users instead of rehashing everyone (which would
require moving everyone's history at once).

Virtual nodes smooth the distribution: each shard owns ``vnodes``
points on the ring, and a user maps to the first point clockwise of
their own hash.  Hashing is BLAKE2b (stdlib, keyed-off, 8-byte digest)
rather than ``hash()`` — deterministic across processes and Python
versions, which matters because the client, the coordinator and every
node must all agree on the mapping without talking to each other.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence


def _point(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """An immutable consistent-hash ring over named shards."""

    def __init__(self, shard_names: Iterable[str], vnodes: int = 64) -> None:
        names = list(shard_names)
        if not names:
            raise ValueError("a hash ring needs at least one shard")
        if any(not name for name in names):
            raise ValueError("shard names must be non-empty")
        if len(set(names)) != len(names):
            raise ValueError("shard names must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._names = tuple(names)
        self._vnodes = vnodes
        points: list[tuple[int, str]] = []
        for name in names:
            for replica in range(vnodes):
                points.append((_point(f"{name}#{replica}"), name))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [name for _, name in points]

    @property
    def shard_names(self) -> tuple[str, ...]:
        return self._names

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def shard_for(self, user_id: str) -> str:
        """The shard owning this user (first vnode clockwise)."""
        index = bisect.bisect_right(self._points, _point(user_id))
        if index == len(self._points):
            index = 0  # wrap past twelve o'clock
        return self._owners[index]

    def distribution(self, user_ids: Sequence[str]) -> dict[str, int]:
        """How many of the given users each shard owns (for tests/ops)."""
        counts = {name: 0 for name in self._names}
        for user_id in user_ids:
            counts[self.shard_for(user_id)] += 1
        return counts

"""Consistent-hash ring: ``user_id`` → shard name.

The MSoD algorithm's correctness depends on one invariant above all
others: *every decision for a user must see that user's full retained
ADI history*.  The cluster therefore routes by ``user_id`` — a user's
read-modify-write cycle always lands on exactly one primary — and uses
consistent hashing so that adding or removing a shard relocates only
``~1/n`` of the users instead of rehashing everyone (which would
require moving everyone's history at once).

Virtual nodes smooth the distribution: each shard owns ``vnodes``
points on the ring, and a user maps to the first point clockwise of
their own hash.  Hashing is BLAKE2b (stdlib, keyed-off, 8-byte digest)
rather than ``hash()`` — deterministic across processes and Python
versions, which matters because the client, the coordinator and every
node must all agree on the mapping without talking to each other.

Resharding (``repro.cluster.reshard``) leans on one more consistent-
hashing property: adding a shard moves users only *onto* the new shard
and removing one moves users only *off* it — no user ever moves between
two surviving shards.  :class:`RingDiff` makes that explicit: it pairs
an old and a new ring and answers, per user, whether (and where) the
user moves, which is exactly the predicate the migration state machine
feeds into ``recover_retained_adi(user_filter=...)``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Iterable, Sequence


def _point(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """An immutable consistent-hash ring over named shards."""

    def __init__(self, shard_names: Iterable[str], vnodes: int = 64) -> None:
        names = list(shard_names)
        if not names:
            raise ValueError("a hash ring needs at least one shard")
        if any(not name for name in names):
            raise ValueError("shard names must be non-empty")
        if len(set(names)) != len(names):
            raise ValueError("shard names must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._names = tuple(names)
        self._vnodes = vnodes
        points: list[tuple[int, str]] = []
        for name in names:
            for replica in range(vnodes):
                points.append((_point(f"{name}#{replica}"), name))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [name for _, name in points]

    @property
    def shard_names(self) -> tuple[str, ...]:
        return self._names

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def shard_for(self, user_id: str) -> str:
        """The shard owning this user (first vnode clockwise)."""
        index = bisect.bisect_right(self._points, _point(user_id))
        if index == len(self._points):
            index = 0  # wrap past twelve o'clock
        return self._owners[index]

    def distribution(self, user_ids: Sequence[str]) -> dict[str, int]:
        """How many of the given users each shard owns (for tests/ops)."""
        counts = {name: 0 for name in self._names}
        for user_id in user_ids:
            counts[self.shard_for(user_id)] += 1
        return counts

    # -- versioned topologies ------------------------------------------
    def with_shard(self, name: str) -> "HashRing":
        """A new ring with ``name`` added (the split topology)."""
        if name in self._names:
            raise ValueError(f"shard {name!r} is already on the ring")
        return HashRing((*self._names, name), vnodes=self._vnodes)

    def without_shard(self, name: str) -> "HashRing":
        """A new ring with ``name`` removed (the drain topology)."""
        if name not in self._names:
            raise ValueError(f"shard {name!r} is not on the ring")
        survivors = [other for other in self._names if other != name]
        if not survivors:
            raise ValueError("cannot drain the last shard")
        return HashRing(survivors, vnodes=self._vnodes)

    def to_dict(self) -> dict:
        """Serializable topology (for coordinator-state persistence)."""
        return {"shards": list(self._names), "vnodes": self._vnodes}

    @classmethod
    def from_dict(cls, data: dict) -> "HashRing":
        return cls(data["shards"], vnodes=int(data.get("vnodes", 64)))

    def diff(self, new_ring: "HashRing") -> "RingDiff":
        """The ownership diff from this ring to ``new_ring``."""
        return RingDiff(self, new_ring)


class RingDiff:
    """Which users move — and where — between two ring topologies.

    Consistent hashing guarantees a user moves only when the first
    vnode clockwise of their hash changed owner, so for a single-shard
    add (split) every move lands *on* the added shard and for a
    single-shard remove (drain) every move departs *from* the removed
    shard; :meth:`moves` enumerates the affected ``(source, target)``
    shard pairs and :meth:`moved` is the per-user predicate the
    migration feeds into trail-replay catch-up and per-user fencing.
    """

    def __init__(self, old_ring: HashRing, new_ring: HashRing) -> None:
        if old_ring.vnodes != new_ring.vnodes:
            raise ValueError(
                "ring diffs require identical vnodes on both topologies"
            )
        self.old_ring = old_ring
        self.new_ring = new_ring
        self.added = tuple(
            name
            for name in new_ring.shard_names
            if name not in old_ring.shard_names
        )
        self.removed = tuple(
            name
            for name in old_ring.shard_names
            if name not in new_ring.shard_names
        )

    def moved(self, user_id: str) -> tuple[str, str] | None:
        """``(old_owner, new_owner)`` when the user moves, else None."""
        old_owner = self.old_ring.shard_for(user_id)
        new_owner = self.new_ring.shard_for(user_id)
        if old_owner == new_owner:
            return None
        return (old_owner, new_owner)

    def moves(self) -> list[tuple[str, str]]:
        """Every ``(source, target)`` shard pair with a moving range.

        For a pure add, sources are the surviving old shards and the
        single target is each added shard; for a pure remove, the
        single source is each removed shard and targets are the
        survivors.  Mixed diffs fall back to the full cross product of
        changed ownership directions.
        """
        pairs: list[tuple[str, str]] = []
        for added in self.added:
            for source in self.old_ring.shard_names:
                if source not in self.removed:
                    pairs.append((source, added))
        for removed in self.removed:
            for target in self.new_ring.shard_names:
                if target not in self.added:
                    pairs.append((removed, target))
        return pairs

    def mover_predicate(
        self, source: str, target: str
    ) -> Callable[[str], bool]:
        """``user_id -> bool``: does this user move source → target?"""
        old_ring, new_ring = self.old_ring, self.new_ring

        def moving(user_id: str) -> bool:
            return (
                old_ring.shard_for(user_id) == source
                and new_ring.shard_for(user_id) == target
            )

        return moving

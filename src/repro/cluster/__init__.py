"""repro.cluster — horizontal scale-out for the MSoD PDP.

The paper's PDP is a single process holding all retained ADI (Section
5), with recovery-by-replay of its audit trails named as the
scalability limitation (Section 6).  This subsystem scales it out while
preserving the paper's one non-negotiable invariant: *no two nodes may
ever grant an MMER/MMEP-violating pair for the same user*.

* :class:`~repro.cluster.ring.HashRing` — consistent-hash routing by
  ``user_id``: each user's retained-ADI read-modify-write stays on
  exactly one shard primary.
* :class:`~repro.cluster.node.ClusterNode` — a single-node
  authorization server plus role/epoch gating, a durable audit sink
  and the exactly-once request journal.
* :class:`~repro.cluster.coordinator.LocalCluster` — shards of
  primary+standby pairs, health checking, audit-log-shipped standby
  catch-up (the paper's recovery replay, reused as replication) and
  fenced failover.
* :class:`~repro.cluster.client.ClusterPDP` — the routing,
  epoch-stamping, failover-surviving client.
* :mod:`~repro.cluster.reshard` — online topology changes: versioned
  ring diffs (:class:`~repro.cluster.ring.RingDiff`), the
  :class:`~repro.cluster.reshard.Migration` state machine the
  coordinator drives to split/drain shards under live load with zero
  MMER violations, and the resident-user rebalance planner.

See ``docs/CLUSTER.md`` for the full design (including the "Resizing
the cluster" cutover-ordering argument).
"""

from repro.cluster.client import ClusterPDP
from repro.cluster.coordinator import LocalCluster, ShardState
from repro.cluster.node import ROLE_PRIMARY, ROLE_STANDBY, ClusterNode
from repro.cluster.reshard import Migration, plan_rebalance
from repro.cluster.ring import HashRing, RingDiff

__all__ = [
    "ClusterPDP",
    "ClusterNode",
    "HashRing",
    "LocalCluster",
    "Migration",
    "ROLE_PRIMARY",
    "ROLE_STANDBY",
    "RingDiff",
    "ShardState",
    "plan_rebalance",
]

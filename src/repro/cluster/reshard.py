"""Online resharding: grow/shrink the cluster under live load.

The cluster pinned users to shards with a fixed-topology hash ring
because the MSoD invariant demands that one user's retained ADI is
evaluated by exactly one authority.  This module composes the
primitives the cluster already trusts — sealed trail lineages, epoch
fencing, idempotent trail replay (``recover_retained_adi``), the
exactly-once request journal and route-version bumps — into a
coordinator-driven migration that changes the topology *without*
violating that invariant for even one decision:

1. **catch-up** — the target shard's primary imports the moving
   users' decision events from every trail lineage the source shard
   has ever produced (a mid-migration failover just adds a lineage),
   repeatedly, until the per-tick delta converges to the live tail;
2. **cutover** — the new ring is installed on the source shard's
   nodes under a bumped fencing epoch, so the source's decide gate
   *and* audit sink refuse the moving users (``ERR_FENCED``) and the
   movers' trail history becomes quiescent; one final import drains
   the tail (journal entries ride along, keeping in-flight
   ``request_id`` retries exactly-once); the movers' now-orphaned
   records are purged from the source; the new ring is installed
   everywhere and the route version bumps so clients re-route.

A :class:`Migration` is a pure, JSON-serialisable state record — the
coordinator persists it alongside its topology on every transition, so
a coordinator crash mid-migration resumes the same phase instead of
resetting (each phase is idempotent by construction: imports dedupe,
fences re-apply, purges re-purge nothing).

See ``docs/CLUSTER.md`` ("Resizing the cluster") for the operator
runbook and the full ordering argument.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.ring import HashRing, RingDiff
from repro.errors import ClusterError

KIND_SPLIT = "split"
KIND_DRAIN = "drain"

PHASE_CATCHUP = "catchup"
PHASE_CUTOVER = "cutover"
PHASE_DONE = "done"

_PHASES = (PHASE_CATCHUP, PHASE_CUTOVER, PHASE_DONE)


class Migration:
    """Durable state of one in-flight topology change.

    Everything here is derived-from or serialisable-to plain JSON: the
    coordinator writes it into ``coordinator-state.json`` on every
    phase transition, and a restarted coordinator rebuilds the exact
    same object with :meth:`from_dict` and keeps ticking.
    """

    def __init__(
        self,
        kind: str,
        subject: str,
        old_shards: tuple[str, ...] | list[str],
        new_shards: tuple[str, ...] | list[str],
        vnodes: int,
        *,
        phase: str = PHASE_CATCHUP,
        ticks: int = 0,
        users_moved: int = 0,
        events_imported: int = 0,
        trail_dirs: dict[str, list[str]] | None = None,
        cursors: dict[str, dict] | None = None,
        converge_events: int = 32,
        max_catchup_ticks: int = 50,
        cutover_pause_s: float | None = None,
    ) -> None:
        if kind not in (KIND_SPLIT, KIND_DRAIN):
            raise ClusterError(f"unknown migration kind {kind!r}")
        if phase not in _PHASES:
            raise ClusterError(f"unknown migration phase {phase!r}")
        self.kind = kind
        self.subject = subject
        self.old_shards = tuple(old_shards)
        self.new_shards = tuple(new_shards)
        self.vnodes = vnodes
        self.phase = phase
        self.ticks = ticks
        self.users_moved = users_moved
        self.events_imported = events_imported
        # Every trail directory each source shard's lineage has ever
        # exposed.  A source-primary kill mid-migration promotes a
        # standby with a *fresh* trail; the moved users' older history
        # lives only in the sealed predecessor, so imports must keep
        # walking every lineage, not just the current primary's.
        self.trail_dirs: dict[str, list[str]] = {
            source: list(dirs) for source, dirs in (trail_dirs or {}).items()
        }
        # Import cursors, keyed "<target>@<trail_dir>": the
        # TrailFollower position (segment, byte offset, chain tip)
        # where the target's previous import of that lineage stopped.
        # Purely an optimisation — ticks read, parse and verify only
        # the *new* tail instead of rescanning history (which would
        # also defeat convergence: a full rescan's per-tick delta
        # tracks the live arrival rate, not the remaining lag).  A
        # crash that loses an update just re-reads from the persisted
        # position; imports dedupe.
        self.cursors: dict[str, dict] = {
            key: dict(value) for key, value in (cursors or {}).items()
        }
        self.converge_events = converge_events
        self.max_catchup_ticks = max_catchup_ticks
        self.cutover_pause_s = cutover_pause_s
        self._diff: RingDiff | None = None

    # ------------------------------------------------------------------
    @property
    def diff(self) -> RingDiff:
        if self._diff is None:
            self._diff = RingDiff(
                HashRing(self.old_shards, vnodes=self.vnodes),
                HashRing(self.new_shards, vnodes=self.vnodes),
            )
        return self._diff

    def moves(self) -> list[tuple[str, str, Callable[[str], bool]]]:
        """``(source, target, mover_predicate)`` per moving user-range."""
        diff = self.diff
        return [
            (source, target, diff.mover_predicate(source, target))
            for source, target in diff.moves()
        ]

    def leaving_predicate(self, source: str) -> Callable[[str], bool]:
        """``user_id -> bool``: does this user move *off* ``source``?"""
        diff = self.diff

        def leaving(user_id: str) -> bool:
            return (
                diff.old_ring.shard_for(user_id) == source
                and diff.new_ring.shard_for(user_id) != source
            )

        return leaving

    def sources(self) -> tuple[str, ...]:
        """The shards whose users move away (fenced at cutover)."""
        seen: list[str] = []
        for source, _ in self.diff.moves():
            if source not in seen:
                seen.append(source)
        return tuple(seen)

    def note_trail_dir(self, source: str, trail_dir: str) -> None:
        dirs = self.trail_dirs.setdefault(source, [])
        if trail_dir not in dirs:
            dirs.append(trail_dir)

    def cursor(self, target: str, trail_dir: str) -> dict | None:
        return self.cursors.get(f"{target}@{trail_dir}")

    def set_cursor(
        self, target: str, trail_dir: str, position: dict
    ) -> None:
        self.cursors[f"{target}@{trail_dir}"] = position

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "old_shards": list(self.old_shards),
            "new_shards": list(self.new_shards),
            "vnodes": self.vnodes,
            "phase": self.phase,
            "ticks": self.ticks,
            "users_moved": self.users_moved,
            "events_imported": self.events_imported,
            "trail_dirs": {
                source: list(dirs)
                for source, dirs in self.trail_dirs.items()
            },
            "cursors": {
                key: dict(value) for key, value in self.cursors.items()
            },
            "converge_events": self.converge_events,
            "max_catchup_ticks": self.max_catchup_ticks,
            "cutover_pause_s": self.cutover_pause_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Migration":
        return cls(
            data["kind"],
            data["subject"],
            data["old_shards"],
            data["new_shards"],
            int(data["vnodes"]),
            phase=data.get("phase", PHASE_CATCHUP),
            ticks=int(data.get("ticks", 0)),
            users_moved=int(data.get("users_moved", 0)),
            events_imported=int(data.get("events_imported", 0)),
            trail_dirs=data.get("trail_dirs"),
            cursors=data.get("cursors"),
            converge_events=int(data.get("converge_events", 32)),
            max_catchup_ticks=int(data.get("max_catchup_ticks", 50)),
            cutover_pause_s=data.get("cutover_pause_s"),
        )


def plan_rebalance(
    resident_users: dict[str, int], *, threshold: float = 1.5
) -> dict:
    """Imbalance report from the per-shard ``store.stats()`` gauges.

    ``imbalance`` is the hottest shard's resident-user count over the
    per-shard mean; at or above ``threshold`` the plan recommends a
    split (consistent hashing takes load from *every* shard, the
    hottest most of all, so "split" is the rebalancing move — there is
    no user shuffling between surviving shards to plan).
    """
    if not resident_users:
        raise ClusterError("rebalance needs at least one serving shard")
    total = sum(resident_users.values())
    mean = total / len(resident_users)
    hot_shard, hot_count = max(
        resident_users.items(), key=lambda item: (item[1], item[0])
    )
    imbalance = (hot_count / mean) if mean > 0 else 1.0
    return {
        "resident_users": dict(resident_users),
        "total_users": total,
        "mean_users": round(mean, 2),
        "hot_shard": hot_shard,
        "imbalance": round(imbalance, 3),
        "threshold": threshold,
        "action": "split" if imbalance >= threshold else "none",
    }

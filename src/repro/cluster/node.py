"""One member of an MSoD cluster shard: a primary or a warm standby.

A ``ClusterNode`` wraps the single-node serving stack unchanged — the
same :class:`~repro.core.engine.MSoDEngine`,
:class:`~repro.server.service.AuthorizationService` and
:class:`~repro.server.testing.ServerThread` — and adds exactly three
cluster concerns, all injected through hooks the base server already
exposes:

**Role + epoch gating** (``decide_gate``).  Only the shard's primary
decides; a standby (or a deposed primary) answers ``not-primary`` so a
client with a stale routing table can never split one user's retained
ADI across two nodes.  Every decide frame may carry the client's route
``epoch``; a mismatch against the node's own epoch answers ``fenced``
— the deposed primary's late traffic and the stale client's misdirected
traffic are both rejected before touching the engine.

**Durable audit shipping** (``audit_sink``).  Every decision is
appended — fsync'd by default — to the node's own trail directory
*before* the client sees the response (the service calls the sink ahead
of resolving the decide future).  That ordering is the whole failover
story: an acknowledged decision is always in the trail, so the standby
that replays the trail holds every grant any client has seen.

**Exactly-once decides** (the request journal).  The sink also records
each decision payload by ``request_id``; a promoted standby rebuilds
the same journal from replay.  A client that retries a decide after
failover therefore gets the recorded outcome back instead of a second
evaluation — the one case where retrying a decide is safe.  The
journal is bounded (``journal_max``, FIFO eviction): retries only need
the recent outcomes spanning a failover window, so a long-running node
does not grow memory with lifetime request volume.
"""

from __future__ import annotations

import threading

from repro.audit.recovery import (
    decision_event_payload,
    recover_retained_adi,
)
from repro.audit.trail import EVENT_DECISION, AuditTrailManager
from repro.core.decision import Decision
from repro.core.engine import MSoDEngine
from repro.core.policy import MSoDPolicySet
from repro.core.retained_adi import InMemoryRetainedADIStore, RetainedADIStore
from repro.errors import ClusterError
from repro.server import protocol
from repro.server.service import AuthorizationService
from repro.server.testing import ServerThread
from repro.verify.whatif import DecisionFlip, what_if_replay

ROLE_PRIMARY = "primary"
ROLE_STANDBY = "standby"


class _BoundedJournal(dict):
    """``request_id -> payload`` with FIFO eviction beyond a cap.

    Exactly-once retry dedupe only needs outcomes recent enough to span
    a failover window, so the oldest entry is evicted once the cap is
    reached (dict preserves insertion order, and both the audit sink
    and trail replay insert in decision order).  A re-inserted id moves
    to the back so a hot request_id stays resident.
    """

    def __init__(self, max_entries: int) -> None:
        super().__init__()
        if max_entries < 1:
            raise ClusterError("journal_max must be >= 1")
        self._max_entries = max_entries

    def __setitem__(self, key: str, value: dict) -> None:
        if key in self:
            del self[key]
        elif len(self) >= self._max_entries:
            del self[next(iter(self))]
        super().__setitem__(key, value)


def _request_identity(wire_request: dict) -> tuple:
    """What makes two decide frames "the same request" for dedupe."""
    return (
        wire_request.get("user_id"),
        tuple(tuple(role) for role in wire_request.get("roles", ())),
        wire_request.get("operation"),
        wire_request.get("target"),
        wire_request.get("context_instance"),
        wire_request.get("timestamp"),
    )


def _decision_wire_from_payload(payload: dict) -> dict:
    """Rebuild a ``decide`` response body from a journaled audit payload.

    The audit payload keeps everything the retained ADI needs (effect,
    request, adds, purges) but not the structured violation object, so
    a deduplicated retry carries the recorded effect and reason with
    ``violation: null`` — enough for any enforcement point, and the
    store-digest oracle never sees a difference because no second
    evaluation happens.
    """
    adds = list(payload.get("adi_adds", ()))
    wire = {
        "effect": payload["effect"],
        "request": dict(payload["request"]),
        "violation": None,
        "matched_policy_ids": list(payload.get("matched_policies", ())),
        "records_added": len(adds),
        "records_purged": 0,
        "reason": payload.get("reason", ""),
        "adi_adds": adds,
        "adi_purged_contexts": list(payload.get("adi_purges", ())),
    }
    # A journaled outcome keeps the policy version it was decided
    # under; the retry must see that version, not whatever is active
    # now (the whole point of dedupe is "no second evaluation").
    if payload.get("policy_epoch"):
        wire["policy_epoch"] = payload["policy_epoch"]
        wire["policy_digest"] = payload.get("policy_digest", "")
    return wire


class ClusterNode:
    """One authorization-server node owned by a cluster shard."""

    def __init__(
        self,
        name: str,
        shard: str,
        policy_set: MSoDPolicySet,
        store: RetainedADIStore,
        trail_dir: str,
        audit_key: bytes,
        *,
        role: str = ROLE_STANDBY,
        epoch: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        service_shards: int = 2,
        queue_depth: int = 256,
        batch_max: int = 32,
        audit_max_records: int = 10_000,
        audit_max_bytes: int | None = None,
        fsync: bool = True,
        journal_max: int | None = None,
    ) -> None:
        if role not in (ROLE_PRIMARY, ROLE_STANDBY):
            raise ValueError(f"unknown node role {role!r}")
        self.name = name
        self.shard = shard
        self._policy_set = policy_set
        self._store = store
        self._audit_key = audit_key
        self._role = role
        self._epoch = epoch
        self._lock = threading.Lock()
        # Default cap: two full trail rotations — comfortably more
        # history than any failover-window retry needs.
        self._journal: dict[str, dict] = _BoundedJournal(
            journal_max if journal_max is not None
            else max(1024, 2 * audit_max_records)
        )
        self._trails = AuditTrailManager(
            trail_dir,
            audit_key,
            max_records=audit_max_records,
            max_bytes=audit_max_bytes,
            fsync=fsync,
        )
        # Canary mirror: when armed, every live decision this primary
        # acks is also shadow-decided under a candidate policy set and
        # effect mismatches are counted (see :meth:`mirror_start`).
        self._mirror: dict | None = None
        self._engine = MSoDEngine(policy_set, store)
        self._service = AuthorizationService(
            self._engine,
            n_shards=service_shards,
            queue_depth=queue_depth,
            batch_max=batch_max,
            audit_sink=self._audit_sink,
            health_extra=self._health_extra,
            trail_reader=self._open_trail_reader,
        )
        self._thread = ServerThread(
            self._service,
            host=host,
            port=port,
            owns=[store],
            decide_gate=self._decide_gate,
        )

    # ------------------------------------------------------------------
    @property
    def role(self) -> str:
        with self._lock:
            return self._role

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    @property
    def host(self) -> str:
        return self._thread.host

    @property
    def port(self) -> int:
        return self._thread.port

    @property
    def address(self) -> tuple[str, int]:
        return (self._thread.host, self._thread.port)

    @property
    def trail_dir(self) -> str:
        return self._trails.directory

    @property
    def store(self) -> RetainedADIStore:
        return self._store

    @property
    def service(self) -> AuthorizationService:
        return self._service

    @property
    def engine(self) -> MSoDEngine:
        return self._engine

    @property
    def journal_size(self) -> int:
        return len(self._journal)

    # ------------------------------------------------------------------
    def policy_version(self):
        """The :class:`PolicyVersion` this node decides under."""
        return self._engine.policy_version()

    def reload_policy(
        self,
        policy_set: MSoDPolicySet,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
    ):
        """Swap this node's policy set on its own serving loop.

        Routed through :meth:`ServerThread.reload_policy` so the swap
        serialises with the node's shard micro-batches exactly like a
        wire-level reload would.  Returns the
        :class:`~repro.core.policy_epoch.PolicySwapReport`.  The
        keyword options mirror
        :meth:`~repro.server.service.AuthorizationService.reload_policy`
        (``force`` also advances the epoch for an identical digest —
        the coordinator uses that to re-align node epoch logs after a
        rejected canary).
        """
        return self._thread.reload_policy(
            policy_set, verify=verify, max_flips=max_flips, force=force
        )

    def _open_trail_reader(self) -> AuditTrailManager:
        """A fresh live-reader manager over this node's own trail."""
        return AuditTrailManager(
            self._trails.directory, self._audit_key, tolerate_ahead=True
        )

    # ------------------------------------------------------------------
    def mirror_start(self, candidate_set: MSoDPolicySet) -> dict:
        """Arm the canary mirror on this (primary) node.

        Replays everything recorded so far differentially under the
        candidate set (building its retained-ADI state as it goes), then
        shadow-decides every *subsequent* live decision through the
        candidate engine, counting effect mismatches.  The whole replay
        happens under the node lock — the audit sink appends under the
        same lock, so the trail is quiescent and the live comparison
        starts exactly where the replay ended: no decision is missed or
        double-counted.

        Returns the replay half of the report (see
        :meth:`mirror_report` for the running total).
        """
        with self._lock:
            if self._mirror is not None:
                raise ClusterError(
                    f"node {self.name} already has an armed canary mirror"
                )
            reader = AuditTrailManager(
                self._trails.directory, self._audit_key, tolerate_ahead=True
            )
            store = InMemoryRetainedADIStore()
            replay = what_if_replay(
                reader,
                candidate_set,
                store,
                policy_resolver=self._engine.policy_set_for_epoch,
            )
            self._mirror = {
                "engine": MSoDEngine(candidate_set, store),
                "replay": replay,
                "live_decisions": 0,
                "live_flip_count": 0,
                "live_flips": [],
                "errors": 0,
            }
            return replay.to_dict()

    def mirror_report(self) -> dict:
        """The armed mirror's running report (replay + live halves)."""
        with self._lock:
            if self._mirror is None:
                raise ClusterError(
                    f"node {self.name} has no armed canary mirror"
                )
            return self._mirror_report_locked()

    def mirror_stop(self) -> dict | None:
        """Disarm the mirror; returns its final report (None if unarmed)."""
        with self._lock:
            if self._mirror is None:
                return None
            report = self._mirror_report_locked()
            self._mirror = None
            return report

    def _mirror_report_locked(self) -> dict:
        mirror = self._mirror
        replay = mirror["replay"]
        return {
            "candidate_digest": replay.candidate_digest,
            "replay": replay.to_dict(),
            "live_decisions": mirror["live_decisions"],
            "live_flip_count": mirror["live_flip_count"],
            "live_flips": [flip.to_dict() for flip in mirror["live_flips"]],
            "mirror_errors": mirror["errors"],
            "flip_count": replay.flip_count + mirror["live_flip_count"],
        }

    def _mirror_compare(self, decision: Decision) -> None:
        """Shadow-decide one acked decision under the candidate (locked).

        A mirror failure must never fail a live decision: exceptions
        are swallowed into an error counter the rollout gate treats as
        disqualifying noise.
        """
        mirror = self._mirror
        try:
            shadow = mirror["engine"].check(decision.request)
        except Exception:
            mirror["errors"] += 1
            return
        mirror["live_decisions"] += 1
        if shadow.effect == decision.effect:
            return
        mirror["live_flip_count"] += 1
        if len(mirror["live_flips"]) >= 100:
            return
        violation = shadow.violation
        mirror["live_flips"].append(
            DecisionFlip(
                request_id=decision.request.request_id,
                user_id=decision.request.user_id,
                operation=decision.request.operation,
                target=decision.request.target,
                context_instance=str(decision.request.context_instance),
                timestamp=decision.request.timestamp,
                recorded_effect=decision.effect,
                replayed_effect=shadow.effect,
                recorded_reason=decision.reason,
                replayed_reason=shadow.reason,
                replayed_policy_id=(
                    violation.policy_id
                    if violation is not None
                    else ";".join(shadow.matched_policy_ids)
                ),
                replayed_constraint=(
                    violation.constraint_repr if violation is not None else ""
                ),
            )
        )

    # ------------------------------------------------------------------
    def start(self) -> "ClusterNode":
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful stop: drain queues, close the store."""
        self._thread.stop()

    def kill(self) -> None:
        """Fault injection: abandon queued work, stop answering."""
        with self._lock:
            self._role = ROLE_STANDBY  # a dead primary is no primary
        self._thread.kill()

    # ------------------------------------------------------------------
    def promote(self, epoch: int) -> None:
        """Become the shard primary under a new fencing epoch.

        The coordinator calls this only after the final catch-up replay
        (sealed at the dead primary's last visible event), so the node
        steps up already holding every acknowledged decision.
        """
        with self._lock:
            self._role = ROLE_PRIMARY
            self._epoch = epoch

    def demote(self) -> None:
        with self._lock:
            self._role = ROLE_STANDBY

    def catch_up(
        self,
        source_trail_dir: str,
        *,
        max_events: int | None = None,
        min_epoch: int = 0,
    ):
        """Replay a primary's shipped trails into this node's store.

        Reuses :func:`repro.audit.recovery.recover_retained_adi`
        verbatim — recovery *is* replication here.  Replay is
        idempotent (see ``tests/test_property_recovery.py``), so the
        coordinator simply re-runs the full replay on every catch-up
        tick; records already applied are consumed, not duplicated.
        The journal fills with every decision outcome seen, which is
        what makes post-failover client retries exactly-once.
        """
        # A live-reader manager: the source primary may append (and
        # atomically advance its checkpoint) between this replay's read
        # snapshot and its checkpoint check — not truncation, just a
        # prefix; the rest arrives next tick.
        source = AuditTrailManager(
            source_trail_dir, self._audit_key, tolerate_ahead=True
        )
        # Replay against the engine's *active* set (which a hot reload
        # may have advanced past the constructor's), resolving each
        # event's recorded policy_epoch through the engine's epoch log
        # so grants made before a reload replicate under the policy
        # that produced them.
        return recover_retained_adi(
            source,
            self._engine.policy_set,
            self._store,
            journal=self._journal,
            min_epoch=min_epoch,
            max_events=max_events,
            policy_resolver=self._engine.policy_set_for_epoch,
        )

    # ------------------------------------------------------------------
    def _audit_sink(self, decision: Decision) -> None:
        payload = decision_event_payload(decision)
        # Role check and append share one lock acquisition with
        # promote()/demote(): once demote() returns, no decision can
        # enter this trail, so a seal counted afterwards is a true
        # upper bound of the lineage.  A decision caught mid-flight by
        # a forced failover is refused here — the client gets an error
        # instead of an ack and re-evaluates on the new primary.
        with self._lock:
            if self._role != ROLE_PRIMARY:
                raise ClusterError(
                    f"node {self.name} was demoted during evaluation; "
                    "decision not recorded — retry against the new primary"
                )
            payload["epoch"] = self._epoch
            self._trails.append(
                EVENT_DECISION, decision.request.timestamp, payload
            )
            self._journal[decision.request.request_id] = payload
            if self._mirror is not None:
                self._mirror_compare(decision)

    def _health_extra(self) -> dict:
        with self._lock:
            role, epoch = self._role, self._epoch
        version = self._engine.policy_version()
        return {
            "cluster": {
                "node": self.name,
                "shard": self.shard,
                "role": role,
                "epoch": epoch,
                "policy_epoch": version.epoch,
                "policy_digest": version.digest,
            }
        }

    def _decide_gate(self, frame_id, frame: dict, request) -> dict | None:
        with self._lock:
            role, epoch = self._role, self._epoch
        if role != ROLE_PRIMARY:
            return protocol.error_frame(
                frame_id,
                protocol.ERR_NOT_PRIMARY,
                f"node {self.name} is {role} for shard {self.shard}; "
                "refresh the route",
            )
        claimed = frame.get("epoch")
        if claimed is not None and claimed != epoch:
            return protocol.error_frame(
                frame_id,
                protocol.ERR_FENCED,
                f"frame epoch {claimed} != node epoch {epoch} for shard "
                f"{self.shard}; refresh the route",
            )
        journaled = self._journal.get(request.request_id)
        if journaled is not None:
            if _request_identity(journaled["request"]) != _request_identity(
                protocol.request_to_wire(request)
            ):
                # Same request_id, different request: two clients with
                # independent id counters collided.  Answering with the
                # journaled outcome would hand one client the *other's*
                # decision, so refuse loudly instead.
                return protocol.error_frame(
                    frame_id,
                    protocol.ERR_PROTOCOL,
                    f"request_id {request.request_id!r} was already used "
                    "by a different request; request ids must be unique "
                    "across clients",
                )
            return protocol.response_frame(
                frame_id,
                protocol.OP_DECIDE,
                "decision",
                _decision_wire_from_payload(journaled),
            )
        return None

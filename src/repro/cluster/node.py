"""One member of an MSoD cluster shard: a primary or a warm standby.

A ``ClusterNode`` wraps the single-node serving stack unchanged — the
same :class:`~repro.core.engine.MSoDEngine`,
:class:`~repro.server.service.AuthorizationService` and
:class:`~repro.server.testing.ServerThread` — and adds exactly three
cluster concerns, all injected through hooks the base server already
exposes:

**Role + epoch gating** (``decide_gate``).  Only the shard's primary
decides; a standby (or a deposed primary) answers ``not-primary`` so a
client with a stale routing table can never split one user's retained
ADI across two nodes.  Every decide frame may carry the client's route
``epoch``; a mismatch against the node's own epoch answers ``fenced``
— the deposed primary's late traffic and the stale client's misdirected
traffic are both rejected before touching the engine.

**Durable audit shipping** (``audit_sink``).  Every decision is
appended — fsync'd by default — to the node's own trail directory
*before* the client sees the response (the service calls the sink ahead
of resolving the decide future).  That ordering is the whole failover
story: an acknowledged decision is always in the trail, so the standby
that replays the trail holds every grant any client has seen.

**Exactly-once decides** (the request journal).  The sink also records
each decision payload by ``request_id``; a promoted standby rebuilds
the same journal from replay.  A client that retries a decide after
failover therefore gets the recorded outcome back instead of a second
evaluation — the one case where retrying a decide is safe.  The
journal is bounded (``journal_max``, FIFO eviction): retries only need
the recent outcomes spanning a failover window, so a long-running node
does not grow memory with lifetime request volume.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable

from repro.audit.recovery import (
    _PreexistingRecords,
    decision_event_payload,
    recover_retained_adi,
)
from repro.audit.trail import (
    EVENT_DECISION,
    AuditTrailManager,
    TrailFollower,
)
from repro.core.context import ContextName
from repro.core.decision import Decision
from repro.core.engine import MSoDEngine
from repro.core.policy import MSoDPolicySet
from repro.core.retained_adi import (
    InMemoryRetainedADIStore,
    RetainedADIRecord,
    RetainedADIStore,
)
from repro.errors import ClusterError, RequestFencedError
from repro.server import protocol
from repro.server.service import AuthorizationService
from repro.server.testing import ServerThread
from repro.cluster.ring import HashRing
from repro.verify.whatif import DecisionFlip, what_if_replay

ROLE_PRIMARY = "primary"
ROLE_STANDBY = "standby"


class _BoundedJournal(dict):
    """``request_id -> payload`` with FIFO eviction beyond a cap.

    Exactly-once retry dedupe only needs outcomes recent enough to span
    a failover window, so the oldest entry is evicted once the cap is
    reached (dict preserves insertion order, and both the audit sink
    and trail replay insert in decision order).  A re-inserted id moves
    to the back so a hot request_id stays resident.
    """

    def __init__(self, max_entries: int) -> None:
        super().__init__()
        if max_entries < 1:
            raise ClusterError("journal_max must be >= 1")
        self._max_entries = max_entries

    def __setitem__(self, key: str, value: dict) -> None:
        if key in self:
            del self[key]
        elif len(self) >= self._max_entries:
            del self[next(iter(self))]
        super().__setitem__(key, value)


def _request_identity(wire_request: dict) -> tuple:
    """What makes two decide frames "the same request" for dedupe."""
    return (
        wire_request.get("user_id"),
        tuple(tuple(role) for role in wire_request.get("roles", ())),
        wire_request.get("operation"),
        wire_request.get("target"),
        wire_request.get("context_instance"),
        wire_request.get("timestamp"),
    )


def _decision_wire_from_payload(payload: dict) -> dict:
    """Rebuild a ``decide`` response body from a journaled audit payload.

    The audit payload keeps everything the retained ADI needs (effect,
    request, adds, purges) but not the structured violation object, so
    a deduplicated retry carries the recorded effect and reason with
    ``violation: null`` — enough for any enforcement point, and the
    store-digest oracle never sees a difference because no second
    evaluation happens.
    """
    adds = list(payload.get("adi_adds", ()))
    wire = {
        "effect": payload["effect"],
        "request": dict(payload["request"]),
        "violation": None,
        "matched_policy_ids": list(payload.get("matched_policies", ())),
        "records_added": len(adds),
        "records_purged": 0,
        "reason": payload.get("reason", ""),
        "adi_adds": adds,
        "adi_purged_contexts": list(payload.get("adi_purges", ())),
    }
    # A journaled outcome keeps the policy version it was decided
    # under; the retry must see that version, not whatever is active
    # now (the whole point of dedupe is "no second evaluation").
    if payload.get("policy_epoch"):
        wire["policy_epoch"] = payload["policy_epoch"]
        wire["policy_digest"] = payload.get("policy_digest", "")
    return wire


class ClusterNode:
    """One authorization-server node owned by a cluster shard."""

    def __init__(
        self,
        name: str,
        shard: str,
        policy_set: MSoDPolicySet,
        store: RetainedADIStore,
        trail_dir: str,
        audit_key: bytes,
        *,
        role: str = ROLE_STANDBY,
        epoch: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        service_shards: int = 2,
        queue_depth: int = 256,
        batch_max: int = 32,
        audit_max_records: int = 10_000,
        audit_max_bytes: int | None = None,
        fsync: bool = True,
        journal_max: int | None = None,
    ) -> None:
        if role not in (ROLE_PRIMARY, ROLE_STANDBY):
            raise ValueError(f"unknown node role {role!r}")
        self.name = name
        self.shard = shard
        self._policy_set = policy_set
        self._store = store
        self._audit_key = audit_key
        self._role = role
        self._epoch = epoch
        self._lock = threading.Lock()
        # Default cap: two full trail rotations — comfortably more
        # history than any failover-window retry needs.
        self._journal: dict[str, dict] = _BoundedJournal(
            journal_max if journal_max is not None
            else max(1024, 2 * audit_max_records)
        )
        self._trails = AuditTrailManager(
            trail_dir,
            audit_key,
            max_records=audit_max_records,
            max_bytes=audit_max_bytes,
            fsync=fsync,
        )
        # Incremental catch-up state, per source lineage directory: the
        # trail-follower position of the last *successfully replayed*
        # tick, plus how many events that position represents from the
        # lineage's start (the ``max_events`` seal budget is counted
        # from the start).  Committed only after a tick succeeds, so a
        # tick that raises mid-replay is re-read in full next time —
        # replay idempotency absorbs the partial application.
        self._catchup_positions: dict[str, dict] = {}
        self._catchup_consumed: dict[str, int] = {}
        # Canary mirror: when armed, every live decision this primary
        # acks is also shadow-decided under a candidate policy set and
        # effect mismatches are counted (see :meth:`mirror_start`).
        self._mirror: dict | None = None
        # The serving ring this node fences ownership against.  When
        # installed, the decide gate and the audit sink both refuse
        # users the ring assigns to another shard, which is what makes
        # a reshard cutover's per-user fencing *derived* (flip the ring
        # everywhere) instead of an accumulated fence set that could go
        # stale on a freshly promoted standby.
        self._ring: HashRing | None = None
        self._engine = MSoDEngine(policy_set, store)
        self._service = AuthorizationService(
            self._engine,
            n_shards=service_shards,
            queue_depth=queue_depth,
            batch_max=batch_max,
            audit_sink=self._audit_sink,
            health_extra=self._health_extra,
            trail_reader=self._open_trail_reader,
        )
        self._thread = ServerThread(
            self._service,
            host=host,
            port=port,
            owns=[store],
            decide_gate=self._decide_gate,
        )

    # ------------------------------------------------------------------
    @property
    def role(self) -> str:
        with self._lock:
            return self._role

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    @property
    def host(self) -> str:
        return self._thread.host

    @property
    def port(self) -> int:
        return self._thread.port

    @property
    def address(self) -> tuple[str, int]:
        return (self._thread.host, self._thread.port)

    @property
    def trail_dir(self) -> str:
        return self._trails.directory

    @property
    def store(self) -> RetainedADIStore:
        return self._store

    @property
    def service(self) -> AuthorizationService:
        return self._service

    @property
    def engine(self) -> MSoDEngine:
        return self._engine

    @property
    def journal_size(self) -> int:
        return len(self._journal)

    # ------------------------------------------------------------------
    def policy_version(self):
        """The :class:`PolicyVersion` this node decides under."""
        return self._engine.policy_version()

    def reload_policy(
        self,
        policy_set: MSoDPolicySet,
        *,
        verify: bool = False,
        max_flips: int = 0,
        force: bool = False,
    ):
        """Swap this node's policy set on its own serving loop.

        Routed through :meth:`ServerThread.reload_policy` so the swap
        serialises with the node's shard micro-batches exactly like a
        wire-level reload would.  Returns the
        :class:`~repro.core.policy_epoch.PolicySwapReport`.  The
        keyword options mirror
        :meth:`~repro.server.service.AuthorizationService.reload_policy`
        (``force`` also advances the epoch for an identical digest —
        the coordinator uses that to re-align node epoch logs after a
        rejected canary).
        """
        return self._thread.reload_policy(
            policy_set, verify=verify, max_flips=max_flips, force=force
        )

    def _open_trail_reader(self) -> AuditTrailManager:
        """A fresh live-reader manager over this node's own trail."""
        return AuditTrailManager(
            self._trails.directory, self._audit_key, tolerate_ahead=True
        )

    # ------------------------------------------------------------------
    def mirror_start(self, candidate_set: MSoDPolicySet) -> dict:
        """Arm the canary mirror on this (primary) node.

        Replays everything recorded so far differentially under the
        candidate set (building its retained-ADI state as it goes), then
        shadow-decides every *subsequent* live decision through the
        candidate engine, counting effect mismatches.  The whole replay
        happens under the node lock — the audit sink appends under the
        same lock, so the trail is quiescent and the live comparison
        starts exactly where the replay ended: no decision is missed or
        double-counted.

        Returns the replay half of the report (see
        :meth:`mirror_report` for the running total).
        """
        with self._lock:
            if self._mirror is not None:
                raise ClusterError(
                    f"node {self.name} already has an armed canary mirror"
                )
            reader = AuditTrailManager(
                self._trails.directory, self._audit_key, tolerate_ahead=True
            )
            store = InMemoryRetainedADIStore()
            replay = what_if_replay(
                reader,
                candidate_set,
                store,
                policy_resolver=self._engine.policy_set_for_epoch,
            )
            self._mirror = {
                "engine": MSoDEngine(candidate_set, store),
                "replay": replay,
                "live_decisions": 0,
                "live_flip_count": 0,
                "live_flips": [],
                "errors": 0,
            }
            return replay.to_dict()

    def mirror_report(self) -> dict:
        """The armed mirror's running report (replay + live halves)."""
        with self._lock:
            if self._mirror is None:
                raise ClusterError(
                    f"node {self.name} has no armed canary mirror"
                )
            return self._mirror_report_locked()

    def mirror_stop(self) -> dict | None:
        """Disarm the mirror; returns its final report (None if unarmed)."""
        with self._lock:
            if self._mirror is None:
                return None
            report = self._mirror_report_locked()
            self._mirror = None
            return report

    def _mirror_report_locked(self) -> dict:
        mirror = self._mirror
        replay = mirror["replay"]
        return {
            "candidate_digest": replay.candidate_digest,
            "replay": replay.to_dict(),
            "live_decisions": mirror["live_decisions"],
            "live_flip_count": mirror["live_flip_count"],
            "live_flips": [flip.to_dict() for flip in mirror["live_flips"]],
            "mirror_errors": mirror["errors"],
            "flip_count": replay.flip_count + mirror["live_flip_count"],
        }

    def _mirror_compare(self, decision: Decision) -> None:
        """Shadow-decide one acked decision under the candidate (locked).

        A mirror failure must never fail a live decision: exceptions
        are swallowed into an error counter the rollout gate treats as
        disqualifying noise.
        """
        mirror = self._mirror
        try:
            shadow = mirror["engine"].check(decision.request)
        except Exception:
            mirror["errors"] += 1
            return
        mirror["live_decisions"] += 1
        if shadow.effect == decision.effect:
            return
        mirror["live_flip_count"] += 1
        if len(mirror["live_flips"]) >= 100:
            return
        violation = shadow.violation
        mirror["live_flips"].append(
            DecisionFlip(
                request_id=decision.request.request_id,
                user_id=decision.request.user_id,
                operation=decision.request.operation,
                target=decision.request.target,
                context_instance=str(decision.request.context_instance),
                timestamp=decision.request.timestamp,
                recorded_effect=decision.effect,
                replayed_effect=shadow.effect,
                recorded_reason=decision.reason,
                replayed_reason=shadow.reason,
                replayed_policy_id=(
                    violation.policy_id
                    if violation is not None
                    else ";".join(shadow.matched_policy_ids)
                ),
                replayed_constraint=(
                    violation.constraint_repr if violation is not None else ""
                ),
            )
        )

    # ------------------------------------------------------------------
    def start(self) -> "ClusterNode":
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful stop: drain queues, close the store."""
        self._thread.stop()

    def kill(self) -> None:
        """Fault injection: abandon queued work, stop answering."""
        with self._lock:
            self._role = ROLE_STANDBY  # a dead primary is no primary
        self._thread.kill()

    # ------------------------------------------------------------------
    def promote(self, epoch: int) -> None:
        """Become the shard primary under a new fencing epoch.

        The coordinator calls this only after the final catch-up replay
        (sealed at the dead primary's last visible event), so the node
        steps up already holding every acknowledged decision.
        """
        with self._lock:
            self._role = ROLE_PRIMARY
            self._epoch = epoch

    def demote(self) -> None:
        with self._lock:
            self._role = ROLE_STANDBY

    def install_ring(self, ring: HashRing | None) -> None:
        """Install the serving ring this node fences ownership against.

        Shares the node lock with the audit sink: once this returns, no
        decision for a user the ring assigns elsewhere can enter this
        node's trail — the reshard cutover's quiescence point.
        """
        with self._lock:
            self._ring = ring

    def owns_user(self, user_id: str) -> bool:
        """Whether the installed ring assigns this user to this shard."""
        ring = self._ring
        return ring is None or ring.shard_for(user_id) == self.shard

    def _ownership_filter(self) -> Callable[[str], bool] | None:
        """The replay filter matching this node's installed ring."""
        ring = self._ring
        if ring is None:
            return None
        shard = self.shard
        return lambda user_id: ring.shard_for(user_id) == shard

    def catch_up(
        self,
        source_trail_dir: str,
        *,
        max_events: int | None = None,
        min_epoch: int = 0,
        user_filter: Callable[[str], bool] | None = None,
    ):
        """Replay a primary's shipped trails into this node's store.

        Reuses :func:`repro.audit.recovery.recover_retained_adi` —
        recovery *is* replication here.  Replay is idempotent (see
        ``tests/test_property_recovery.py``), and each call is
        **incremental**: a persistent
        :class:`~repro.audit.trail.TrailFollower` position per source
        lineage means a tick verifies and replays only the events
        appended since the last successful tick, not the whole lineage.
        That bound matters beyond throughput — the coordinator holds
        the shard lock during catch-up ticks, and a reshard cutover
        fences sources under that same lock, so O(new-tail) ticks are
        what keep the fenced cutover pause milliseconds instead of a
        full-history re-verification.  The follower position commits
        only after the replay returns; a tick that raises re-reads
        from the previous position, and idempotency absorbs whatever
        the failed tick half-applied.  The journal fills with every
        decision outcome seen, which is what makes post-failover
        client retries exactly-once.

        ``max_events`` still counts from the lineage's *start* (it is
        the failover seal: the authoritative record count at
        promotion), so the budget for a tick is the seal minus what
        earlier ticks already consumed.

        ``user_filter`` defaults to the installed ring's ownership
        predicate: after a reshard cutover the source's trail still
        holds the moved users' history, and an unfiltered replay would
        resurrect it on the standby the next tick.  (Events consumed
        before the cutover under the old ring are not re-examined; the
        cutover's purge step removes the movers' records from both
        source nodes, which is what keeps the two consistent.)
        """
        position = self._catchup_positions.get(source_trail_dir)
        follower = TrailFollower(
            source_trail_dir, self._audit_key, position=position
        )
        if user_filter is None:
            user_filter = self._ownership_filter()
        events = follower.poll()
        if max_events is not None:
            remaining = max_events - self._catchup_consumed.get(
                source_trail_dir, 0
            )
            # islice consumes exactly the bound, so the follower never
            # advances past an event the replay did not examine.
            events = itertools.islice(events, max(0, remaining))
        # Replay against the engine's *active* set (which a hot reload
        # may have advanced past the constructor's), resolving each
        # event's recorded policy_epoch through the engine's epoch log
        # so grants made before a reload replicate under the policy
        # that produced them.
        report = recover_retained_adi(
            None,
            self._engine.policy_set,
            self._store,
            journal=self._journal,
            min_epoch=min_epoch,
            policy_resolver=self._engine.policy_set_for_epoch,
            user_filter=user_filter,
            events=events,
        )
        self._catchup_positions[source_trail_dir] = follower.position()
        self._catchup_consumed[source_trail_dir] = (
            self._catchup_consumed.get(source_trail_dir, 0)
            + report.events_scanned
        )
        return report

    def import_decision_events(
        self,
        source_trail_dir: str,
        user_filter: Callable[[str], bool],
        *,
        max_events: int | None = None,
        min_epoch: int = 0,
        cursor: dict | None = None,
    ) -> dict:
        """Import another shard's decision events for users moving here.

        The reshard migration's transfer primitive.  Unlike
        :meth:`catch_up` (which only rebuilds the *store*), an import
        appends each moving user's decision events — verbatim, original
        epoch and all — to this node's **own** trail, so the history
        survives everything the trail protects against: this shard's
        own failover (the standby replays it), a later drain of this
        shard (the next migration re-exports it), and recovery.

        Idempotent per event: a ``request_id`` already journaled is
        skipped, and a grant whose journal entry was evicted is caught
        by its record identities already sitting in the store.  Source
        events are read outside the node lock; dedupe + append + store
        apply run under it, sharing one acquisition with the audit sink
        so imported and native history interleave cleanly.

        ``cursor`` is a :class:`~repro.audit.trail.TrailFollower`
        position: the byte offset, chain tip and segment index where
        the previous import of this lineage stopped.  Trail lineages
        are append-only (rotation seals segments, never deletes them),
        so a position that was valid once stays valid; the coordinator
        persists it per (target, lineage) and resumes from it every
        tick, making steady-state ticks proportional to the **new
        tail** — read, parsed *and verified* from the stored chain tip
        — instead of the lineage's whole history.  The cursor is an
        optimisation only: losing it (coordinator crash before the
        save) merely re-reads from an older position, and the journal
        / record-identity dedupe below keeps that correct.

        Returns ``{"scanned", "imported", "skipped", "next_cursor"}``,
        where ``next_cursor`` is the position to pass next time.
        """
        follower = TrailFollower(
            source_trail_dir, self._audit_key, position=cursor
        )
        scanned = 0
        moving_events = []
        events = follower.poll()
        if max_events is not None:
            # islice consumes exactly the bound, so the follower's
            # position never advances past an unexamined event.
            events = itertools.islice(events, max_events)
        for event in events:
            scanned += 1
            if event.event_type != EVENT_DECISION:
                # Admin purges are store-wide, not per-user; a reshard
                # migration window must not overlap one (documented in
                # docs/CLUSTER.md's resizing runbook).
                continue
            payload = event.payload or {}
            epoch = payload.get("epoch", 0)
            if isinstance(epoch, int) and epoch < min_epoch:
                continue
            user_id = payload.get("request", {}).get("user_id")
            if not user_id or not user_filter(user_id):
                continue
            moving_events.append(event)
        imported = skipped = 0
        with self._lock:
            preexisting: _PreexistingRecords | None = None
            for event in moving_events:
                payload = event.payload
                request_id = payload["request"].get("request_id")
                if request_id and request_id in self._journal:
                    skipped += 1
                    continue
                adds = [
                    RetainedADIRecord.from_dict(record_dict)
                    for record_dict in payload.get("adi_adds", ())
                ]
                if adds and preexisting is None:
                    # Built lazily: steady-state ticks dedupe entirely
                    # through the journal and never scan the store.
                    preexisting = _PreexistingRecords(self._store)
                fresh = (
                    [
                        record
                        for record in adds
                        if not preexisting.consume(record)
                    ]
                    if adds
                    else []
                )
                if adds and not fresh:
                    # Already imported; only the journal entry was
                    # evicted.  Re-journal the outcome, skip the append.
                    if request_id:
                        self._journal[request_id] = payload
                    skipped += 1
                    continue
                for context_text in payload.get("adi_purges", ()):
                    context = ContextName.parse(context_text)
                    self._store.purge_context(context)
                    if preexisting is not None:
                        preexisting.purge(context)
                for record in fresh:
                    self._store.add(record)
                self._trails.append(
                    EVENT_DECISION, event.timestamp, payload
                )
                if request_id:
                    self._journal[request_id] = payload
                imported += 1
        return {
            "scanned": scanned,
            "imported": imported,
            "skipped": skipped,
            "next_cursor": follower.position(),
        }

    def purge_users(self, user_filter: Callable[[str], bool]) -> int:
        """Drop matching users' records and journal entries; count users.

        The reshard cutover's final source-side step: once the moved
        users' history is imported on the target, their records here
        are orphans (including any record a fence-refused in-flight
        decision committed before its sink raised).  Journal entries go
        too — the ring-ownership gate answers before the journal, so a
        mover's journaled outcome is unreachable here and the target
        holds the imported copy.
        """
        with self._lock:
            moved = {
                record.user_id
                for record in self._store.records()
                if user_filter(record.user_id)
            }
            for user_id in moved:
                self._store.purge_user(user_id)
            dead = [
                request_id
                for request_id, payload in self._journal.items()
                if user_filter(
                    payload.get("request", {}).get("user_id", "")
                )
            ]
            for request_id in dead:
                del self._journal[request_id]
        return len(moved)

    # ------------------------------------------------------------------
    def _audit_sink(self, decision: Decision) -> None:
        payload = decision_event_payload(decision)
        # Role check and append share one lock acquisition with
        # promote()/demote(): once demote() returns, no decision can
        # enter this trail, so a seal counted afterwards is a true
        # upper bound of the lineage.  A decision caught mid-flight by
        # a forced failover is refused here — the client gets an error
        # instead of an ack and re-evaluates on the new primary.
        with self._lock:
            if self._role != ROLE_PRIMARY:
                raise RequestFencedError(
                    f"node {self.name} was demoted during evaluation; "
                    "decision not recorded — retry against the new primary"
                )
            if self._ring is not None and (
                self._ring.shard_for(decision.request.user_id) != self.shard
            ):
                # Reshard cutover caught this decision in flight: the
                # user moved off this shard between the gate and the
                # sink.  Refuse before the append — the event never
                # enters the trail, so the migration's final import
                # cannot see it and the client's fenced re-route
                # re-evaluates exactly once on the new owner.  (Any
                # records the engine committed to this store are purged
                # by the cutover's ``purge_users``.)
                raise RequestFencedError(
                    f"user {decision.request.user_id!r} moved off shard "
                    f"{self.shard} during evaluation; decision not "
                    "recorded — refresh the route and retry"
                )
            payload["epoch"] = self._epoch
            self._trails.append(
                EVENT_DECISION, decision.request.timestamp, payload
            )
            self._journal[decision.request.request_id] = payload
            if self._mirror is not None:
                self._mirror_compare(decision)

    def _health_extra(self) -> dict:
        with self._lock:
            role, epoch = self._role, self._epoch
        version = self._engine.policy_version()
        return {
            "cluster": {
                "node": self.name,
                "shard": self.shard,
                "role": role,
                "epoch": epoch,
                "policy_epoch": version.epoch,
                "policy_digest": version.digest,
            }
        }

    def _decide_gate(self, frame_id, frame: dict, request) -> dict | None:
        with self._lock:
            role, epoch, ring = self._role, self._epoch, self._ring
        if role != ROLE_PRIMARY:
            return protocol.error_frame(
                frame_id,
                protocol.ERR_NOT_PRIMARY,
                f"node {self.name} is {role} for shard {self.shard}; "
                "refresh the route",
            )
        claimed = frame.get("epoch")
        if claimed is not None and claimed != epoch:
            return protocol.error_frame(
                frame_id,
                protocol.ERR_FENCED,
                f"frame epoch {claimed} != node epoch {epoch} for shard "
                f"{self.shard}; refresh the route",
            )
        if ring is not None and ring.shard_for(request.user_id) != self.shard:
            # Ownership fence, checked *before* the journal: a moved
            # user's retry must be answered by the shard that now owns
            # the user (whose journal holds the imported outcome), not
            # from this node's stale copy.
            return protocol.error_frame(
                frame_id,
                protocol.ERR_FENCED,
                f"user {request.user_id!r} is not owned by shard "
                f"{self.shard} on the current ring; refresh the route",
            )
        journaled = self._journal.get(request.request_id)
        if journaled is not None:
            if _request_identity(journaled["request"]) != _request_identity(
                protocol.request_to_wire(request)
            ):
                # Same request_id, different request: two clients with
                # independent id counters collided.  Answering with the
                # journaled outcome would hand one client the *other's*
                # decision, so refuse loudly instead.
                return protocol.error_frame(
                    frame_id,
                    protocol.ERR_PROTOCOL,
                    f"request_id {request.request_id!r} was already used "
                    "by a different request; request ids must be unique "
                    "across clients",
                )
            return protocol.response_frame(
                frame_id,
                protocol.OP_DECIDE,
                "decision",
                _decision_wire_from_payload(journaled),
            )
        return None

"""The unified retained-ADI store spec: one grammar, one builder.

Before this module, every entry point branched on the store string
itself — ``repro.api`` with one private parser, the CLI with ``--adi``
path arguments, the cluster with a two-value ``choices`` tuple, and
each benchmark with its own ``if``-ladder.  Adding a backend meant
finding all of them.  Now there is a single grammar::

    memory                              in-process, volatile
    sqlite:<path>                       durable single file
    sqlite                              durable, path chosen by the host
                                        (per-node files under a cluster's
                                        data_dir; invalid where no default
                                        path exists)
    remote:<host>:<port>                connect to a served PDP
    tiered:<warm-spec>?hot_users=N[&shards=M]
                                        hot in-memory aggregates over a
                                        memory/sqlite warm layer, e.g.
                                        tiered:sqlite:adi.db?hot_users=50000

parsed by :func:`parse_store_spec` into a :class:`ParsedStoreSpec` and
materialised by :func:`build_store`.  Malformed specs raise
:class:`~repro.errors.StoreSpecError` (a :class:`PolicyError`
subclass, so pre-existing ``except PolicyError`` handlers keep
working).  ``repro.api`` re-exports both functions; import from either.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.retained_adi import (
    InMemoryRetainedADIStore,
    RetainedADIStore,
    SQLiteRetainedADIStore,
)
from repro.core.tiered import TieredADIStore
from repro.errors import StoreSpecError

__all__ = [
    "DEFAULT_HOT_USERS",
    "DEFAULT_HOT_SHARDS",
    "ParsedStoreSpec",
    "parse_store_spec",
    "build_store",
    "open_store",
]

DEFAULT_HOT_USERS = 10_000
DEFAULT_HOT_SHARDS = 8

_GRAMMAR = (
    "'memory', 'sqlite:<path>', 'sqlite', 'remote:<host>:<port>' or "
    "'tiered:<warm-spec>?hot_users=N[&shards=M]'"
)


@dataclass(frozen=True, slots=True)
class ParsedStoreSpec:
    """A normalised store spec, ready for :func:`build_store`.

    ``kind`` is one of ``memory`` / ``sqlite`` / ``remote`` /
    ``tiered`` / ``instance``.  A ``sqlite`` spec with ``path=None``
    (the bare ``sqlite`` form) defers the path to the builder's
    ``default_sqlite_path`` — the cluster uses this for its per-node
    files.  ``instance`` wraps an already-constructed store whose
    lifetime stays with the caller.
    """

    kind: str
    path: str | None = None
    host: str | None = None
    port: int | None = None
    warm: "ParsedStoreSpec | None" = None
    hot_users: int | None = None
    hot_shards: int | None = None
    instance: RetainedADIStore | None = None

    @property
    def is_remote(self) -> bool:
        return self.kind == "remote"


def _parse_positive_int(value: str, key: str, spec: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise StoreSpecError(
            f"tiered store option {key}={value!r} is not an integer "
            f"in {spec!r}"
        ) from None
    if parsed < 1:
        raise StoreSpecError(
            f"tiered store option {key} must be >= 1, got {parsed} "
            f"in {spec!r}"
        )
    return parsed


def _parse_tiered(rest: str, spec: str) -> ParsedStoreSpec:
    warm_text, sep, query = rest.rpartition("?")
    if not sep:
        warm_text, query = rest, ""
    if not warm_text:
        raise StoreSpecError(
            "tiered store spec needs a warm layer: "
            f"'tiered:<warm-spec>?hot_users=N', got {spec!r}"
        )
    warm = parse_store_spec(warm_text)
    if warm.kind not in ("memory", "sqlite"):
        raise StoreSpecError(
            "tiered warm layer must be 'memory' or a sqlite spec, "
            f"got {warm_text!r} in {spec!r}"
        )
    hot_users = DEFAULT_HOT_USERS
    hot_shards = DEFAULT_HOT_SHARDS
    if query:
        for pair in query.split("&"):
            key, sep, value = pair.partition("=")
            if not sep:
                raise StoreSpecError(
                    f"tiered store option {pair!r} is not 'key=value' "
                    f"in {spec!r}"
                )
            if key == "hot_users":
                hot_users = _parse_positive_int(value, key, spec)
            elif key == "shards":
                hot_shards = _parse_positive_int(value, key, spec)
            else:
                raise StoreSpecError(
                    f"unknown tiered store option {key!r} in {spec!r} "
                    "(expected hot_users or shards)"
                )
    return ParsedStoreSpec(
        kind="tiered", warm=warm, hot_users=hot_users, hot_shards=hot_shards
    )


def parse_store_spec(store: "str | RetainedADIStore") -> ParsedStoreSpec:
    """Parse any accepted store spec into a :class:`ParsedStoreSpec`.

    Accepts the grammar in the module docstring, or an
    already-constructed :class:`RetainedADIStore` (wrapped as kind
    ``instance``).  Raises :class:`StoreSpecError` on anything else.
    """
    if isinstance(store, RetainedADIStore):
        return ParsedStoreSpec(kind="instance", instance=store)
    if not isinstance(store, str):
        raise StoreSpecError(
            f"store must be {_GRAMMAR} or a RetainedADIStore, "
            f"got {type(store).__name__}"
        )
    if store == "memory":
        return ParsedStoreSpec(kind="memory")
    if store == "sqlite":
        return ParsedStoreSpec(kind="sqlite", path=None)
    if store.startswith("sqlite:"):
        path = store[len("sqlite:"):]
        if not path:
            raise StoreSpecError(
                "sqlite store spec needs a path: 'sqlite:<path>'"
            )
        return ParsedStoreSpec(kind="sqlite", path=path)
    if store.startswith("remote:"):
        rest = store[len("remote:"):]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise StoreSpecError(
                f"remote store spec must be 'remote:<host>:<port>', got {store!r}"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise StoreSpecError(
                f"remote store spec has a non-numeric port: {store!r}"
            ) from None
        return ParsedStoreSpec(kind="remote", host=host, port=port)
    if store.startswith("tiered:"):
        return _parse_tiered(store[len("tiered:"):], store)
    raise StoreSpecError(f"unknown store spec {store!r} (expected {_GRAMMAR})")


def build_store(
    parsed: ParsedStoreSpec,
    *,
    default_sqlite_path: str | None = None,
) -> tuple[RetainedADIStore, bool]:
    """Materialise a parsed spec, returning ``(store, owns)``.

    ``owns`` is True when the call constructed the store (the caller is
    responsible for closing it) and False for ``instance`` specs.
    ``default_sqlite_path`` resolves the bare ``sqlite`` form; without
    one, bare ``sqlite`` is an error.  ``remote`` specs describe a
    connection, not an in-process store, and are rejected here — check
    :attr:`ParsedStoreSpec.is_remote` first.
    """
    if parsed.kind == "instance":
        assert parsed.instance is not None
        return parsed.instance, False
    if parsed.kind == "memory":
        return InMemoryRetainedADIStore(), True
    if parsed.kind == "sqlite":
        return _build_sqlite(parsed, default_sqlite_path, None), True
    if parsed.kind == "tiered":
        warm = parsed.warm
        assert warm is not None
        hot_users = parsed.hot_users or DEFAULT_HOT_USERS
        hot_shards = parsed.hot_shards or DEFAULT_HOT_SHARDS
        if warm.kind == "sqlite":
            # Bound the warm layer's row cache too, or it would grow a
            # resident entry per row and defeat the tier's RSS bound.
            warm_store: RetainedADIStore = _build_sqlite(
                warm, default_sqlite_path, max(1024, 4 * hot_users)
            )
        else:
            warm_store = InMemoryRetainedADIStore()
        return (
            TieredADIStore(
                warm_store,
                hot_users=hot_users,
                shards=hot_shards,
                owns_warm=True,
            ),
            True,
        )
    if parsed.kind == "remote":
        raise StoreSpecError(
            "remote store specs are connections, not in-process stores; "
            "open them with open_pdp"
        )
    raise StoreSpecError(f"unknown parsed store kind {parsed.kind!r}")


def open_store(
    spec: "str | RetainedADIStore",
    *,
    default_sqlite_path: str | None = None,
) -> RetainedADIStore:
    """Parse and build in one call, returning just the store.

    The convenience form for scripts and benchmarks that don't need
    the ``owns`` flag; the caller closes the store.
    """
    return build_store(
        parse_store_spec(spec), default_sqlite_path=default_sqlite_path
    )[0]


def _build_sqlite(
    parsed: ParsedStoreSpec,
    default_sqlite_path: str | None,
    max_row_cache: int | None,
) -> SQLiteRetainedADIStore:
    path = parsed.path if parsed.path is not None else default_sqlite_path
    if path is None:
        raise StoreSpecError(
            "bare 'sqlite' needs a host-assigned path (only valid where "
            "a default exists, e.g. cluster per-node files); use "
            "'sqlite:<path>' here"
        )
    return SQLiteRetainedADIStore(path, max_row_cache=max_row_cache)

"""Hot-path performance instrumentation for the decision pipeline.

The ROADMAP's north star is a PDP that "runs as fast as the hardware
allows"; you cannot keep a hot path fast without measuring it.  This
module provides the measurement substrate the engine and both PDPs are
wired through:

* **counters** — monotonically increasing event counts (requests,
  grants, denies, records added/purged, ...);
* **stage timers** — wall-clock duration of named pipeline stages
  (policy match, constraint evaluation, commit, ...);
* **per-stage histograms** — durations are binned into logarithmic
  latency buckets so tail behaviour survives aggregation.

Instrumentation must cost nothing when unused: production PDPs run with
:data:`NOOP`, whose methods are empty and whose ``enabled`` flag lets
call sites skip clock reads entirely::

    perf = self._perf
    started = perf.start() if perf.enabled else 0.0
    ...work...
    if perf.enabled:
        perf.stop("engine.check", started)

``benchmarks/bench_hotpath_regression.py`` records a live
:class:`PerfRecorder` snapshot into ``BENCH_hotpath.json`` so the perf
trajectory of later PRs is machine-comparable.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = [
    "PerfRecorder",
    "NoopPerfRecorder",
    "NOOP",
    "StageStats",
    "LATENCY_BUCKET_BOUNDS",
]

#: Upper bounds (seconds) of the logarithmic latency buckets: 1µs to 10s
#: in 1-10 decades with a 1/2/5 subdivision, plus a catch-all overflow.
LATENCY_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (1.0, 2.0, 5.0)
) + (10.0,)


class StageStats:
    """Aggregated timings for one named pipeline stage."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.buckets = [0] * (len(LATENCY_BUCKET_BOUNDS) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        for index, bound in enumerate(LATENCY_BUCKET_BOUNDS):
            if seconds <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def merge(self, other: "StageStats") -> None:
        """Fold another stage's aggregates into this one.

        Both sides share :data:`LATENCY_BUCKET_BOUNDS`, so bucket counts
        add position-wise; used by the metrics exposition to combine
        recorders without double-emitting series.
        """
        self.count += other.count
        self.total += other.total
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        for index, bucket_count in enumerate(other.buckets):
            self.buckets[index] += bucket_count

    def quantile(self, q: float) -> float:
        """Approximate quantile from the histogram (bucket upper bound)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(LATENCY_BUCKET_BOUNDS):
                    return LATENCY_BUCKET_BOUNDS[index]
                return self.max
        return self.max

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.total / self.count if self.count else 0.0,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
            "buckets": {
                f"<={bound:.0e}s": self.buckets[index]
                for index, bound in enumerate(LATENCY_BUCKET_BOUNDS)
                if self.buckets[index]
            }
            | ({">10s": self.buckets[-1]} if self.buckets[-1] else {}),
        }


class PerfRecorder:
    """Collects counters and stage timings for the decision pipeline.

    Not thread-safe by design: attach one recorder per PDP (or per
    benchmark run); merging snapshots across recorders is the caller's
    concern.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._counters: dict[str, int] = {}
        self._stages: dict[str, StageStats] = {}

    # -- counters ------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """A copy of every counter (the metrics-exposition feed)."""
        return dict(self._counters)

    # -- stage timers --------------------------------------------------
    def start(self) -> float:
        """A timestamp token to later pass to :meth:`stop`."""
        return self._clock()

    def stop(self, stage: str, started: float) -> None:
        self.observe(stage, self._clock() - started)

    def observe(self, stage: str, seconds: float) -> None:
        stats = self._stages.get(stage)
        if stats is None:
            stats = self._stages[stage] = StageStats()
        stats.observe(seconds)

    def stage(self, name: str) -> StageStats | None:
        return self._stages.get(name)

    def stages(self) -> dict[str, StageStats]:
        """A shallow copy of the per-stage aggregates (read, don't mutate)."""
        return dict(self._stages)

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-compatible dump of every counter and stage."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "stages": {
                name: stats.to_dict()
                for name, stats in sorted(self._stages.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._stages.clear()


class NoopPerfRecorder(PerfRecorder):
    """The do-nothing recorder production code runs with by default.

    Every method is an empty override and ``enabled`` is False, so
    instrumented call sites cost one attribute load and (for timers)
    one branch — no clock reads, no dict traffic.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def incr(self, name: str, amount: int = 1) -> None:
        pass

    def start(self) -> float:
        return 0.0

    def stop(self, stage: str, started: float) -> None:
        pass

    def observe(self, stage: str, seconds: float) -> None:
        pass


#: Shared no-op instance; safe to use from any thread (it has no state).
NOOP = NoopPerfRecorder()

"""Hot-path performance instrumentation for the decision pipeline.

The ROADMAP's north star is a PDP that "runs as fast as the hardware
allows"; you cannot keep a hot path fast without measuring it.  This
module provides the measurement substrate the engine and both PDPs are
wired through:

* **counters** — monotonically increasing event counts (requests,
  grants, denies, records added/purged, ...);
* **stage timers** — wall-clock duration of named pipeline stages
  (policy match, constraint evaluation, commit, ...);
* **per-stage histograms** — durations are binned into logarithmic
  latency buckets so tail behaviour survives aggregation.

Instrumentation must cost nothing when unused: production PDPs run with
:data:`NOOP`, whose methods are empty and whose ``enabled`` flag lets
call sites skip clock reads entirely::

    perf = self._perf
    started = perf.start() if perf.enabled else 0.0
    ...work...
    if perf.enabled:
        perf.stop("engine.check", started)

``benchmarks/bench_hotpath_regression.py`` records a live
:class:`PerfRecorder` snapshot into ``BENCH_hotpath.json`` so the perf
trajectory of later PRs is machine-comparable.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = [
    "PerfRecorder",
    "NoopPerfRecorder",
    "NOOP",
    "StageStats",
    "LATENCY_BUCKET_BOUNDS",
    "SIZE_BUCKET_BOUNDS",
]

#: Upper bounds (seconds) of the logarithmic latency buckets: 1µs to 10s
#: in 1-10 decades with a 1/2/5 subdivision, plus a catch-all overflow.
LATENCY_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (1.0, 2.0, 5.0)
) + (10.0,)

#: Upper bounds of the power-of-two size buckets used for dimensionless
#: distributions (wire batch sizes, frame counts).  Sizes are small
#: integers, so doubling bounds keep the histogram tight where batching
#: behaviour actually changes (1 vs 2 vs 8 requests per frame).
SIZE_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    float(1 << shift) for shift in range(11)  # 1 .. 1024
)


class StageStats:
    """Aggregated observations for one named stage.

    By default the buckets are the logarithmic *latency* bounds (values
    are seconds); pass ``bounds=SIZE_BUCKET_BOUNDS`` for dimensionless
    size distributions such as wire batch sizes.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "bounds")

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKET_BOUNDS) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        for index, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def merge(self, other: "StageStats") -> None:
        """Fold another stage's aggregates into this one.

        Both sides must share the same bucket bounds, so bucket counts
        add position-wise; used by the metrics exposition to combine
        recorders without double-emitting series.
        """
        if other.bounds != self.bounds:
            raise ValueError("cannot merge stages with different bucket bounds")
        self.count += other.count
        self.total += other.total
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        for index, bucket_count in enumerate(other.buckets):
            self.buckets[index] += bucket_count

    def quantile(self, q: float) -> float:
        """Approximate quantile from the histogram (bucket upper bound)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def to_dict(self) -> dict:
        # Latency stages keep their historical key format ("<=1e-03s")
        # so committed BENCH snapshots stay comparable; size stages use
        # plain integer-ish labels ("<=8").
        if self.bounds is LATENCY_BUCKET_BOUNDS:
            labels = [f"<={bound:.0e}s" for bound in self.bounds]
            overflow = f">{self.bounds[-1]:g}s"
        else:
            labels = [f"<={bound:g}" for bound in self.bounds]
            overflow = f">{self.bounds[-1]:g}"
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.total / self.count if self.count else 0.0,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
            "buckets": {
                labels[index]: self.buckets[index]
                for index in range(len(self.bounds))
                if self.buckets[index]
            }
            | ({overflow: self.buckets[-1]} if self.buckets[-1] else {}),
        }


class PerfRecorder:
    """Collects counters and stage timings for the decision pipeline.

    Not thread-safe by design: attach one recorder per PDP (or per
    benchmark run); merging snapshots across recorders is the caller's
    concern.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._counters: dict[str, int] = {}
        self._stages: dict[str, StageStats] = {}
        self._sizes: dict[str, StageStats] = {}

    # -- counters ------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """A copy of every counter (the metrics-exposition feed)."""
        return dict(self._counters)

    # -- stage timers --------------------------------------------------
    def start(self) -> float:
        """A timestamp token to later pass to :meth:`stop`."""
        return self._clock()

    def stop(self, stage: str, started: float) -> None:
        self.observe(stage, self._clock() - started)

    def observe(self, stage: str, seconds: float) -> None:
        stats = self._stages.get(stage)
        if stats is None:
            stats = self._stages[stage] = StageStats()
        stats.observe(seconds)

    def stage(self, name: str) -> StageStats | None:
        return self._stages.get(name)

    def stages(self) -> dict[str, StageStats]:
        """A shallow copy of the per-stage aggregates (read, don't mutate)."""
        return dict(self._stages)

    # -- size histograms -----------------------------------------------
    def observe_size(self, name: str, value: int) -> None:
        """Record a dimensionless size sample (e.g. ``wire.batch_size``)."""
        stats = self._sizes.get(name)
        if stats is None:
            stats = self._sizes[name] = StageStats(bounds=SIZE_BUCKET_BOUNDS)
        stats.observe(value)

    def size(self, name: str) -> StageStats | None:
        return self._sizes.get(name)

    def sizes(self) -> dict[str, StageStats]:
        """A shallow copy of the size histograms (read, don't mutate)."""
        return dict(self._sizes)

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-compatible dump of every counter and stage.

        The ``sizes`` section is additive: it only appears once a size
        histogram has been observed, so pre-existing snapshot consumers
        (and the empty-after-reset shape) are unchanged.
        """
        snap = {
            "counters": dict(sorted(self._counters.items())),
            "stages": {
                name: stats.to_dict()
                for name, stats in sorted(self._stages.items())
            },
        }
        if self._sizes:
            snap["sizes"] = {
                name: stats.to_dict()
                for name, stats in sorted(self._sizes.items())
            }
        return snap

    def reset(self) -> None:
        self._counters.clear()
        self._stages.clear()
        self._sizes.clear()


class NoopPerfRecorder(PerfRecorder):
    """The do-nothing recorder production code runs with by default.

    Every method is an empty override and ``enabled`` is False, so
    instrumented call sites cost one attribute load and (for timers)
    one branch — no clock reads, no dict traffic.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def incr(self, name: str, amount: int = 1) -> None:
        pass

    def start(self) -> float:
        return 0.0

    def stop(self, stage: str, started: float) -> None:
        pass

    def observe(self, stage: str, seconds: float) -> None:
        pass

    def observe_size(self, name: str, value: int) -> None:
        pass


#: Shared no-op instance; safe to use from any thread (it has no state).
NOOP = NoopPerfRecorder()

"""ANSI RBAC SSD and DSD constraint sets (Figure 1, paper Section 2.1).

A *static separation of duty* (SSD) set ``(roles, n)`` requires that no
user is assigned to ``n`` or more roles of the set.  With a role
hierarchy, the constraint applies to the user's *authorized* roles
(assigned roles plus everything they inherit).

A *dynamic separation of duty* (DSD) set ``(roles, n)`` requires that no
single session has ``n`` or more roles of the set active simultaneously.

These are the standard constraints the paper shows to be insufficient for
multi-session conflicts; they are implemented in full both as part of the
RBAC substrate (enforced at assignment/activation time) and re-used by
the :mod:`repro.baselines` comparison benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConstraintError


@dataclass(frozen=True)
class SoDSet:
    """A named m-out-of-n separation constraint over a role set."""

    name: str
    roles: frozenset[str]
    cardinality: int

    def __init__(self, name: str, roles: Iterable[str], cardinality: int) -> None:
        role_set = frozenset(roles)
        if not name:
            raise ConstraintError("constraint set needs a name")
        if len(role_set) < 2:
            raise ConstraintError(
                f"constraint set {name!r} needs at least 2 distinct roles"
            )
        if not 2 <= cardinality <= len(role_set):
            raise ConstraintError(
                f"constraint set {name!r}: cardinality must satisfy "
                f"2 <= n <= |roles| (got {cardinality} for {len(role_set)} roles)"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "roles", role_set)
        object.__setattr__(self, "cardinality", cardinality)

    def violated_by(self, role_set: Iterable[str]) -> bool:
        """True when ``role_set`` holds ``cardinality`` or more set members."""
        count = len(self.roles & set(role_set))
        return count >= self.cardinality

    def with_roles(self, roles: Iterable[str]) -> "SoDSet":
        return SoDSet(self.name, roles, min(self.cardinality, len(set(roles))))


class SsdConstraint(SoDSet):
    """Static SoD: constrains the roles *assigned/authorized* to a user."""


class DsdConstraint(SoDSet):
    """Dynamic SoD: constrains the roles *active* within one session."""

"""ANSI INCITS 359-2004 RBAC substrate (paper Section 2.1, Figure 1).

Provides core RBAC (users, roles, permissions, sessions, ``CheckAccess``),
general/limited role hierarchies, SSD and DSD constraint sets, and the
full complement of review functions.
"""

from repro.rbac.constraints import DsdConstraint, SoDSet, SsdConstraint
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import Permission
from repro.rbac.msod_system import (
    ANSI_ROLE_TYPE,
    MSoDAwareRBACSystem,
    as_msod_role,
)
from repro.rbac.sessions import Session
from repro.rbac.system import RBACSystem

__all__ = [
    "Permission",
    "RoleHierarchy",
    "Session",
    "RBACSystem",
    "SoDSet",
    "SsdConstraint",
    "DsdConstraint",
    "MSoDAwareRBACSystem",
    "as_msod_role",
    "ANSI_ROLE_TYPE",
]

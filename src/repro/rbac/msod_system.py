"""An ANSI RBAC system with decision-time MSoD enforcement.

Bridges Figure 1 and Figure 3: applications keep the familiar ANSI
session API (``create_session`` / ``add_active_role`` / ``check_access``)
while every access check additionally runs the Section-4.2 MSoD
algorithm, keyed on the *user behind the session* — which is exactly
what lets conflicts that span sessions be caught even though each
individual session looks innocent to SSD/DSD.

The ANSI ``CheckAccess(session, operation, object)`` signature gains one
argument: the business-context instance (Section 4.1's fifth parameter).
"""

from __future__ import annotations

from repro.core.constraints import Role
from repro.core.context import ContextName
from repro.core.decision import Decision, DecisionRequest, Effect
from repro.core.engine import MODE_STRICT, MSoDEngine
from repro.core.policy import MSoDPolicySet
from repro.core.retained_adi import InMemoryRetainedADIStore, RetainedADIStore
from repro.rbac.system import RBACSystem

#: Attribute type used when wrapping ANSI role names as MSoD roles.
ANSI_ROLE_TYPE = "ansiRole"


def as_msod_role(role_name: str) -> Role:
    """Wrap an ANSI role name (a plain string) as an MSoD role."""
    return Role(ANSI_ROLE_TYPE, role_name)


class MSoDAwareRBACSystem(RBACSystem):
    """ANSI RBAC plus multi-session separation of duties.

    All administrative and review functions are inherited unchanged from
    :class:`~repro.rbac.system.RBACSystem`; only the access-check path
    changes: :meth:`check_access_in_context` performs the ANSI permission
    check first (the "interim result"), then the MSoD algorithm over the
    retained ADI.
    """

    def __init__(
        self,
        msod_policies: MSoDPolicySet,
        store: RetainedADIStore | None = None,
        limited_hierarchy: bool = False,
        mode: str = MODE_STRICT,
    ) -> None:
        super().__init__(limited_hierarchy=limited_hierarchy)
        self._engine = MSoDEngine(
            msod_policies,
            store if store is not None else InMemoryRetainedADIStore(),
            mode=mode,
        )

    @property
    def msod_engine(self) -> MSoDEngine:
        return self._engine

    # ------------------------------------------------------------------
    def check_access_in_context(
        self,
        session_id: str,
        operation: str,
        obj: str,
        context_instance: ContextName,
        at: float = 0.0,
    ) -> Decision:
        """ANSI ``CheckAccess`` extended with the business context.

        Returns a full :class:`~repro.core.decision.Decision` rather than
        the ANSI boolean so callers can inspect MSoD violations.
        """
        session = self._require_session(session_id)
        request = DecisionRequest(
            user_id=session.user,
            roles=tuple(
                sorted(
                    (as_msod_role(role) for role in session.active_roles),
                    key=str,
                )
            ),
            operation=operation,
            target=obj,
            context_instance=context_instance,
            timestamp=at,
        )
        if not self.check_access(session_id, operation, obj):
            return Decision(
                effect=Effect.DENY,
                request=request,
                reason=(
                    "RBAC: no active role holds permission "
                    f"({operation!r} on {obj!r})"
                ),
            )
        return self._engine.check(request)

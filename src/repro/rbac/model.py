"""Basic element sets of the ANSI RBAC reference model (Figure 1).

ANSI INCITS 359-2004 defines five basic data elements — users, roles,
objects, operations and permissions — plus the user-assignment (UA) and
permission-assignment (PA) relations.  Users, roles, operations and
objects are identified by strings; a permission is an (operation, object)
pair, i.e. "the right to perform an operation on an object".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RBACError


@dataclass(frozen=True, slots=True)
class Permission:
    """An approval to perform an operation on a protected object."""

    operation: str
    obj: str

    def __post_init__(self) -> None:
        if not self.operation:
            raise RBACError("permission operation must be non-empty")
        if not self.obj:
            raise RBACError("permission object must be non-empty")

    def __str__(self) -> str:
        return f"({self.operation}, {self.obj})"

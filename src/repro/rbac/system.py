"""An ANSI INCITS 359-2004 RBAC system facade.

Combines core RBAC (users, roles, UA, PA, sessions, ``CheckAccess``),
hierarchical RBAC (general or limited role hierarchies) and the SSD/DSD
constrained-RBAC components into one administrative and decision API.
Method names follow the ANSI functional specification (snake-cased).

This is the substrate of paper Figure 1 — the system whose assignment-
time (SSD) and activation-time (DSD) enforcement points the paper shows
to be insufficient for multi-session conflicts.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.errors import (
    ConstraintViolationError,
    DuplicateEntityError,
    RBACError,
    SessionError,
    UnknownEntityError,
)
from repro.rbac.constraints import DsdConstraint, SsdConstraint
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import Permission
from repro.rbac.sessions import Session


class RBACSystem:
    """A complete ANSI RBAC reference implementation."""

    def __init__(self, limited_hierarchy: bool = False) -> None:
        self._users: set[str] = set()
        self._roles: set[str] = set()
        self._ua: dict[str, set[str]] = {}  # user -> assigned roles
        self._pa: dict[str, set[Permission]] = {}  # role -> permissions
        self._hierarchy = RoleHierarchy(limited=limited_hierarchy)
        self._ssd: dict[str, SsdConstraint] = {}
        self._dsd: dict[str, DsdConstraint] = {}
        self._sessions: dict[str, Session] = {}
        self._session_counter = itertools.count(1)

    # ==================================================================
    # Core RBAC: administrative commands
    # ==================================================================
    def add_user(self, user: str) -> None:
        if user in self._users:
            raise DuplicateEntityError(f"user {user!r} already exists")
        self._users.add(user)
        self._ua[user] = set()

    def delete_user(self, user: str) -> None:
        """Remove a user; their sessions are terminated (ANSI semantics)."""
        self._require_user(user)
        for session in list(self._sessions.values()):
            if session.user == user:
                self.delete_session(session.session_id)
        del self._ua[user]
        self._users.discard(user)

    def add_role(self, role: str) -> None:
        if role in self._roles:
            raise DuplicateEntityError(f"role {role!r} already exists")
        self._roles.add(role)
        self._pa[role] = set()
        self._hierarchy.add_role(role)

    def delete_role(self, role: str) -> None:
        """Remove a role from every relation it participates in."""
        self._require_role(role)
        for session in self._sessions.values():
            if role in session.active_roles:
                session.drop(role)
        for assigned in self._ua.values():
            assigned.discard(role)
        self._hierarchy.remove_role(role)
        del self._pa[role]
        self._roles.discard(role)

    def assign_user(self, user: str, role: str) -> None:
        """ANSI ``AssignUser`` — the SSD enforcement point.

        The assignment is rejected when the user's *authorized* role set
        (assigned roles closed downward over the hierarchy, plus the new
        role and its juniors) would violate any SSD constraint.  This is
        the paper's Section 2.1 observation: SSD "can be enforced by the
        administrative function at role assignment time because the
        administrative system has full control over the assignment of all
        roles to users" — an assumption MSoD removes.
        """
        self._require_user(user)
        self._require_role(role)
        if role in self._ua[user]:
            raise DuplicateEntityError(f"user {user!r} already has role {role!r}")
        prospective = self._hierarchy.authorized_roles(self._ua[user] | {role})
        for constraint in self._ssd.values():
            if constraint.violated_by(prospective):
                raise ConstraintViolationError(
                    f"assigning {role!r} to {user!r} violates SSD set "
                    f"{constraint.name!r}"
                )
        self._ua[user].add(role)

    def deassign_user(self, user: str, role: str) -> None:
        self._require_user(user)
        if role not in self._ua[user]:
            raise UnknownEntityError(f"user {user!r} does not have role {role!r}")
        for session in self._sessions.values():
            if session.user == user and role in session.active_roles:
                session.drop(role)
        self._ua[user].discard(role)

    def grant_permission(self, role: str, permission: Permission) -> None:
        self._require_role(role)
        if permission in self._pa[role]:
            raise DuplicateEntityError(
                f"role {role!r} already holds permission {permission}"
            )
        self._pa[role].add(permission)

    def revoke_permission(self, role: str, permission: Permission) -> None:
        self._require_role(role)
        if permission not in self._pa[role]:
            raise UnknownEntityError(
                f"role {role!r} does not hold permission {permission}"
            )
        self._pa[role].discard(permission)

    # ==================================================================
    # Hierarchical RBAC
    # ==================================================================
    def add_inheritance(self, senior: str, junior: str) -> None:
        """Add ``senior >= junior``, re-validating SSD for all users."""
        self._require_role(senior)
        self._require_role(junior)
        self._hierarchy.add_inheritance(senior, junior)
        try:
            self._validate_all_ssd()
        except ConstraintViolationError:
            self._hierarchy.delete_inheritance(senior, junior)
            raise

    def delete_inheritance(self, senior: str, junior: str) -> None:
        self._hierarchy.delete_inheritance(senior, junior)

    def add_ascendant(self, new_role: str, junior: str) -> None:
        """ANSI ``AddAscendant``: create a role as an immediate senior."""
        self.add_role(new_role)
        self.add_inheritance(new_role, junior)

    def add_descendant(self, new_role: str, senior: str) -> None:
        """ANSI ``AddDescendant``: create a role as an immediate junior."""
        self.add_role(new_role)
        self.add_inheritance(senior, new_role)

    @property
    def hierarchy(self) -> RoleHierarchy:
        return self._hierarchy

    # ==================================================================
    # SSD / DSD administration
    # ==================================================================
    def create_ssd_set(
        self, name: str, roles: Iterable[str], cardinality: int
    ) -> SsdConstraint:
        """Create an SSD set; existing assignments must already satisfy it."""
        if name in self._ssd:
            raise DuplicateEntityError(f"SSD set {name!r} already exists")
        constraint = SsdConstraint(name, roles, cardinality)
        for role in constraint.roles:
            self._require_role(role)
        self._ssd[name] = constraint
        try:
            self._validate_all_ssd()
        except ConstraintViolationError:
            del self._ssd[name]
            raise
        return constraint

    def delete_ssd_set(self, name: str) -> None:
        if name not in self._ssd:
            raise UnknownEntityError(f"no SSD set {name!r}")
        del self._ssd[name]

    def create_dsd_set(
        self, name: str, roles: Iterable[str], cardinality: int
    ) -> DsdConstraint:
        """Create a DSD set; live sessions must already satisfy it."""
        if name in self._dsd:
            raise DuplicateEntityError(f"DSD set {name!r} already exists")
        constraint = DsdConstraint(name, roles, cardinality)
        for role in constraint.roles:
            self._require_role(role)
        for session in self._sessions.values():
            if constraint.violated_by(session.active_roles):
                raise ConstraintViolationError(
                    f"live session {session.session_id!r} violates new DSD "
                    f"set {name!r}"
                )
        self._dsd[name] = constraint
        return constraint

    def delete_dsd_set(self, name: str) -> None:
        if name not in self._dsd:
            raise UnknownEntityError(f"no DSD set {name!r}")
        del self._dsd[name]

    def ssd_role_sets(self) -> dict[str, SsdConstraint]:
        return dict(self._ssd)

    def dsd_role_sets(self) -> dict[str, DsdConstraint]:
        return dict(self._dsd)

    def _validate_all_ssd(self) -> None:
        for user, assigned in self._ua.items():
            authorized = self._hierarchy.authorized_roles(assigned)
            for constraint in self._ssd.values():
                if constraint.violated_by(authorized):
                    raise ConstraintViolationError(
                        f"user {user!r} violates SSD set {constraint.name!r}"
                    )

    # ==================================================================
    # Sessions: supporting system functions
    # ==================================================================
    def create_session(
        self, user: str, initial_roles: Iterable[str] = ()
    ) -> Session:
        """ANSI ``CreateSession`` — DSD is enforced as roles activate."""
        self._require_user(user)
        session = Session(f"sess-{next(self._session_counter):06d}", user)
        self._sessions[session.session_id] = session
        try:
            for role in initial_roles:
                self.add_active_role(session.session_id, role)
        except RBACError:
            self.delete_session(session.session_id)
            raise
        return session

    def delete_session(self, session_id: str) -> None:
        session = self._require_session(session_id)
        session.terminate()
        del self._sessions[session_id]

    def add_active_role(self, session_id: str, role: str) -> None:
        """ANSI ``AddActiveRole`` — the DSD enforcement point.

        Activation requires the user to be *authorized* for the role and
        the session's prospective active set to satisfy every DSD
        constraint.  The paper's Section 2.1 observation: conflicts that
        never co-occur in one session slip straight through this check.
        """
        session = self._require_session(session_id)
        self._require_role(role)
        authorized = self._hierarchy.authorized_roles(self._ua[session.user])
        if role not in authorized:
            raise SessionError(
                f"user {session.user!r} is not authorized for role {role!r}"
            )
        prospective = set(session.active_roles) | {role}
        for constraint in self._dsd.values():
            if constraint.violated_by(prospective):
                raise ConstraintViolationError(
                    f"activating {role!r} in session {session_id!r} violates "
                    f"DSD set {constraint.name!r}"
                )
        session.activate(role)

    def drop_active_role(self, session_id: str, role: str) -> None:
        session = self._require_session(session_id)
        session.drop(role)

    def check_access(
        self, session_id: str, operation: str, obj: str
    ) -> bool:
        """ANSI ``CheckAccess``: may the session perform operation on obj?

        True iff some role active in the session (or a junior it
        inherits) holds the permission.
        """
        session = self._require_session(session_id)
        permission = Permission(operation, obj)
        for role in session.active_roles:
            if permission in self._pa.get(role, ()):
                return True
            for junior in self._hierarchy.juniors_of(role):
                if permission in self._pa.get(junior, ()):
                    return True
        return False

    # ==================================================================
    # Review functions
    # ==================================================================
    def users(self) -> frozenset[str]:
        return frozenset(self._users)

    def roles(self) -> frozenset[str]:
        return frozenset(self._roles)

    def sessions(self) -> dict[str, Session]:
        return dict(self._sessions)

    def assigned_users(self, role: str) -> frozenset[str]:
        """Users directly assigned to the role."""
        self._require_role(role)
        return frozenset(
            user for user, assigned in self._ua.items() if role in assigned
        )

    def assigned_roles(self, user: str) -> frozenset[str]:
        """Roles directly assigned to the user."""
        self._require_user(user)
        return frozenset(self._ua[user])

    def authorized_users(self, role: str) -> frozenset[str]:
        """Users authorized for the role, via assignment or seniority."""
        self._require_role(role)
        covering = {role} | self._hierarchy.seniors_of(role)
        return frozenset(
            user
            for user, assigned in self._ua.items()
            if assigned & covering
        )

    def authorized_roles(self, user: str) -> frozenset[str]:
        """All roles the user may activate (assignment closed downward)."""
        self._require_user(user)
        return self._hierarchy.authorized_roles(self._ua[user])

    def role_permissions(self, role: str) -> frozenset[Permission]:
        """Permissions of the role, including inherited ones."""
        self._require_role(role)
        permissions = set(self._pa[role])
        for junior in self._hierarchy.juniors_of(role):
            permissions |= self._pa.get(junior, set())
        return frozenset(permissions)

    def user_permissions(self, user: str) -> frozenset[Permission]:
        """Permissions the user could obtain through any authorized role."""
        permissions: set[Permission] = set()
        for role in self.authorized_roles(user):
            permissions |= self._pa.get(role, set())
        return frozenset(permissions)

    def session_roles(self, session_id: str) -> frozenset[str]:
        return self._require_session(session_id).active_roles

    def session_permissions(self, session_id: str) -> frozenset[Permission]:
        session = self._require_session(session_id)
        permissions: set[Permission] = set()
        for role in session.active_roles:
            permissions |= self.role_permissions(role)
        return frozenset(permissions)

    def role_operations_on_object(self, role: str, obj: str) -> frozenset[str]:
        return frozenset(
            permission.operation
            for permission in self.role_permissions(role)
            if permission.obj == obj
        )

    def user_operations_on_object(self, user: str, obj: str) -> frozenset[str]:
        return frozenset(
            permission.operation
            for permission in self.user_permissions(user)
            if permission.obj == obj
        )

    # ==================================================================
    def _require_user(self, user: str) -> None:
        if user not in self._users:
            raise UnknownEntityError(f"unknown user {user!r}")

    def _require_role(self, role: str) -> None:
        if role not in self._roles:
            raise UnknownEntityError(f"unknown role {role!r}")

    def _require_session(self, session_id: str) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownEntityError(f"unknown session {session_id!r}")
        return session

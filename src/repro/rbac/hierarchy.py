"""Hierarchical RBAC: the role hierarchy (RH) relation of Figure 1.

Implements the *general* role hierarchy of ANSI INCITS 359-2004: an
arbitrary acyclic partial order over roles, where a senior role inherits
all permissions of its juniors and every user assigned to a senior role
is authorized for its juniors.

``senior >= junior`` is written here as an *inheritance edge*
``(senior, junior)``.  The hierarchy rejects edges that would create a
cycle, and supports the ANSI limited-hierarchy restriction (each role has
at most one immediate descendant) as an optional construction flag.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import RBACError, UnknownEntityError


class RoleHierarchy:
    """An immutable-by-convention DAG of role inheritance."""

    def __init__(self, limited: bool = False) -> None:
        self._juniors: dict[str, set[str]] = {}
        self._seniors: dict[str, set[str]] = {}
        self._limited = limited

    # ------------------------------------------------------------------
    @property
    def limited(self) -> bool:
        """True when the ANSI limited-hierarchy restriction is enforced."""
        return self._limited

    def add_role(self, role: str) -> None:
        """Register a role with no inheritance relationships yet."""
        self._juniors.setdefault(role, set())
        self._seniors.setdefault(role, set())

    def remove_role(self, role: str) -> None:
        """Drop a role and all its edges."""
        for junior in self._juniors.pop(role, set()):
            self._seniors[junior].discard(role)
        for senior in self._seniors.pop(role, set()):
            self._juniors[senior].discard(role)

    def roles(self) -> frozenset[str]:
        return frozenset(self._juniors)

    # ------------------------------------------------------------------
    def add_inheritance(self, senior: str, junior: str) -> None:
        """ANSI ``AddInheritance``: establish ``senior >= junior``.

        Rejects self-inheritance, unknown roles, duplicate edges and
        edges that would introduce a cycle; with ``limited=True`` also
        rejects a second immediate junior for the same senior.
        """
        if senior == junior:
            raise RBACError(f"role {senior!r} cannot inherit itself")
        for role in (senior, junior):
            if role not in self._juniors:
                raise UnknownEntityError(f"unknown role {role!r}")
        if junior in self._juniors[senior]:
            raise RBACError(f"inheritance {senior!r} >= {junior!r} already exists")
        if self.inherits(junior, senior):
            raise RBACError(
                f"adding {senior!r} >= {junior!r} would create a cycle"
            )
        if self._limited and self._juniors[senior]:
            raise RBACError(
                f"limited hierarchy: {senior!r} already has an immediate junior"
            )
        self._juniors[senior].add(junior)
        self._seniors[junior].add(senior)

    def delete_inheritance(self, senior: str, junior: str) -> None:
        """ANSI ``DeleteInheritance``: remove an immediate edge."""
        if junior not in self._juniors.get(senior, set()):
            raise RBACError(f"no immediate inheritance {senior!r} >= {junior!r}")
        self._juniors[senior].discard(junior)
        self._seniors[junior].discard(senior)

    # ------------------------------------------------------------------
    def _closure(self, start: str, edges: Mapping[str, set[str]]) -> frozenset[str]:
        if start not in edges:
            raise UnknownEntityError(f"unknown role {start!r}")
        seen: set[str] = set()
        stack = [start]
        while stack:
            role = stack.pop()
            for nxt in edges.get(role, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    def juniors_of(self, role: str) -> frozenset[str]:
        """All roles transitively inherited by ``role`` (excluding it)."""
        return self._closure(role, self._juniors)

    def seniors_of(self, role: str) -> frozenset[str]:
        """All roles that transitively inherit ``role`` (excluding it)."""
        return self._closure(role, self._seniors)

    def inherits(self, senior: str, junior: str) -> bool:
        """True when ``senior >= junior`` in the transitive closure."""
        if senior == junior:
            return True
        return junior in self.juniors_of(senior)

    def authorized_roles(self, assigned: Iterable[str]) -> frozenset[str]:
        """All roles a user with the given assignments is authorized for.

        A user assigned a senior role is implicitly authorized for every
        junior of it (downward closure over the hierarchy).
        """
        authorized: set[str] = set()
        for role in assigned:
            authorized.add(role)
            authorized |= self.juniors_of(role)
        return frozenset(authorized)

    def immediate_juniors(self, role: str) -> frozenset[str]:
        if role not in self._juniors:
            raise UnknownEntityError(f"unknown role {role!r}")
        return frozenset(self._juniors[role])

    def immediate_seniors(self, role: str) -> frozenset[str]:
        if role not in self._seniors:
            raise UnknownEntityError(f"unknown role {role!r}")
        return frozenset(self._seniors[role])

"""User access-control sessions (Figure 1's ``Sessions`` element).

A session maps one user to a subset of the roles they are authorized
for.  "A user must be active in a role before he can exercise the
privileges of that role" (paper Section 2.1).
"""

from __future__ import annotations

from repro.errors import SessionError


class Session:
    """One user session with its activated role set."""

    __slots__ = ("_session_id", "_user", "_active_roles", "_alive")

    def __init__(self, session_id: str, user: str) -> None:
        if not session_id:
            raise SessionError("session id must be non-empty")
        if not user:
            raise SessionError("session user must be non-empty")
        self._session_id = session_id
        self._user = user
        self._active_roles: set[str] = set()
        self._alive = True

    @property
    def session_id(self) -> str:
        return self._session_id

    @property
    def user(self) -> str:
        return self._user

    @property
    def active_roles(self) -> frozenset[str]:
        return frozenset(self._active_roles)

    @property
    def alive(self) -> bool:
        return self._alive

    def _ensure_alive(self) -> None:
        if not self._alive:
            raise SessionError(f"session {self._session_id!r} is terminated")

    def activate(self, role: str) -> None:
        """Record a role as active (authorization is checked by the system)."""
        self._ensure_alive()
        if role in self._active_roles:
            raise SessionError(
                f"role {role!r} is already active in session {self._session_id!r}"
            )
        self._active_roles.add(role)

    def drop(self, role: str) -> None:
        self._ensure_alive()
        if role not in self._active_roles:
            raise SessionError(
                f"role {role!r} is not active in session {self._session_id!r}"
            )
        self._active_roles.discard(role)

    def terminate(self) -> None:
        """End the session; it can no longer activate roles."""
        self._alive = False
        self._active_roles.clear()

    def __repr__(self) -> str:
        state = "alive" if self._alive else "terminated"
        return (
            f"Session({self._session_id!r}, user={self._user!r}, "
            f"active={sorted(self._active_roles)}, {state})"
        )

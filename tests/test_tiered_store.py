"""Tests for the tiered (hot/warm) retained-ADI store.

The tiered store keeps per-user aggregates for a bounded LRU set of
users over an authoritative warm layer, hydrating cold users lazily.
These tests pin the behaviours the scale bench relies on: reads agree
with an always-resident oracle through eviction/rehydration cycles,
writes keep hot aggregates and the context-presence index in sync,
hydration happens entirely under the user's shard lock (a concurrent
reader never observes a partially-built aggregate), and ``stats()``
reports the counters the metrics endpoint exports.
"""

import threading
import time

import pytest

from repro.core import (
    MMER,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    RetainedADIRecord,
    Role,
    SQLiteRetainedADIStore,
    TieredADIStore,
    store_digest,
)
from repro.errors import StoreError

ROOT = ContextName.root()
TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def record(user, index, *, role=TELLER, branch="York", granted_at=None):
    return RetainedADIRecord(
        user_id=user,
        roles=(role,),
        operation="handleCash",
        target="till://1",
        context_instance=ContextName.parse(f"Branch={branch}, Period=P1"),
        granted_at=float(index) if granted_at is None else granted_at,
        request_id=f"req-{user}-{index}",
    )


def tiered(**kwargs):
    kwargs.setdefault("hot_users", 2)
    kwargs.setdefault("shards", 1)
    return TieredADIStore(InMemoryRetainedADIStore(), **kwargs)


class TestConstruction:
    def test_rejects_nonpositive_budgets(self):
        warm = InMemoryRetainedADIStore()
        with pytest.raises(StoreError):
            TieredADIStore(warm, hot_users=0)
        with pytest.raises(StoreError):
            TieredADIStore(warm, hot_users=4, shards=0)

    def test_rejects_tiered_warm_layer(self):
        with pytest.raises(StoreError):
            TieredADIStore(tiered())

    def test_shards_never_exceed_hot_budget(self):
        store = TieredADIStore(
            InMemoryRetainedADIStore(), hot_users=3, shards=16
        )
        assert store.stats()["hot_shards"] == 3

    def test_adopts_prepopulated_warm_layer(self):
        warm = InMemoryRetainedADIStore()
        warm.add(record("alice", 0))
        store = TieredADIStore(warm, hot_users=4)
        assert store.has_context(ContextName.parse("Branch=York, Period=P1"))
        assert store.user_roles("alice", ROOT) == frozenset({TELLER})


class TestEvictionAndRehydration:
    def test_lru_evicts_least_recent_and_rehydrates(self):
        store = tiered(hot_users=2)
        for user in ("u0", "u1", "u2"):
            store.add(record(user, 0))
        # Residency is read-driven (writes to cold users stay warm-only).
        store.user_roles("u0", ROOT)
        store.user_roles("u1", ROOT)
        store.user_roles("u0", ROOT)  # u0 now most recent
        store.user_roles("u2", ROOT)  # hydrates u2, evicts u1
        assert set(store.resident_users()) == {"u0", "u2"}
        # The evicted user's history is intact and rehydrates lazily.
        before = store.stats()["hydrations"]
        assert store.user_roles("u1", ROOT) == frozenset({TELLER})
        stats = store.stats()
        assert stats["hydrations"] == before + 1
        assert stats["evictions"] >= 1
        assert stats["resident_users"] <= 2

    def test_reads_match_always_resident_oracle_across_cycles(self):
        oracle = InMemoryRetainedADIStore()
        store = tiered(hot_users=2)
        users = [f"u{index}" for index in range(6)]
        for index, user in enumerate(users * 3):
            rec = record(user, index, branch=f"B{index % 2}")
            oracle.add(rec)
            store.add(record(user, index, branch=f"B{index % 2}"))
        query = ContextName.parse("Branch=B1, Period=P1")
        for user in users:
            assert store.user_roles(user, query) == oracle.user_roles(
                user, query
            )
            assert store.user_privilege_exercises(
                user, query
            ) == oracle.user_privilege_exercises(user, query)
            assert [r.request_id for r in store.find_user(user, ROOT)] == [
                r.request_id for r in oracle.find_user(user, ROOT)
            ]
        assert store.stats()["evictions"] > 0
        assert store_digest(store) == store_digest(oracle)

    def test_write_to_evicted_user_lands_in_warm(self):
        store = tiered(hot_users=1)
        store.add(record("u0", 0))
        store.add(record("u1", 0))  # evicts u0
        store.add(record("u0", 1))  # cold write: warm only
        assert len(store.find_user("u0", ROOT)) == 2


class TestPurges:
    def test_purge_user_drops_hot_entry_and_presence(self):
        store = tiered(hot_users=4)
        store.add(record("alice", 0))
        store.add(record("bob", 0, branch="Leeds"))
        assert store.purge_user("alice") == 1
        assert "alice" not in store.resident_users()
        assert store.user_roles("alice", ROOT) == frozenset()
        assert not store.has_context(
            ContextName.parse("Branch=York, Period=P1")
        )
        assert store.has_context(ContextName.parse("Branch=Leeds, Period=P1"))

    def test_purge_older_than_updates_hot_aggregates(self):
        store = tiered(hot_users=4)
        store.add(record("alice", 0, granted_at=1.0))
        store.add(record("alice", 1, granted_at=5.0))
        store.user_roles("alice", ROOT)  # resident
        assert store.purge_older_than(2.0) == 1
        assert [r.request_id for r in store.find_user("alice", ROOT)] == [
            "req-alice-1"
        ]

    def test_purge_context_and_clear(self):
        store = tiered(hot_users=4)
        store.add(record("alice", 0))
        store.add(record("alice", 1, branch="Leeds"))
        assert store.purge_context(ContextName.parse("Branch=York")) == 1
        assert store.count() == 1
        assert store.clear() == 1
        assert store.count() == 0
        assert not store.has_context(ROOT.parse("Branch=Leeds"))


class TestStatsAndPlumbing:
    def test_stats_shape(self):
        store = tiered(hot_users=2)
        store.add(record("alice", 0))
        store.user_roles("alice", ROOT)  # hydrate
        stats = store.stats()
        assert stats["backend"] == "tiered"
        assert stats["records"] == 1
        assert stats["resident_users"] == 1
        assert stats["hot_capacity"] == 2
        assert stats["warm"]["backend"] == "memory"

    def test_close_owns_warm(self, tmp_path):
        warm = SQLiteRetainedADIStore(str(tmp_path / "warm.db"))
        store = TieredADIStore(warm, hot_users=2, owns_warm=True)
        store.add(record("alice", 0))
        store.close()
        with pytest.raises(Exception):
            warm.count()

    def test_invalidate_policy_memos_keeps_reads_correct(self):
        store = tiered(hot_users=4)
        store.add(record("alice", 0))
        query = ContextName.parse("Branch=*, Period=P1")
        assert store.has_context(query)
        assert store.user_roles("alice", query) == frozenset({TELLER})
        store.invalidate_policy_memos()
        assert store.has_context(query)
        assert store.user_roles("alice", query) == frozenset({TELLER})

    def test_hydrator_hook_catches_warm_layer_up(self):
        """A lagging warm layer is repaired just-in-time, under the lock."""
        warm = InMemoryRetainedADIStore()
        pending = {"alice": [record("alice", 0), record("alice", 1)]}

        def hydrator(user_id):
            for rec in pending.pop(user_id, ()):
                warm.add(rec)

        store = TieredADIStore(warm, hot_users=2, hydrator=hydrator)
        assert len(store.find_user("alice", ROOT)) == 2
        assert pending == {}


class _SlowWarm:
    """Warm-layer wrapper whose ``find_user`` trickles records out,
    widening the hydration window a racing reader could observe."""

    def __init__(self, inner, started):
        self._inner = inner
        self._started = started

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def find_user(self, user_id, effective_context):
        records = self._inner.find_user(user_id, effective_context)

        def trickle():
            self._started.set()
            for rec in records:
                time.sleep(0.005)
                yield rec

        return trickle()


class TestHydrationLocking:
    def test_concurrent_reader_never_sees_partial_hydration(self):
        """Hydration runs under the user's shard lock: a reader racing a
        slow hydration blocks and then sees the complete aggregate,
        never a prefix of it."""
        warm = InMemoryRetainedADIStore()
        n_records = 8
        for index in range(n_records):
            warm.add(record("alice", index, branch=f"B{index}"))
        started = threading.Event()
        store = TieredADIStore(
            _SlowWarm(warm, started), hot_users=2, shards=1
        )
        observed = []

        def racing_reader():
            started.wait(timeout=5.0)
            observed.append(len(store.find_user("alice", ROOT)))

        reader = threading.Thread(target=racing_reader)
        reader.start()
        hydrated = store.find_user("alice", ROOT)
        reader.join(timeout=10.0)
        assert not reader.is_alive()
        assert len(hydrated) == n_records
        assert observed == [n_records]
        # Both threads were served by a single hydration.
        assert store.stats()["hydrations"] == 1

    def test_parallel_users_on_distinct_shards(self):
        store = TieredADIStore(
            InMemoryRetainedADIStore(), hot_users=8, shards=4
        )
        users = [f"u{index}" for index in range(16)]
        for index, user in enumerate(users):
            store.add(record(user, index))
        errors = []

        def worker(user):
            try:
                for _ in range(50):
                    assert store.user_roles(user, ROOT) == frozenset({TELLER})
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(u,)) for u in users]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestEngineIntegration:
    def test_engine_decisions_match_always_resident_backend(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Branch=*, Period=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="bank",
                )
            ]
        )
        oracle_store = InMemoryRetainedADIStore()
        hot_store = tiered(hot_users=2)
        oracle = MSoDEngine(policy_set, oracle_store)
        engine = MSoDEngine(policy_set, hot_store)
        users = [f"u{index}" for index in range(6)]
        for index in range(60):
            user = users[index % len(users)]
            role = TELLER if index % 5 else AUDITOR
            operation, target = (
                ("handleCash", "till://1")
                if role is TELLER
                else ("auditBooks", "ledger://1")
            )
            request = DecisionRequest(
                user_id=user,
                roles=(role,),
                operation=operation,
                target=target,
                context_instance=ContextName.parse(
                    f"Branch=B{index % 3}, Period=P{index % 2}"
                ),
                timestamp=float(index),
                request_id=f"r{index}",
            )
            expected = oracle.check(request)
            actual = engine.check(request)
            assert (actual.effect, actual.records_added) == (
                expected.effect,
                expected.records_added,
            ), f"diverged at step {index}"
        assert hot_store.stats()["evictions"] > 0
        assert store_digest(hot_store) == store_digest(oracle_store)

"""Tests for :mod:`repro.perf` and its wiring through the pipeline."""

import pytest

from repro.core import (
    ContextName,
    DecisionRequest,
    Effect,
    InMemoryRetainedADIStore,
    MMER,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
)
from repro.framework.pdp import ReferenceRBACMSoDPDP, RoleTargetAccessPolicy
from repro.perf import (
    LATENCY_BUCKET_BOUNDS,
    NOOP,
    NoopPerfRecorder,
    PerfRecorder,
    StageStats,
)

_CLERK = Role("role", "Clerk")
_AUDITOR = Role("role", "Auditor")


def _engine(perf=None, store=None):
    policy_set = MSoDPolicySet(
        [
            MSoDPolicy(
                business_context=ContextName.parse("Dept=*"),
                mmers=[MMER([_CLERK, _AUDITOR], 2)],
                policy_id="p1",
            )
        ]
    )
    return MSoDEngine(
        policy_set, store if store is not None else InMemoryRetainedADIStore(),
        perf=perf,
    )


def _request(index, user, role, dept="d1"):
    return DecisionRequest(
        user_id=user,
        roles=(role,),
        operation="op",
        target="t",
        context_instance=ContextName.parse(f"Dept={dept}"),
        timestamp=float(index),
        request_id=f"r{index}",
    )


class TestPerfRecorder:
    def test_counters_accumulate(self):
        perf = PerfRecorder()
        perf.incr("a")
        perf.incr("a", 4)
        assert perf.counter("a") == 5
        assert perf.counter("missing") == 0

    def test_stage_timing_with_fake_clock(self):
        ticks = iter([1.0, 1.25])
        perf = PerfRecorder(clock=lambda: next(ticks))
        started = perf.start()
        perf.stop("stage", started)
        stats = perf.stage("stage")
        assert stats.count == 1
        assert stats.total == pytest.approx(0.25)
        assert stats.min == pytest.approx(0.25)
        assert stats.max == pytest.approx(0.25)

    def test_snapshot_and_reset(self):
        perf = PerfRecorder()
        perf.incr("n", 2)
        perf.observe("s", 0.003)
        snap = perf.snapshot()
        assert snap["counters"] == {"n": 2}
        assert snap["stages"]["s"]["count"] == 1
        perf.reset()
        assert perf.snapshot() == {"counters": {}, "stages": {}}

    def test_histogram_buckets_and_quantiles(self):
        stats = StageStats()
        for seconds in (1e-6, 1e-6, 1e-3, 1.0):
            stats.observe(seconds)
        assert stats.count == 4
        assert sum(stats.buckets) == 4
        # Quantiles are approximated by bucket upper bounds.
        assert stats.quantile(0.5) in LATENCY_BUCKET_BOUNDS
        assert stats.quantile(1.0) >= stats.quantile(0.25)
        assert StageStats().quantile(0.5) == 0.0

    def test_overflow_bucket(self):
        stats = StageStats()
        stats.observe(99.0)
        assert stats.buckets[-1] == 1
        assert ">10s" in stats.to_dict()["buckets"]


class TestNoop:
    def test_noop_records_nothing(self):
        noop = NoopPerfRecorder()
        noop.incr("x")
        noop.stop("s", noop.start())
        noop.observe("s", 1.0)
        assert noop.counter("x") == 0
        assert noop.stage("s") is None
        assert noop.enabled is False

    def test_shared_noop_is_disabled(self):
        assert NOOP.enabled is False


class TestEngineWiring:
    def test_engine_counts_grants_and_denies(self):
        perf = PerfRecorder()
        engine = _engine(perf=perf)
        assert engine.check(_request(0, "alice", _CLERK)).effect is Effect.GRANT
        assert engine.check(_request(1, "alice", _AUDITOR)).effect is Effect.DENY
        assert perf.counter("engine.requests") == 2
        assert perf.counter("engine.grants") == 1
        assert perf.counter("engine.denies") == 1
        # The context-starting grant stores the base record plus the
        # MMER role record (algorithm steps 4 and 5.iv).
        assert perf.counter("engine.records_added") == 2
        assert perf.stage("engine.check").count == 2

    def test_engine_counts_unmatched_contexts(self):
        perf = PerfRecorder()
        engine = _engine(perf=perf)
        decision = engine.check(
            DecisionRequest(
                user_id="alice",
                roles=(_CLERK,),
                operation="op",
                target="t",
                context_instance=ContextName.parse("Elsewhere=e1"),
                request_id="r0",
            )
        )
        assert decision.effect is Effect.GRANT
        assert perf.counter("engine.no_policy_matched") == 1

    def test_engine_defaults_to_noop(self):
        engine = _engine()
        assert engine.perf is NOOP
        engine.check(_request(0, "alice", _CLERK))
        assert NOOP.counter("engine.requests") == 0

    def test_decisions_identical_with_and_without_perf(self):
        with_perf = _engine(perf=PerfRecorder())
        without = _engine()
        for index, (user, role) in enumerate(
            [("a", _CLERK), ("a", _AUDITOR), ("b", _AUDITOR), ("b", _CLERK)]
        ):
            lhs = with_perf.check(_request(index, user, role))
            rhs = without.check(_request(index, user, role))
            assert (lhs.effect, lhs.reason) == (rhs.effect, rhs.reason)


class TestPDPWiring:
    def test_reference_pdp_counts_rbac_denies(self):
        perf = PerfRecorder()
        access = RoleTargetAccessPolicy({_CLERK: []})
        pdp = ReferenceRBACMSoDPDP(access, _engine(perf=perf), perf=perf)
        decision = pdp.decide(_request(0, "alice", _CLERK))
        assert decision.effect is Effect.DENY
        assert perf.counter("pdp.requests") == 1
        assert perf.counter("pdp.rbac_denies") == 1
        assert perf.stage("pdp.rbac").count == 1

"""Tests for the MSoD-aware ANSI RBAC facade (Figure 1 + Figure 3)."""

import pytest

from repro.core import MMER, ContextName, MSoDPolicy, MSoDPolicySet
from repro.core.policy import Step
from repro.rbac import MSoDAwareRBACSystem, Permission, as_msod_role

CTX_2006 = ContextName.parse("Branch=York, Period=2006")
CTX_LEEDS = ContextName.parse("Branch=Leeds, Period=2006")
CTX_2007 = ContextName.parse("Branch=York, Period=2007")


def msod_policies():
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[
                    MMER(
                        [as_msod_role("teller"), as_msod_role("auditor")], 2
                    )
                ],
                last_step=Step("CommitAudit", "audit-db"),
                policy_id="bank",
            )
        ]
    )


@pytest.fixture
def bank():
    system = MSoDAwareRBACSystem(msod_policies())
    system.add_user("alice")
    system.add_user("victor")
    for role in ("teller", "auditor"):
        system.add_role(role)
    system.grant_permission("teller", Permission("handleCash", "till"))
    system.grant_permission("auditor", Permission("audit", "ledger"))
    system.grant_permission("auditor", Permission("CommitAudit", "audit-db"))
    system.assign_user("alice", "teller")
    system.assign_user("victor", "auditor")
    return system


class TestMSoDAwareCheckAccess:
    def test_plain_grant(self, bank):
        session = bank.create_session("alice", ["teller"])
        decision = bank.check_access_in_context(
            session.session_id, "handleCash", "till", CTX_2006, at=1.0
        )
        assert decision.granted

    def test_rbac_denial_reported(self, bank):
        session = bank.create_session("alice", ["teller"])
        decision = bank.check_access_in_context(
            session.session_id, "audit", "ledger", CTX_2006, at=1.0
        )
        assert decision.denied
        assert decision.reason.startswith("RBAC")
        # A pure RBAC denial leaves no retained history.
        assert bank.msod_engine.store.count() == 0

    def test_multi_session_conflict_denied(self, bank):
        """The whole point: two innocent-looking sessions, one conflict."""
        first = bank.create_session("alice", ["teller"])
        bank.check_access_in_context(
            first.session_id, "handleCash", "till", CTX_2006, at=1.0
        )
        bank.delete_session(first.session_id)

        # Later, alice is promoted — standard ANSI administration.
        bank.deassign_user("alice", "teller")
        bank.assign_user("alice", "auditor")
        second = bank.create_session("alice", ["auditor"])
        decision = bank.check_access_in_context(
            second.session_id, "audit", "ledger", CTX_LEEDS, at=100.0
        )
        assert decision.denied
        assert decision.violation.constraint_kind == "MMER"

    def test_new_period_resets(self, bank):
        first = bank.create_session("alice", ["teller"])
        bank.check_access_in_context(
            first.session_id, "handleCash", "till", CTX_2006, at=1.0
        )
        bank.delete_session(first.session_id)
        bank.deassign_user("alice", "teller")
        bank.assign_user("alice", "auditor")
        second = bank.create_session("alice", ["auditor"])
        decision = bank.check_access_in_context(
            second.session_id, "audit", "ledger", CTX_2007, at=100.0
        )
        assert decision.granted

    def test_last_step_flushes_history(self, bank):
        session = bank.create_session("alice", ["teller"])
        bank.check_access_in_context(
            session.session_id, "handleCash", "till", CTX_2006, at=1.0
        )
        auditor = bank.create_session("victor", ["auditor"])
        commit = bank.check_access_in_context(
            auditor.session_id, "CommitAudit", "audit-db", CTX_2006, at=2.0
        )
        assert commit.granted
        assert bank.msod_engine.store.count() == 0

    def test_unknown_session_rejected(self, bank):
        from repro.errors import UnknownEntityError

        with pytest.raises(UnknownEntityError):
            bank.check_access_in_context("sess-nope", "x", "y", CTX_2006)

    def test_ansi_administration_unchanged(self, bank):
        """The inherited ANSI surface still works as before."""
        assert bank.assigned_users("teller") == {"alice"}
        assert bank.user_permissions("victor") == {
            Permission("audit", "ledger"),
            Permission("CommitAudit", "audit-db"),
        }

"""Unit tests for the ISO 10181-3 framework layer (Figure 3)."""

import pytest

from repro.core import (
    ContextName,
    InMemoryRetainedADIStore,
    MSoDEngine,
    Privilege,
    Role,
)
from repro.framework import (
    AccessDeniedError,
    AccessRequestADI,
    ContextualInformation,
    InitiatorADI,
    PolicyEnforcementPoint,
    ReferenceRBACMSoDPDP,
    RoleTargetAccessPolicy,
    SimulatedClock,
    TargetADI,
)
from repro.xmlpolicy import bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
HANDLE_CASH = Privilege("handleCash", "till://1")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://1")
CTX = ContextName.parse("Branch=York, Period=2006")


@pytest.fixture
def pdp():
    access = RoleTargetAccessPolicy(
        {TELLER: [HANDLE_CASH], AUDITOR: [AUDIT_BOOKS]}
    )
    engine = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
    return ReferenceRBACMSoDPDP(access, engine)


@pytest.fixture
def pep(pdp):
    return PolicyEnforcementPoint(pdp, SimulatedClock())


class TestAdiElements:
    def test_dataclasses_hold_parameters(self):
        initiator = InitiatorADI("alice", (TELLER,))
        request = AccessRequestADI("handleCash", {"amount": "100"})
        target = TargetADI("till://1", {"branch": "York"})
        contextual = ContextualInformation({"tod": "am"}, 9.5)
        assert initiator.user_id == "alice"
        assert request.parameters["amount"] == "100"
        assert target.attributes["branch"] == "York"
        assert contextual.time_of_day == 9.5


class TestRoleTargetAccessPolicy:
    def test_permits(self):
        policy = RoleTargetAccessPolicy({TELLER: [HANDLE_CASH]})
        assert policy.permits([TELLER], HANDLE_CASH)
        assert not policy.permits([TELLER], AUDIT_BOOKS)
        assert not policy.permits([AUDITOR], HANDLE_CASH)

    def test_introspection(self):
        policy = RoleTargetAccessPolicy({TELLER: [HANDLE_CASH]})
        assert policy.privileges_of(TELLER) == {HANDLE_CASH}
        assert policy.roles() == {TELLER}


class TestReferencePDP:
    def test_rbac_check_precedes_msod(self, pdp):
        from repro.core import DecisionRequest

        request = DecisionRequest(
            user_id="alice",
            roles=(TELLER,),
            operation="auditBooks",
            target="ledger://1",
            context_instance=CTX,
            timestamp=1.0,
        )
        decision = pdp.decide(request)
        assert decision.denied
        assert decision.reason.startswith("RBAC")
        # A pure RBAC deny never touches the retained ADI.
        assert pdp.msod_engine.store.count() == 0


class TestPEP:
    def test_grant_flow(self, pep):
        decision = pep.request_decision(
            "alice", [TELLER], "handleCash", "till://1", CTX
        )
        assert decision.granted
        assert decision.request.timestamp > 0

    def test_enforce_raises_on_deny(self, pep):
        pep.request_decision("alice", [TELLER], "handleCash", "till://1", CTX)
        with pytest.raises(AccessDeniedError) as exc_info:
            pep.enforce("alice", [AUDITOR], "auditBooks", "ledger://1", CTX)
        assert exc_info.value.decision.denied

    def test_audit_sink_sees_every_decision(self, pdp):
        seen = []
        pep = PolicyEnforcementPoint(pdp, SimulatedClock(), audit_sink=seen.append)
        pep.request_decision("alice", [TELLER], "handleCash", "till://1", CTX)
        pep.request_decision("alice", [AUDITOR], "auditBooks", "ledger://1", CTX)
        assert [decision.effect for decision in seen] == ["grant", "deny"]

    def test_environment_passed_through(self, pep):
        decision = pep.request_decision(
            "alice",
            [TELLER],
            "handleCash",
            "till://1",
            CTX,
            environment={"terminal": "till-3"},
        )
        assert decision.request.environment["terminal"] == "till-3"


class TestSimulatedClock:
    def test_monotonic_ticks(self):
        clock = SimulatedClock(start=10.0, tick=0.5)
        assert clock() == 10.5
        assert clock() == 11.0
        clock.advance(100)
        assert clock() == 111.5
        assert clock.now == 111.5

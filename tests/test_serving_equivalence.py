"""Differential serving tests: remote must equal in-process, bit for bit.

Two engines built identically, one consulted in process and one through
the full network stack (wire encoding, sharded queues, micro-batching,
SQLite batch transactions), must produce identical decision streams and
identical retained-ADI stores.  And under many concurrent clients
hammering one user, the per-user shard serialization must keep the MSoD
exclusivity invariant — the race it prevents would admit both mutually
exclusive roles.
"""

import threading

from repro.client import RemotePDP
from repro.core import (
    MMER,
    ContextName,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    SQLiteRetainedADIStore,
)
from repro.server import AuthorizationService, ServerThread
from repro.workload import (
    AUDITOR,
    TELLER,
    decision_request_stream,
    hot_user_stream,
)


def bank_policy_set():
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                policy_id="bank",
            )
        ]
    )


def store_digest(store):
    """An order-independent, id-independent fingerprint of a store."""
    return tuple(
        sorted(
            (
                record.user_id,
                tuple(sorted((r.role_type, r.value) for r in record.roles)),
                record.operation,
                record.target,
                str(record.context_instance),
                record.granted_at,
                record.request_id,
            )
            for record in store.records()
        )
    )


def record_digest(records):
    """The same fingerprint, built from decisions' ``adi_adds``."""
    return tuple(
        sorted(
            (
                record.user_id,
                tuple(sorted((r.role_type, r.value) for r in record.roles)),
                record.operation,
                record.target,
                str(record.context_instance),
                record.granted_at,
                record.request_id,
            )
            for record in records
        )
    )


class TestDifferentialEquivalence:
    def _requests(self):
        return list(
            decision_request_stream(
                300, n_users=40, n_branches=3, n_periods=2,
                conflict_fraction=0.3, seed=17,
            )
        )

    def _remote_leg(self, requests, protocol_version):
        """Run the stream through a fresh server over one wire protocol."""
        store = SQLiteRetainedADIStore(":memory:")
        engine = MSoDEngine(bank_policy_set(), store)
        service = AuthorizationService(engine, n_shards=4, batch_max=8)
        with ServerThread(service) as server:
            with RemotePDP(
                server.host,
                server.port,
                timeout=10.0,
                protocol_version=protocol_version,
            ) as pdp:
                decisions = [pdp.decide(request) for request in requests]
                negotiated = pdp.negotiated_protocol
        digest = store_digest(store)
        store.close()
        return decisions, digest, negotiated

    def test_remote_decisions_equal_in_process_bit_for_bit(self):
        """In-process, v1 wire and v2 batched wire: one identical stream.

        The same request sequence must produce bit-identical decisions
        (full ``Decision`` equality including ``adi_adds``) and
        identical retained-ADI store fingerprints on all three paths —
        the differential guarantee that the binary batched protocol
        changed the wire, not the semantics.
        """
        requests = self._requests()

        local_engine = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
        local_decisions = [local_engine.check(request) for request in requests]
        local_digest = store_digest(local_engine.store)

        v1_decisions, v1_digest, v1_negotiated = self._remote_leg(
            requests, "v1"
        )
        v2_decisions, v2_digest, v2_negotiated = self._remote_leg(
            requests, "v2"
        )
        assert v1_negotiated == 1
        assert v2_negotiated == 2

        assert len(v1_decisions) == len(local_decisions)
        assert len(v2_decisions) == len(local_decisions)
        for local, v1, v2 in zip(local_decisions, v1_decisions, v2_decisions):
            assert v1 == local  # full Decision equality incl. adi_adds
            assert v2 == local

        assert v1_digest == local_digest
        assert v2_digest == local_digest

        grants = [d for d in local_decisions if d.granted]
        denies = [d for d in local_decisions if d.denied]
        assert grants and denies  # the workload exercised both paths


class TestConcurrentSameUserClients:
    N_CLIENTS = 8
    PER_CLIENT = 25

    def test_no_retained_adi_race_under_hot_user_hammering(self):
        store = SQLiteRetainedADIStore(":memory:")
        engine = MSoDEngine(bank_policy_set(), store)
        service = AuthorizationService(engine, n_shards=4, batch_max=16)
        total = self.N_CLIENTS * self.PER_CLIENT
        requests = list(hot_user_stream(total, conflict_fraction=0.5, seed=23))

        decisions_by_client = [[] for _ in range(self.N_CLIENTS)]
        errors = []

        with ServerThread(service) as server:
            with RemotePDP(
                server.host,
                server.port,
                pool_size=self.N_CLIENTS,
                timeout=20.0,
            ) as pdp:

                def client(index):
                    lo = index * self.PER_CLIENT
                    try:
                        for request in requests[lo:lo + self.PER_CLIENT]:
                            decisions_by_client[index].append(
                                pdp.decide(request)
                            )
                    except Exception as exc:  # surfaced after join
                        errors.append(exc)

                threads = [
                    threading.Thread(target=client, args=(index,))
                    for index in range(self.N_CLIENTS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)

        assert not errors, errors
        decisions = [d for client in decisions_by_client for d in client]
        assert len(decisions) == total

        # The MSoD exclusivity invariant: whichever duty was granted
        # first in the context, the other must never have been admitted.
        # A read-then-commit race between two interleaved same-user
        # requests is exactly what would put both roles in the store.
        retained_roles = {
            role for record in store.records() for role in record.roles
        }
        assert not {TELLER, AUDITOR} <= retained_roles

        grants = [d for d in decisions if d.granted]
        denies = [d for d in decisions if d.denied]
        assert grants and denies  # contention actually happened

        # Every granted record — and only those — is in the store.
        assert sum(d.records_added for d in grants) == store.count()
        granted_records = [
            record for decision in grants for record in decision.adi_adds
        ]
        assert record_digest(granted_records) == store_digest(store)
        store.close()

    def test_distinct_users_proceed_concurrently_and_independently(self):
        """Many users through many client threads: per-user outcomes match
        a sequential in-process replay of each user's own subsequence."""
        store = InMemoryRetainedADIStore()
        engine = MSoDEngine(bank_policy_set(), store)
        service = AuthorizationService(engine, n_shards=4)
        requests = list(
            decision_request_stream(
                160, n_users=8, n_branches=1, n_periods=1,
                conflict_fraction=0.4, seed=29,
            )
        )
        by_user = {}
        for request in requests:
            by_user.setdefault(request.user_id, []).append(request)

        results = {}
        errors = []
        with ServerThread(service) as server:
            with RemotePDP(
                server.host, server.port, pool_size=8, timeout=20.0
            ) as pdp:

                def client(user_id, user_requests):
                    try:
                        results[user_id] = [
                            pdp.decide(request) for request in user_requests
                        ]
                    except Exception as exc:
                        errors.append(exc)

                threads = [
                    threading.Thread(target=client, args=(user, reqs))
                    for user, reqs in by_user.items()
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)

        assert not errors, errors
        # Each user's decision sequence must equal a sequential replay
        # of just that user (users don't interact under this policy).
        for user, user_requests in by_user.items():
            reference = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
            expected_effects = [
                reference.check(request).effect for request in user_requests
            ]
            assert [d.effect for d in results[user]] == expected_effects

"""Unit tests for decision types and finer engine semantics."""

import pytest

from repro.core import (
    MMEP,
    MMER,
    ContextName,
    Decision,
    DecisionRequest,
    Effect,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Privilege,
    Role,
    next_request_id,
)
from repro.core.policy import Step

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
P1 = Privilege("op1", "t://1")
P2 = Privilege("op2", "t://2")
CTX = ContextName.parse("P=1")


def request(user="u", roles=(TELLER,), privilege=P1, context=CTX, at=1.0):
    return DecisionRequest(
        user_id=user,
        roles=tuple(roles),
        operation=privilege.operation,
        target=privilege.target,
        context_instance=context,
        timestamp=at,
    )


class TestDecisionRequest:
    def test_request_ids_are_unique(self):
        assert next_request_id() != next_request_id()
        assert request().request_id != request().request_id

    def test_privilege_property(self):
        assert request().privilege == P1

    def test_environment_defaults_empty(self):
        assert dict(request().environment) == {}


class TestDecision:
    def test_str_for_grant(self):
        decision = Decision(effect=Effect.GRANT, request=request())
        text = str(decision)
        assert text.startswith("GRANT u op1@t://1")
        assert "[P=1]" in text

    def test_granted_denied_flags(self):
        grant = Decision(effect=Effect.GRANT, request=request())
        deny = Decision(effect=Effect.DENY, request=request())
        assert grant.granted and not grant.denied
        assert deny.denied and not deny.granted


class TestEngineRecordSemantics:
    def test_mmer_records_one_per_matched_role(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmers=[MMER([TELLER, AUDITOR, Role("e", "X")], 3)],
                    policy_id="p",
                )
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        decision = engine.check(request(roles=(TELLER, AUDITOR)))
        assert decision.granted
        # Context-start base record + one record per matched role.
        role_records = [
            record
            for record in engine.store.records()
            if len(record.roles) == 1
        ]
        assert {record.roles[0] for record in role_records} == {TELLER, AUDITOR}

    def test_records_share_request_id(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmers=[MMER([TELLER, AUDITOR, Role("e", "X")], 3)],
                    policy_id="p",
                )
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        engine.check(request(roles=(TELLER, AUDITOR)))
        request_ids = {record.request_id for record in engine.store.records()}
        assert len(request_ids) == 1

    def test_mmep_exercise_counting_ignores_same_request_duplicates(self):
        """A request matching two MMEPs writes two records but counts as
        one exercise."""
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmeps=[MMEP([P1, P1, P1], 3), MMEP([P1, P2], 2)],
                    policy_id="p",
                )
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        # MMEP({P1,P1,P1},3) allows two exercises of P1 per user.
        assert engine.check(request(at=1.0)).granted
        assert engine.check(request(at=2.0)).granted
        assert engine.check(request(at=3.0)).denied

    def test_mmep_cross_privilege_cardinality(self):
        """MMEP({P1,P2},2): one of each is already too many."""
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmeps=[MMEP([P1, P2], 2)],
                    policy_id="p",
                )
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        assert engine.check(request(privilege=P1, at=1.0)).granted
        assert engine.check(request(privilege=P2, at=2.0)).denied
        # A different user is unaffected.
        assert engine.check(request(user="v", privilege=P2, at=3.0)).granted

    def test_mmep_three_of_three(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmeps=[
                        MMEP([P1, P2, Privilege("op3", "t://3")], 3)
                    ],
                    policy_id="p",
                )
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        assert engine.check(request(privilege=P1, at=1.0)).granted
        assert engine.check(request(privilege=P2, at=2.0)).granted
        assert engine.check(
            request(privilege=Privilege("op3", "t://3"), at=3.0)
        ).denied

    def test_last_step_also_checked_against_constraints(self):
        """A last step that itself violates an MMEP is denied, and the
        context is NOT terminated."""
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmeps=[MMEP([P1, P2], 2)],
                    last_step=Step(P2.operation, P2.target),
                    policy_id="p",
                )
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        assert engine.check(request(privilege=P1, at=1.0)).granted
        denied = engine.check(request(privilege=P2, at=2.0))
        assert denied.denied
        assert engine.store.count() > 0  # history survives
        # Another user performing the last step terminates the context.
        closed = engine.check(request(user="v", privilege=P2, at=3.0))
        assert closed.granted
        assert engine.store.count() == 0

    def test_violation_details_populated(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="bank",
                )
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        engine.check(request(roles=(TELLER,), at=1.0))
        denied = engine.check(request(roles=(AUDITOR,), at=2.0))
        violation = denied.violation
        assert violation.policy_id == "bank"
        assert violation.constraint_kind == "MMER"
        assert "Teller" in violation.constraint_repr
        assert str(violation.effective_context) == "P=1"

    def test_adi_mutation_exposed_on_grant(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    last_step=Step(P2.operation, P2.target),
                    policy_id="p",
                )
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        grant = engine.check(request(at=1.0))
        assert len(grant.adi_adds) == grant.records_added > 0
        closing = engine.check(request(user="v", privilege=P2, at=2.0))
        assert closing.adi_purged_contexts == (ContextName.parse("P=1"),)

"""Unit tests for the PERMIS/MSoD policy analyzer (lint)."""

from repro.core import Privilege, Role
from repro.permis import (
    PermisPolicyBuilder,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    analyze_policy,
)
from repro.xmlpolicy import bank_policy_set, combined_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")
GHOST = Role("employee", "Ghost")

HANDLE_CASH = Privilege("handleCash", "till://main")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://main")
COMMIT_AUDIT = Privilege("CommitAudit", "http://audit.location.com/audit")
PREPARE = Privilege("prepareCheck", "http://www.myTaxOffice.com/Check")
APPROVE = Privilege("approve/disapproveCheck", "http://www.myTaxOffice.com/Check")
COMBINE = Privilege("combineResults", "http://secret.location.com/results")
CONFIRM = Privilege("confirmCheck", "http://secret.location.com/audit")

SOA = "cn=soa,o=bank,c=gb"


def healthy_policy():
    return (
        PermisPolicyBuilder()
        .allow_assignment(SOA, [TELLER, AUDITOR, CLERK, MANAGER], "o=bank,c=gb")
        .grant(TELLER, [HANDLE_CASH])
        .grant(AUDITOR, [AUDIT_BOOKS, COMMIT_AUDIT])
        .grant(CLERK, [PREPARE, CONFIRM])
        .grant(MANAGER, [APPROVE, COMBINE])
        .with_msod(combined_policy_set())
        .build()
    )


def severities(findings):
    return [finding.severity for finding in findings]


class TestHealthyPolicy:
    def test_no_errors_on_the_paper_setup(self):
        findings = analyze_policy(healthy_policy())
        assert SEVERITY_ERROR not in severities(findings)

    def test_str_rendering(self):
        findings = analyze_policy(healthy_policy())
        for finding in findings:
            assert finding.severity in str(finding)


class TestMMERFindings:
    def test_unassignable_conflict_role_is_error(self):
        policy = (
            PermisPolicyBuilder()
            .allow_assignment(SOA, [TELLER], "o=bank,c=gb")
            .grant(TELLER, [HANDLE_CASH])
            .grant(AUDITOR, [AUDIT_BOOKS, COMMIT_AUDIT])
            .with_msod(bank_policy_set())
            .build()
        )
        findings = analyze_policy(policy)
        assert any(
            finding.severity == SEVERITY_ERROR and "can never fire" in
            finding.message
            for finding in findings
        )

    def test_partially_dead_mmer_is_warning(self):
        from repro.core import MMER, ContextName, MSoDPolicy, MSoDPolicySet

        msod = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmers=[MMER([TELLER, AUDITOR, GHOST], 2)],
                    policy_id="p",
                )
            ]
        )
        policy = (
            PermisPolicyBuilder()
            .allow_assignment(SOA, [TELLER, AUDITOR], "o=bank,c=gb")
            .grant(TELLER, [HANDLE_CASH])
            .with_msod(msod)
            .build()
        )
        findings = analyze_policy(policy)
        assert any(
            finding.severity == SEVERITY_WARNING
            and "no SOA may assign" in finding.message
            for finding in findings
        )


class TestMMEPAndLifecycleFindings:
    def test_dead_mmep_is_error(self):
        policy = (
            PermisPolicyBuilder()
            .allow_assignment(SOA, [CLERK, MANAGER], "o=bank,c=gb")
            .grant(CLERK, [HANDLE_CASH])  # tax privileges never granted
            .with_msod(
                __import__(
                    "repro.xmlpolicy", fromlist=["tax_refund_policy_set"]
                ).tax_refund_policy_set()
            )
            .build()
        )
        findings = analyze_policy(policy)
        assert any(
            finding.severity == SEVERITY_ERROR and "dead" in finding.message
            for finding in findings
        )

    def test_missing_last_step_is_growth_warning(self):
        from repro.core import MMER, ContextName, MSoDPolicy, MSoDPolicySet

        msod = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="open-ended",
                )
            ]
        )
        policy = (
            PermisPolicyBuilder()
            .allow_assignment(SOA, [TELLER, AUDITOR], "o=bank,c=gb")
            .grant(TELLER, [HANDLE_CASH])
            .with_msod(msod)
            .build()
        )
        findings = analyze_policy(policy)
        assert any(
            "growth hazard" in finding.message for finding in findings
        )

    def test_ungrantable_last_step_is_error(self):
        policy = (
            PermisPolicyBuilder()
            .allow_assignment(SOA, [TELLER, AUDITOR], "o=bank,c=gb")
            .grant(TELLER, [HANDLE_CASH])
            .grant(AUDITOR, [AUDIT_BOOKS])  # CommitAudit never granted
            .with_msod(bank_policy_set())
            .build()
        )
        findings = analyze_policy(policy)
        assert any(
            finding.severity == SEVERITY_ERROR
            and "can never terminate" in finding.message
            for finding in findings
        )

    def test_ungrantable_first_step_is_error(self):
        policy = (
            PermisPolicyBuilder()
            .allow_assignment(SOA, [CLERK, MANAGER], "o=bank,c=gb")
            .grant(CLERK, [CONFIRM])  # prepareCheck never granted
            .grant(MANAGER, [APPROVE, COMBINE])
            .with_msod(
                __import__(
                    "repro.xmlpolicy", fromlist=["tax_refund_policy_set"]
                ).tax_refund_policy_set()
            )
            .build()
        )
        findings = analyze_policy(policy)
        assert any(
            "can never start" in finding.message for finding in findings
        )


class TestRBACAndScopeFindings:
    def test_unreachable_access_rule_warning(self):
        policy = (
            PermisPolicyBuilder()
            .allow_assignment(SOA, [TELLER], "o=bank,c=gb")
            .grant(GHOST, [AUDIT_BOOKS])
            .build()
        )
        findings = analyze_policy(policy)
        assert any(
            "unreachable" in finding.message for finding in findings
        )

    def test_hierarchy_reachable_rule_not_flagged(self):
        policy = (
            PermisPolicyBuilder()
            .senior_to(MANAGER, TELLER)
            .allow_assignment(SOA, [MANAGER], "o=bank,c=gb")
            .grant(TELLER, [HANDLE_CASH])
            .build()
        )
        findings = analyze_policy(policy)
        assert not any(
            "unreachable" in finding.message for finding in findings
        )

    def test_three_level_hierarchy_reachable_rule_not_flagged(self):
        # Regression: reachability must close over the *transitive*
        # hierarchy — a role assignable only through a grandparent
        # senior was falsely flagged by the one-hop check.
        director = Role("employee", "Director")
        policy = (
            PermisPolicyBuilder()
            .senior_to(director, MANAGER)
            .senior_to(MANAGER, TELLER)
            .allow_assignment(SOA, [director], "o=bank,c=gb")
            .grant(TELLER, [HANDLE_CASH])
            .build()
        )
        findings = analyze_policy(policy)
        assert not any(
            "unreachable" in finding.message for finding in findings
        )

    def test_universal_scope_is_info(self):
        from repro.core import MMER, ContextName, MSoDPolicy, MSoDPolicySet

        msod = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.root(),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="universal",
                )
            ]
        )
        policy = (
            PermisPolicyBuilder()
            .allow_assignment(SOA, [TELLER, AUDITOR], "o=bank,c=gb")
            .with_msod(msod)
            .build()
        )
        findings = analyze_policy(policy)
        assert any(
            finding.severity == SEVERITY_INFO
            and "universal context" in finding.message
            for finding in findings
        )

    def test_overlapping_scopes_reported(self):
        from repro.core import MMER, ContextName, MSoDPolicy, MSoDPolicySet

        msod = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Branch=*, Period=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="wide",
                ),
                MSoDPolicy(
                    ContextName.parse("Branch=York, Period=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="york",
                ),
            ]
        )
        policy = (
            PermisPolicyBuilder()
            .allow_assignment(SOA, [TELLER, AUDITOR], "o=bank,c=gb")
            .with_msod(msod)
            .build()
        )
        findings = analyze_policy(policy)
        assert any("overlaps" in finding.message for finding in findings)

"""Tests for the dry-run decision explainer."""

from hypothesis import given, settings

from repro.core import (
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MODE_LITERAL,
    MSoDEngine,
    Privilege,
    Role,
    explain,
    store_digest,
)
from repro.xmlpolicy import bank_policy_set, combined_policy_set, tax_refund_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")

HANDLE_CASH = Privilege("handleCash", "till://1")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://1")
PREPARE = Privilege("prepareCheck", "http://www.myTaxOffice.com/Check")
APPROVE = Privilege("approve/disapproveCheck", "http://www.myTaxOffice.com/Check")
CONFIRM = Privilege("confirmCheck", "http://secret.location.com/audit")

CTX = ContextName.parse("Branch=York, Period=2006")
TAX_CTX = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=7")


def request(user, roles, privilege, context=CTX, at=1.0):
    return DecisionRequest(
        user_id=user,
        roles=tuple(roles),
        operation=privilege.operation,
        target=privilege.target,
        context_instance=context,
        timestamp=at,
    )


class TestExplainBasics:
    def test_no_matching_policy(self):
        engine = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
        explanation = explain(
            engine, request("u", [TELLER], HANDLE_CASH, ContextName.parse("X=1"))
        )
        assert explanation.granted
        assert "matches no MSoD policy" in explanation.render()

    def test_explains_grant_with_context_start(self):
        engine = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
        explanation = explain(engine, request("u", [TELLER], HANDLE_CASH))
        text = explanation.render()
        assert explanation.granted
        assert "context starts with this request" in text
        assert "nr=1 matched" in text
        assert "-> ok" in text

    def test_explains_mmer_violation(self):
        engine = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
        engine.check(request("u", [TELLER], HANDLE_CASH, at=1.0))
        explanation = explain(engine, request("u", [AUDITOR], AUDIT_BOOKS, at=2.0))
        assert not explanation.granted
        assert "VIOLATION" in explanation.render()

    def test_explains_mmep_counting(self):
        engine = MSoDEngine(tax_refund_policy_set(), InMemoryRetainedADIStore())
        engine.check(request("c", [CLERK], PREPARE, TAX_CTX, at=1.0))
        engine.check(request("m", [MANAGER], APPROVE, TAX_CTX, at=2.0))
        explanation = explain(
            engine, request("m", [MANAGER], APPROVE, TAX_CTX, at=3.0)
        )
        assert not explanation.granted
        assert "past exercise(s)" in explanation.render()

    def test_explains_first_step_gate(self):
        engine = MSoDEngine(tax_refund_policy_set(), InMemoryRetainedADIStore())
        explanation = explain(
            engine, request("m", [MANAGER], APPROVE, TAX_CTX)
        )
        assert explanation.granted
        assert "not the first step" in explanation.render()

    def test_explains_last_step(self):
        engine = MSoDEngine(tax_refund_policy_set(), InMemoryRetainedADIStore())
        engine.check(request("c", [CLERK], PREPARE, TAX_CTX, at=1.0))
        explanation = explain(
            engine, request("c2", [CLERK], CONFIRM, TAX_CTX, at=2.0)
        )
        assert explanation.granted
        assert "terminates the context instance" in explanation.render()

    def test_literal_mode_noted(self):
        engine = MSoDEngine(
            bank_policy_set(), InMemoryRetainedADIStore(), mode=MODE_LITERAL
        )
        explanation = explain(
            engine, request("u", [TELLER, AUDITOR], AUDIT_BOOKS)
        )
        assert explanation.granted  # literal step-4 hole, narrated
        assert "literal mode" in explanation.render()


class TestExplainContract:
    def test_never_mutates_store(self):
        engine = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
        engine.check(request("u", [TELLER], HANDLE_CASH, at=1.0))
        before = store_digest(engine.store)
        for _ in range(3):
            explain(engine, request("u", [AUDITOR], AUDIT_BOOKS, at=2.0))
            explain(engine, request("v", [TELLER], HANDLE_CASH, at=3.0))
        assert store_digest(engine.store) == before

    def test_render_header(self):
        engine = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
        explanation = explain(engine, request("u", [TELLER], HANDLE_CASH))
        assert explanation.render().startswith("GRANT u handleCash@till://1")


# ---------------------------------------------------------------------
# Property: the dry-run verdict equals the live verdict, on any stream.
# ---------------------------------------------------------------------
from tests.test_property_engine import request_streams  # noqa: E402


@given(request_streams())
@settings(max_examples=60, deadline=None)
def test_property_explain_agrees_with_check(stream):
    engine = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
    for item in stream:
        predicted = explain(engine, item)
        actual = engine.check(item)
        assert predicted.effect == actual.effect, item

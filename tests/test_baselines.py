"""Unit tests for the comparator SoD mechanisms (Section 6)."""

import pytest

from repro.baselines import (
    AnsiDsdChecker,
    AnsiSsdChecker,
    AntiRoleChecker,
    BertinoWorkflowChecker,
    MSoDChecker,
    SandhuTCEChecker,
    TaskConstraint,
    TCEStep,
    TransactionControlExpression,
)
from repro.core import ContextName
from repro.rbac import DsdConstraint, SsdConstraint
from repro.workload import (
    AUDIT_BOOKS,
    AUDITOR,
    APPROVE,
    AUTHORITY_A,
    AUTHORITY_B,
    CLERK,
    COMBINE,
    CONFIRM,
    HANDLE_CASH,
    MANAGER,
    PREPARE,
    STEP_ACCESS,
    STEP_ASSIGN,
    TELLER,
    Scenario,
    ScenarioGenerator,
    Step,
)
from repro.xmlpolicy import combined_policy_set

SSD = [SsdConstraint("ta", ["Teller", "Auditor"], 2)]
DSD = [DsdConstraint("ta", ["Teller", "Auditor"], 2)]

CTX = ContextName.parse("Branch=York, Period=2006")
TAX_CTX = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=1")


def assign(user, role, authority=AUTHORITY_A, at=1.0):
    return Step(STEP_ASSIGN, user, user, "-", authority, (role,), timestamp=at)


def access(user, roles, privilege, context=CTX, session="s1", presented=None, at=1.0):
    return Step(
        STEP_ACCESS,
        user,
        presented or user,
        session,
        AUTHORITY_A,
        tuple(roles),
        privilege.operation,
        privilege.target,
        context,
        at,
    )


class TestAnsiSsdChecker:
    def test_blocks_conflict_within_one_authority(self):
        checker = AnsiSsdChecker(SSD)
        assert checker.process_step(assign("u", TELLER)) == (False, "")
        blocked, reason = checker.process_step(assign("u", AUDITOR))
        assert blocked
        assert "SSD" in reason

    def test_blind_across_authorities(self):
        checker = AnsiSsdChecker(SSD)
        checker.process_step(assign("u", TELLER, AUTHORITY_A))
        blocked, _ = checker.process_step(assign("u", AUDITOR, AUTHORITY_B))
        assert not blocked

    def test_global_view_catches_cross_authority(self):
        checker = AnsiSsdChecker(SSD, global_view=True)
        checker.process_step(assign("u", TELLER, AUTHORITY_A))
        blocked, _ = checker.process_step(assign("u", AUDITOR, AUTHORITY_B))
        assert blocked

    def test_ignores_access_steps(self):
        checker = AnsiSsdChecker(SSD)
        assert checker.process_step(
            access("u", [TELLER, AUDITOR], HANDLE_CASH)
        ) == (False, "")

    def test_reset(self):
        checker = AnsiSsdChecker(SSD)
        checker.process_step(assign("u", TELLER))
        checker.reset()
        blocked, _ = checker.process_step(assign("u", AUDITOR))
        assert not blocked


class TestAnsiDsdChecker:
    def test_blocks_simultaneous_activation(self):
        checker = AnsiDsdChecker(DSD)
        blocked, reason = checker.process_step(
            access("u", [TELLER, AUDITOR], HANDLE_CASH, session="s1")
        )
        assert blocked
        assert "DSD" in reason

    def test_blocks_incremental_activation_in_one_session(self):
        checker = AnsiDsdChecker(DSD)
        checker.process_step(access("u", [TELLER], HANDLE_CASH, session="s1"))
        blocked, _ = checker.process_step(
            access("u", [AUDITOR], AUDIT_BOOKS, session="s1")
        )
        assert blocked

    def test_blind_across_sessions(self):
        checker = AnsiDsdChecker(DSD)
        checker.process_step(access("u", [TELLER], HANDLE_CASH, session="s1"))
        blocked, _ = checker.process_step(
            access("u", [AUDITOR], AUDIT_BOOKS, session="s2")
        )
        assert not blocked


class TestAntiRoleChecker:
    CONFLICT = [frozenset({TELLER, AUDITOR})]

    def test_blocks_cross_session_conflict(self):
        checker = AntiRoleChecker(self.CONFLICT)
        checker.process_step(access("u", [TELLER], HANDLE_CASH, session="s1"))
        blocked, reason = checker.process_step(
            access("u", [AUDITOR], AUDIT_BOOKS, session="s2")
        )
        assert blocked
        assert "blacklisted" in reason

    def test_context_blind_false_positive(self):
        """A benign cross-period role change is wrongly blocked."""
        checker = AntiRoleChecker(self.CONFLICT)
        period_a = ContextName.parse("Branch=York, Period=A")
        period_b = ContextName.parse("Branch=York, Period=B")
        checker.process_step(access("u", [TELLER], HANDLE_CASH, context=period_a))
        blocked, _ = checker.process_step(
            access("u", [AUDITOR], AUDIT_BOOKS, context=period_b)
        )
        assert blocked  # false positive by design of the mechanism

    def test_purge_forgets_history(self):
        checker = AntiRoleChecker(self.CONFLICT, purge_every=2)
        checker.process_step(access("u", [TELLER], HANDLE_CASH, at=1.0))
        checker.process_step(access("x", [TELLER], HANDLE_CASH, at=2.0))  # purge
        blocked, _ = checker.process_step(
            access("u", [AUDITOR], AUDIT_BOOKS, at=3.0)
        )
        assert not blocked  # conflict missed after the purge

    def test_keyed_on_presented_id(self):
        checker = AntiRoleChecker(self.CONFLICT)
        checker.process_step(
            access("u", [TELLER], HANDLE_CASH, presented="handle-1")
        )
        blocked, _ = checker.process_step(
            access("u", [AUDITOR], AUDIT_BOOKS, presented="handle-2")
        )
        assert not blocked


class TestBertinoChecker:
    def checker(self, known=("clerk", "mgr")):
        return BertinoWorkflowChecker(
            "taxRefundProcess",
            [
                TaskConstraint("prepareCheck", must_differ_from=("confirmCheck",)),
                TaskConstraint(
                    "approve/disapproveCheck",
                    must_differ_from=("combineResults",),
                    max_per_user=1,
                ),
                TaskConstraint(
                    "combineResults",
                    must_differ_from=("approve/disapproveCheck",),
                ),
                TaskConstraint("confirmCheck", must_differ_from=("prepareCheck",)),
            ],
            known,
        )

    def test_blocks_repeat_approval(self):
        checker = self.checker()
        checker.process_step(access("mgr", [MANAGER], APPROVE, context=TAX_CTX))
        blocked, reason = checker.process_step(
            access("mgr", [MANAGER], APPROVE, context=TAX_CTX)
        )
        assert blocked
        assert "already executed" in reason

    def test_blocks_prepare_then_confirm(self):
        checker = self.checker()
        checker.process_step(access("clerk", [CLERK], PREPARE, context=TAX_CTX))
        blocked, _ = checker.process_step(
            access("clerk", [CLERK], CONFIRM, context=TAX_CTX)
        )
        assert blocked

    def test_unknown_user_bypasses(self):
        """Roles from an unknown external authority are invisible to the
        central pre-computation."""
        checker = self.checker(known=())
        checker.process_step(access("mgr", [MANAGER], APPROVE, context=TAX_CTX))
        blocked, _ = checker.process_step(
            access("mgr", [MANAGER], APPROVE, context=TAX_CTX)
        )
        assert not blocked

    def test_no_constraints_outside_declared_workflow(self):
        checker = self.checker()
        blocked, _ = checker.process_step(access("mgr", [MANAGER], APPROVE))
        assert not blocked

    def test_instances_isolated(self):
        checker = self.checker()
        other = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=2")
        checker.process_step(access("mgr", [MANAGER], APPROVE, context=TAX_CTX))
        blocked, _ = checker.process_step(
            access("mgr", [MANAGER], APPROVE, context=other)
        )
        assert not blocked


class TestSandhuTCE:
    def checker(self):
        return SandhuTCEChecker(
            [
                TransactionControlExpression(
                    PREPARE.target,
                    [
                        TCEStep("prepareCheck"),
                        TCEStep("approve/disapproveCheck"),
                        TCEStep("approve/disapproveCheck"),
                    ],
                )
            ]
        )

    def test_distinct_users_pass(self):
        checker = self.checker()
        assert not checker.process_step(
            access("c", [CLERK], PREPARE, context=TAX_CTX)
        )[0]
        assert not checker.process_step(
            access("m1", [MANAGER], APPROVE, context=TAX_CTX)
        )[0]
        assert not checker.process_step(
            access("m2", [MANAGER], APPROVE, context=TAX_CTX)
        )[0]

    def test_repeat_user_blocked(self):
        checker = self.checker()
        checker.process_step(access("c", [CLERK], PREPARE, context=TAX_CTX))
        checker.process_step(access("m1", [MANAGER], APPROVE, context=TAX_CTX))
        blocked, _ = checker.process_step(
            access("m1", [MANAGER], APPROVE, context=TAX_CTX)
        )
        assert blocked

    def test_exhausted_steps_blocked(self):
        checker = self.checker()
        checker.process_step(access("c", [CLERK], PREPARE, context=TAX_CTX))
        checker.process_step(access("m1", [MANAGER], APPROVE, context=TAX_CTX))
        checker.process_step(access("m2", [MANAGER], APPROVE, context=TAX_CTX))
        blocked, reason = checker.process_step(
            access("m3", [MANAGER], APPROVE, context=TAX_CTX)
        )
        assert blocked
        assert "already executed" in reason

    def test_same_user_marker(self):
        checker = SandhuTCEChecker(
            [
                TransactionControlExpression(
                    "voucher",
                    [TCEStep("draft"), TCEStep("submit", same_user=True)],
                )
            ]
        )
        draft = Step(
            STEP_ACCESS, "u", "u", "s", AUTHORITY_A, (CLERK,),
            "draft", "voucher", TAX_CTX, 1.0,
        )
        submit_other = Step(
            STEP_ACCESS, "v", "v", "s", AUTHORITY_A, (CLERK,),
            "submit", "voucher", TAX_CTX, 2.0,
        )
        checker.process_step(draft)
        blocked, _ = checker.process_step(submit_other)
        assert blocked

    def test_unconstrained_target_ignored(self):
        checker = self.checker()
        blocked, _ = checker.process_step(access("u", [TELLER], HANDLE_CASH))
        assert not blocked

    def test_role_conflict_across_targets_invisible(self):
        """The paper's point: TCE cannot see Example 1's conflict."""
        checker = self.checker()
        checker.process_step(access("u", [TELLER], HANDLE_CASH))
        blocked, _ = checker.process_step(access("u", [AUDITOR], AUDIT_BOOKS))
        assert not blocked


class TestMSoDChecker:
    def test_detects_cross_session_conflict(self):
        checker = MSoDChecker(combined_policy_set())
        checker.process_step(access("u", [TELLER], HANDLE_CASH, session="s1"))
        blocked, reason = checker.process_step(
            access("u", [AUDITOR], AUDIT_BOOKS, session="s2")
        )
        assert blocked
        assert "mutually exclusive roles" in reason

    def test_run_scenario_helper(self):
        checker = MSoDChecker(combined_policy_set())
        scenario = Scenario(
            "s1",
            "cross_session",
            (
                access("u", [TELLER], HANDLE_CASH, session="s1", at=1.0),
                access("u", [AUDITOR], AUDIT_BOOKS, session="s2", at=2.0),
            ),
        )
        outcome = checker.run_scenario(scenario)
        assert outcome.blocked
        assert outcome.blocked_step == 1
        assert outcome.correct

    def test_reset_clears_history(self):
        checker = MSoDChecker(combined_policy_set())
        checker.process_step(access("u", [TELLER], HANDLE_CASH))
        checker.reset()
        blocked, _ = checker.process_step(access("u", [AUDITOR], AUDIT_BOOKS))
        assert not blocked

    def test_linker_rejoins_aliases(self):
        gen = ScenarioGenerator(seed=1)
        scenario = gen.federated(linked=True)
        plain = MSoDChecker(combined_policy_set())
        linked = MSoDChecker(
            combined_policy_set(), linker=gen.identity_linker, name="linked"
        )
        assert not plain.run_scenario(scenario).blocked
        assert linked.run_scenario(scenario).blocked

"""Tests for the unified store-spec grammar and builder.

``repro.storespec`` is the single parser every entry point routes
through (``open_pdp`` / ``open_server`` / ``open_cluster`` / the CLI /
the benches).  These tests pin the grammar, the typed
``StoreSpecError`` failures, the builder's ownership contract, and the
end-to-end surfaces the spec feeds: a tiered PDP through ``open_pdp``
and the store gauges a tiered server exports over the metrics verb.
"""

import pytest

from repro.api import (
    ParsedStoreSpec,
    StoreSpecError,
    build_store,
    open_pdp,
    open_server,
    open_store,
    parse_store_spec,
)
from repro.core import (
    MMER,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
    SQLiteRetainedADIStore,
    TieredADIStore,
)
from repro.errors import PolicyError
from repro.obs import parse_exposition

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def bank_policy_set():
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                policy_id="bank",
            )
        ]
    )


def make_request(user, index=0):
    return DecisionRequest(
        user_id=user,
        roles=(TELLER,),
        operation="handleCash",
        target="till://1",
        context_instance=ContextName.parse("Branch=York, Period=P1"),
        timestamp=float(index),
        request_id=f"req-{user}-{index}",
    )


class TestGrammar:
    def test_memory(self):
        parsed = parse_store_spec("memory")
        assert parsed.kind == "memory"
        assert not parsed.is_remote

    def test_sqlite_with_path(self):
        parsed = parse_store_spec("sqlite:/var/lib/adi.db")
        assert (parsed.kind, parsed.path) == ("sqlite", "/var/lib/adi.db")

    def test_bare_sqlite_defers_path(self):
        parsed = parse_store_spec("sqlite")
        assert (parsed.kind, parsed.path) == ("sqlite", None)

    def test_sqlite_empty_path_rejected(self):
        with pytest.raises(StoreSpecError, match="needs a path"):
            parse_store_spec("sqlite:")

    def test_remote(self):
        parsed = parse_store_spec("remote:pdp.internal:7001")
        assert parsed.is_remote
        assert (parsed.host, parsed.port) == ("pdp.internal", 7001)

    def test_remote_bad_port(self):
        with pytest.raises(StoreSpecError, match="non-numeric port"):
            parse_store_spec("remote:host:http")

    def test_remote_missing_parts(self):
        with pytest.raises(StoreSpecError):
            parse_store_spec("remote:7001")

    def test_tiered_defaults(self):
        parsed = parse_store_spec("tiered:memory")
        assert parsed.kind == "tiered"
        assert parsed.warm.kind == "memory"
        assert parsed.hot_users > 0 and parsed.hot_shards > 0

    def test_tiered_sqlite_with_options(self):
        parsed = parse_store_spec(
            "tiered:sqlite:/var/lib/adi.db?hot_users=50000&shards=8"
        )
        assert parsed.kind == "tiered"
        assert (parsed.warm.kind, parsed.warm.path) == (
            "sqlite",
            "/var/lib/adi.db",
        )
        assert (parsed.hot_users, parsed.hot_shards) == (50000, 8)

    def test_tiered_bare_sqlite_warm(self):
        parsed = parse_store_spec("tiered:sqlite?hot_users=4")
        assert parsed.warm.path is None

    @pytest.mark.parametrize(
        "spec",
        [
            "tiered:",
            "tiered:tiered:memory",
            "tiered:remote:h:1?hot_users=4",
            "tiered:memory?hot_users=0",
            "tiered:memory?hot_users=many",
            "tiered:memory?cache=4",
            "tiered:memory?hot_users",
        ],
    )
    def test_tiered_malformed(self, spec):
        with pytest.raises(StoreSpecError):
            parse_store_spec(spec)

    def test_unknown_spec(self):
        with pytest.raises(StoreSpecError, match="unknown store spec"):
            parse_store_spec("redis:host")

    def test_non_string_rejected(self):
        with pytest.raises(StoreSpecError, match="got int"):
            parse_store_spec(7001)

    def test_instance_passthrough(self):
        store = InMemoryRetainedADIStore()
        parsed = parse_store_spec(store)
        assert parsed.kind == "instance"
        assert parsed.instance is store

    def test_error_is_policy_error(self):
        """Pre-existing ``except PolicyError`` handlers keep working."""
        assert issubclass(StoreSpecError, PolicyError)


class TestBuilder:
    def test_memory_owned(self):
        store, owns = build_store(parse_store_spec("memory"))
        assert isinstance(store, InMemoryRetainedADIStore)
        assert owns

    def test_instance_not_owned(self):
        original = InMemoryRetainedADIStore()
        store, owns = build_store(parse_store_spec(original))
        assert store is original
        assert not owns

    def test_sqlite_path(self, tmp_path):
        store = open_store(f"sqlite:{tmp_path / 'adi.db'}")
        try:
            assert isinstance(store, SQLiteRetainedADIStore)
        finally:
            store.close()

    def test_bare_sqlite_needs_default(self, tmp_path):
        with pytest.raises(StoreSpecError, match="host-assigned path"):
            build_store(parse_store_spec("sqlite"))
        store, owns = build_store(
            parse_store_spec("sqlite"),
            default_sqlite_path=str(tmp_path / "node.db"),
        )
        try:
            assert owns and isinstance(store, SQLiteRetainedADIStore)
        finally:
            store.close()

    def test_tiered_over_sqlite(self, tmp_path):
        store = open_store(
            f"tiered:sqlite:{tmp_path / 'warm.db'}?hot_users=4&shards=2"
        )
        try:
            assert isinstance(store, TieredADIStore)
            stats = store.stats()
            assert stats["hot_capacity"] == 4
            assert stats["warm"]["backend"] == "sqlite"
        finally:
            store.close()

    def test_remote_is_not_buildable(self):
        with pytest.raises(StoreSpecError, match="open_pdp"):
            build_store(parse_store_spec("remote:host:7001"))

    def test_parsed_spec_is_frozen(self):
        parsed = parse_store_spec("memory")
        assert isinstance(parsed, ParsedStoreSpec)
        with pytest.raises(AttributeError):
            parsed.kind = "sqlite"


class TestEntryPoints:
    def test_open_pdp_tiered(self):
        with open_pdp(
            bank_policy_set(), store="tiered:memory?hot_users=4"
        ) as pdp:
            decision = pdp.decide(make_request("alice"))
            assert decision.granted

    def test_open_pdp_bad_spec_is_typed(self):
        with pytest.raises(StoreSpecError):
            open_pdp(bank_policy_set(), store="riak:somewhere")

    def test_server_exports_store_stats_and_gauges(self):
        with open_server(
            bank_policy_set(), store="tiered:memory?hot_users=4"
        ) as server:
            with server.client() as pdp:
                for index in range(6):
                    pdp.decide(make_request(f"user-{index}", index))
                body = pdp.metrics()
                assert body["store"]["backend"] == "tiered"
                assert body["store"]["resident_users"] >= 1
                names = {
                    name for name, _, _ in parse_exposition(pdp.metrics_text())
                }
            assert "repro_store_resident_users" in names
            assert "repro_store_evictions_total" in names
            assert "repro_store_hydrations_total" in names

    def test_server_store_gauges_exist_for_memory_backend(self):
        """The gauges are uniform across backends, not tiered-only."""
        with open_server(bank_policy_set(), store="memory") as server:
            with server.client() as pdp:
                pdp.decide(make_request("alice"))
                body = pdp.metrics()
                assert body["store"]["backend"] == "memory"
                names = {
                    name for name, _, _ in parse_exposition(pdp.metrics_text())
                }
            assert "repro_store_resident_users" in names

"""Tests for repro.obs: traces, the slow-decision log and metrics.

The load-bearing property is the differential one: enabling tracing
must never change a decision — same effect, same reason, same retained
ADI — across the in-memory, SQLite and remote backends.
"""

import dataclasses

import pytest

from repro.core import (
    MMER,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
    SQLiteRetainedADIStore,
)
from repro.obs import (
    NOOP_TRACER,
    DecisionTrace,
    DecisionTracer,
    MetricsRegistry,
    SlowDecisionLog,
    TraceSpan,
    TraceViolation,
    parse_exposition,
)
from repro.perf import PerfRecorder

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def bank_policy_set():
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                policy_id="bank",
            )
        ]
    )


def make_request(user, role, index=0, period="P1"):
    operation, target = (
        ("handleCash", "till://1") if role is TELLER else ("auditBooks", "l://1")
    )
    return DecisionRequest(
        user_id=user,
        roles=(role,),
        operation=operation,
        target=target,
        context_instance=ContextName.parse(f"Branch=York, Period={period}"),
        timestamp=float(index),
        request_id=f"req-{user}-{index}",
    )


class TestTracedEngine:
    def test_granted_decision_carries_spans(self):
        engine = MSoDEngine(
            bank_policy_set(),
            InMemoryRetainedADIStore(),
            tracer=DecisionTracer(),
        )
        decision = engine.check(make_request("alice", TELLER))
        assert decision.granted
        trace = decision.trace
        assert trace is not None
        assert trace.effect == decision.effect
        stages = trace.stage_durations()
        assert "engine.match" in stages
        assert "engine.constraints" in stages
        assert "store.commit" in stages
        assert all(duration >= 0.0 for duration in stages.values())
        # Offsets order the spans as a waterfall within the total.
        for span in trace.spans:
            assert 0.0 <= span.offset_s <= trace.total_s + 1e-6

    def test_denied_trace_names_violating_policy(self):
        engine = MSoDEngine(
            bank_policy_set(),
            InMemoryRetainedADIStore(),
            tracer=DecisionTracer(),
        )
        assert engine.check(make_request("alice", TELLER, 0)).granted
        denied = engine.check(make_request("alice", AUDITOR, 1))
        assert not denied.granted
        trace = denied.trace
        assert trace is not None
        assert trace.violation is not None
        assert trace.violation.policy_id == "bank"
        assert trace.violation.constraint_kind == "MMER"
        assert "bank" in trace.matched_policy_ids
        assert "store.commit" not in trace.stage_durations()

    def test_trace_carries_the_policy_epoch(self):
        engine = MSoDEngine(
            bank_policy_set(),
            InMemoryRetainedADIStore(),
            tracer=DecisionTracer(),
        )
        first = engine.check(make_request("alice", TELLER, 0))
        assert first.trace.policy_epoch == 1
        engine.swap_policy(bank_policy_set(), force=True)
        second = engine.check(make_request("bob", TELLER, 1))
        assert second.trace.policy_epoch == 2
        # And it survives serialisation.
        round_tripped = DecisionTrace.from_dict(second.trace.to_dict())
        assert round_tripped.policy_epoch == 2

    def test_untraced_engine_attaches_nothing(self):
        engine = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
        assert engine.tracer is NOOP_TRACER
        decision = engine.check(make_request("alice", TELLER))
        assert decision.trace is None

    def test_render_mentions_stages_and_policy(self):
        engine = MSoDEngine(
            bank_policy_set(),
            InMemoryRetainedADIStore(),
            tracer=DecisionTracer(),
        )
        engine.check(make_request("alice", TELLER, 0))
        denied = engine.check(make_request("alice", AUDITOR, 1))
        text = denied.trace.render()
        assert "engine.match" in text
        assert "bank" in text
        assert "DENY" in text


class TestDifferentialTracing:
    """Tracing must be a pure observer: decisions stay bit-identical."""

    @pytest.mark.parametrize("store_factory", [
        InMemoryRetainedADIStore,
        lambda: SQLiteRetainedADIStore(":memory:"),
    ])
    def test_decisions_identical_with_and_without_tracing(self, store_factory):
        plain = MSoDEngine(bank_policy_set(), store_factory())
        traced = MSoDEngine(
            bank_policy_set(), store_factory(), tracer=DecisionTracer()
        )
        script = [
            ("alice", TELLER),
            ("alice", AUDITOR),  # denied by the MMER
            ("bob", AUDITOR),
            ("bob", TELLER),     # denied
            ("carol", TELLER),
            ("alice", TELLER),   # repeat role: granted again
        ]
        for index, (user, role) in enumerate(script):
            request = make_request(user, role, index)
            expected = plain.check(request)
            got = traced.check(request)
            # Decision equality excludes the trace field by design.
            assert got == expected
            assert got.trace is not None and expected.trace is None
            assert dataclasses.replace(got, trace=None) == expected

    def test_trace_effect_mirrors_decision(self):
        engine = MSoDEngine(
            bank_policy_set(),
            InMemoryRetainedADIStore(),
            tracer=DecisionTracer(),
        )
        for index, (user, role) in enumerate(
            [("alice", TELLER), ("alice", AUDITOR)]
        ):
            request = make_request(user, role, index)
            decision = engine.check(request)
            assert decision.trace.effect == decision.effect
            assert decision.trace.request_id == request.request_id
            assert decision.trace.records_added == decision.records_added


class TestTraceSerialisation:
    def _trace(self):
        return DecisionTrace(
            request_id="r-1",
            user_id="alice",
            effect="deny",
            total_s=0.002,
            requested_at=7.0,
            spans=(
                TraceSpan("engine.match", 0.0, 0.001),
                TraceSpan("engine.constraints", 0.001, 0.0005),
            ),
            matched_policy_ids=("bank",),
            violation=TraceViolation("bank", "MMER", "2 of 2 roles"),
            records_added=0,
            records_purged=0,
        )

    def test_round_trip(self):
        trace = self._trace()
        assert DecisionTrace.from_dict(trace.to_dict()) == trace

    def test_round_trip_without_violation(self):
        trace = dataclasses.replace(
            self._trace(), effect="grant", violation=None, records_added=1
        )
        assert DecisionTrace.from_dict(trace.to_dict()) == trace

    @pytest.mark.parametrize("mutate", [
        lambda raw: raw.pop("request_id"),
        lambda raw: raw.__setitem__("total_s", "fast"),
        lambda raw: raw.__setitem__("spans", [{"name": 3}]),
        lambda raw: raw.__setitem__("violation", {"policy_id": 1}),
        lambda raw: raw.__setitem__("matched_policy_ids", [1, 2]),
    ])
    def test_from_dict_rejects_junk(self, mutate):
        raw = self._trace().to_dict()
        mutate(raw)
        with pytest.raises(ValueError):
            DecisionTrace.from_dict(raw)

    def test_span_lookup(self):
        trace = self._trace()
        assert trace.span("engine.match").duration_s == 0.001
        assert trace.span("store.commit") is None


class TestSlowDecisionLog:
    def _trace(self, request_id, total_s):
        return DecisionTrace(
            request_id=request_id,
            user_id="u",
            effect="grant",
            total_s=total_s,
            requested_at=0.0,
            spans=(),
            matched_policy_ids=(),
            violation=None,
            records_added=0,
            records_purged=0,
        )

    def test_keeps_the_n_slowest(self):
        log = SlowDecisionLog(capacity=3)
        for index, total in enumerate([0.5, 0.1, 0.9, 0.2, 0.7, 0.05]):
            log.offer(self._trace(f"r{index}", total))
        snapshot = log.snapshot()
        assert [trace.total_s for trace in snapshot] == [0.9, 0.7, 0.5]
        assert log.offered == 6

    def test_threshold_rises_as_log_fills(self):
        log = SlowDecisionLog(capacity=2)
        assert log.threshold() == 0.0
        log.offer(self._trace("a", 0.3))
        log.offer(self._trace("b", 0.6))
        assert log.threshold() == pytest.approx(0.3)
        assert not log.offer(self._trace("c", 0.1))
        assert log.offer(self._trace("d", 0.5))
        assert log.threshold() == pytest.approx(0.5)

    def test_engine_feeds_slow_log(self):
        log = SlowDecisionLog(capacity=8)
        engine = MSoDEngine(
            bank_policy_set(),
            InMemoryRetainedADIStore(),
            tracer=DecisionTracer(slow_log=log),
        )
        for index in range(5):
            engine.check(make_request(f"user-{index}", TELLER, index))
        assert log.offered == 5
        assert len(log.snapshot()) == 5

    def test_to_dict_and_clear(self):
        log = SlowDecisionLog(capacity=2)
        log.offer(self._trace("a", 0.3))
        payload = log.to_dict()
        assert payload["capacity"] == 2
        assert payload["offered"] == 1
        assert payload["traces"][0]["request_id"] == "a"
        log.clear()
        assert log.snapshot() == []


class TestMetricsRegistry:
    def test_renders_counters_and_histograms(self):
        perf = PerfRecorder()
        engine = MSoDEngine(
            bank_policy_set(), InMemoryRetainedADIStore(), perf=perf
        )
        for index in range(4):
            engine.check(make_request(f"user-{index}", TELLER, index))
        registry = MetricsRegistry()
        registry.register_perf(perf)
        text = registry.render()
        samples = parse_exposition(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["repro_engine_requests_total"][0][1] == 4.0
        buckets = [
            (labels, value)
            for labels, value in by_name["repro_stage_duration_seconds_bucket"]
            if labels.get("stage") == "engine.check"
        ]
        assert buckets, "engine.check histogram missing"
        assert buckets[-1][0]["le"] == "+Inf"
        # Cumulative: bucket counts are monotonically non-decreasing.
        values = [value for _, value in buckets]
        assert values == sorted(values)
        assert values[-1] == 4.0

    def test_gauges_and_labels(self):
        registry = MetricsRegistry()
        registry.register_gauge(
            "queue_depth", "Depth.", lambda: [({"shard": "0"}, 3.0)]
        )
        samples = parse_exposition(registry.render())
        assert ("repro_queue_depth", {"shard": "0"}, 3.0) in samples

    def test_parse_exposition_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not { prometheus\n")

    def test_duplicate_perf_registration_is_ignored(self):
        perf = PerfRecorder()
        perf.incr("x")
        registry = MetricsRegistry()
        registry.register_perf(perf)
        registry.register_perf(perf)
        samples = parse_exposition(registry.render())
        matches = [s for s in samples if s[0] == "repro_x_total"]
        assert len(matches) == 1
        assert matches[0][2] == 1.0

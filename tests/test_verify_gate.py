"""Tests for the rollout gate (pipeline stage 3) and the cluster canary."""

import pytest

from repro.api import open_pdp
from repro.audit import (
    EVENT_DECISION,
    AuditTrailManager,
    decision_event_payload,
)
from repro.cluster import ClusterPDP, LocalCluster
from repro.core import (
    MMER,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
)
from repro.errors import PolicyError
from repro.server.service import AuthorizationService
from repro.server.testing import ServerThread
from repro.verify import GateResult, evaluate_gate
from repro.workload import bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
MANAGER = Role("employee", "Manager")

KEY = b"gate-test-key"
YORK_P1 = ContextName.parse("Branch=York, Period=P1")


def policy_set(mmers, policy_id="bank"):
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=mmers,
                policy_id=policy_id,
            )
        ]
    )


def clean_set():
    return policy_set([MMER([TELLER, AUDITOR], 2)])


def broken_set():
    # The same constraint twice (modulo role order) is an error finding.
    return policy_set([MMER([TELLER, AUDITOR], 2), MMER([AUDITOR, TELLER], 2)])


def swapped_set():
    # Frees the Teller/Auditor pair: recorded MSoD denies flip to grants.
    return policy_set([MMER([TELLER, MANAGER], 2)])


def make_request(user_id, role=TELLER, context=YORK_P1, timestamp=1.0):
    operation, target = (
        ("handleCash", "till://1")
        if role == TELLER
        else ("auditBooks", "ledger://1")
    )
    return DecisionRequest(
        user_id=user_id,
        roles=(role,),
        operation=operation,
        target=target,
        context_instance=context,
        timestamp=timestamp,
    )


def record_trail(directory, requests):
    trails = AuditTrailManager(directory, KEY, fsync=False)
    engine = MSoDEngine(clean_set(), InMemoryRetainedADIStore())
    for request in requests:
        trails.append(
            EVENT_DECISION,
            request.timestamp,
            decision_event_payload(engine.check(request)),
        )


def reader(directory):
    return AuditTrailManager(directory, KEY, tolerate_ahead=True)


DENY_HISTORY = [
    make_request("alice", TELLER, timestamp=1.0),
    make_request("alice", AUDITOR, timestamp=2.0),  # MSoD deny
]


# ----------------------------------------------------------------------
class TestEvaluateGate:
    def test_clean_set_passes_without_a_trail(self):
        gate = evaluate_gate(clean_set())
        assert gate.ok
        assert gate.whatif is None
        assert gate.reasons == ()

    def test_error_findings_fail_the_gate(self):
        gate = evaluate_gate(broken_set())
        assert not gate.ok
        assert any("CONSTRAINT_DUPLICATE" in reason for reason in gate.reasons)

    def test_flips_over_budget_fail_the_gate(self, tmp_path):
        record_trail(str(tmp_path), DENY_HISTORY)
        gate = evaluate_gate(swapped_set(), trails=reader(str(tmp_path)))
        assert not gate.ok
        assert gate.whatif.flip_count == 1
        assert any("budget 0" in reason for reason in gate.reasons)

    def test_flip_budget_admits_known_flips(self, tmp_path):
        record_trail(str(tmp_path), DENY_HISTORY)
        gate = evaluate_gate(
            swapped_set(), trails=reader(str(tmp_path)), max_flips=1
        )
        assert gate.ok
        assert gate.whatif.flip_count == 1

    def test_round_trip(self, tmp_path):
        record_trail(str(tmp_path), DENY_HISTORY)
        gate = evaluate_gate(swapped_set(), trails=reader(str(tmp_path)))
        assert GateResult.from_dict(gate.to_dict()) == gate


# ----------------------------------------------------------------------
class TestLocalPDPGate:
    def test_verified_reload_refuses_broken_set(self):
        with open_pdp(clean_set()) as pdp:
            with pytest.raises(PolicyError, match="verification gate"):
                pdp.reload_policy(broken_set(), verify=True)
            assert pdp.policy_version().epoch == 1

    def test_force_overrides_the_gate(self):
        with open_pdp(clean_set()) as pdp:
            report = pdp.reload_policy(broken_set(), verify=True, force=True)
            assert report.changed
            assert pdp.policy_version().epoch == 2

    def test_verified_reload_applies_a_clean_set(self):
        with open_pdp(clean_set()) as pdp:
            report = pdp.reload_policy(swapped_set(), verify=True)
            assert report.changed
            assert pdp.policy_version().epoch == 2


# ----------------------------------------------------------------------
@pytest.fixture
def trail_server(tmp_path):
    """A server that records its decisions to a replayable audit trail."""
    trail_dir = str(tmp_path / "trails")
    trails = AuditTrailManager(trail_dir, KEY, fsync=False)

    def audit_sink(decision):
        trails.append(
            EVENT_DECISION,
            decision.request.timestamp,
            decision_event_payload(decision),
        )

    def trail_reader():
        return AuditTrailManager(trail_dir, KEY, tolerate_ahead=True)

    engine = MSoDEngine(clean_set(), InMemoryRetainedADIStore())
    service = AuthorizationService(
        engine,
        n_shards=2,
        audit_sink=audit_sink,
        trail_reader=trail_reader,
    )
    with ServerThread(service, owns=[engine.store]) as server:
        yield server


class TestRemotePDPGate:
    def test_remote_gate_refuses_and_leaves_epoch_untouched(
        self, trail_server
    ):
        from repro.client import RemotePDP

        with RemotePDP(trail_server.host, trail_server.port) as pdp:
            for request in DENY_HISTORY:
                pdp.decide(request)
            # Static half: error findings refuse.
            with pytest.raises(PolicyError, match="verification gate"):
                pdp.reload_policy(broken_set(), verify=True)
            # Differential half: a flip over budget refuses.
            with pytest.raises(PolicyError, match="flips 1"):
                pdp.reload_policy(swapped_set(), verify=True, max_flips=0)
            assert pdp.policy_version().epoch == 1
            # Budgeting the known flip admits the same candidate.
            report = pdp.reload_policy(
                swapped_set(), verify=True, max_flips=1
            )
            assert report.changed
            assert pdp.policy_version().epoch == 2

    def test_remote_verify_and_whatif_verbs(self, trail_server):
        from repro.client import RemotePDP

        with RemotePDP(trail_server.host, trail_server.port) as pdp:
            for request in DENY_HISTORY:
                pdp.decide(request)
            body = pdp.verify_policy(broken_set())
            assert body["ok"] is False
            assert any(
                "CONSTRAINT_DUPLICATE" in str(f) for f in body["findings"]
            )
            whatif = pdp.what_if(swapped_set())
            assert whatif["flip_count"] == 1
            assert whatif["deny_to_grant"] == 1

    def test_verify_metrics_counters_render(self, trail_server):
        from repro.client import RemotePDP

        with RemotePDP(trail_server.host, trail_server.port) as pdp:
            for request in DENY_HISTORY:
                pdp.decide(request)
            pdp.verify_policy(broken_set())
            pdp.what_if(swapped_set())
            text = pdp.metrics_text()
        assert 'repro_verify_findings_total{severity="error"} 1' in text
        assert "repro_whatif_flips_total 1" in text

    def test_policy_status_surfaces_swap_findings(self, trail_server):
        from repro.client import RemotePDP

        redundant = policy_set(
            [MMER([TELLER, AUDITOR], 2), MMER([TELLER, AUDITOR, MANAGER], 2)]
        )
        with RemotePDP(trail_server.host, trail_server.port) as pdp:
            pdp.reload_policy(redundant, verify=True)
            status = pdp.policy_status()
        assert any(
            "MMER_REDUNDANT" in finding for finding in status["findings"]
        )


# ----------------------------------------------------------------------
@pytest.fixture
def gate_cluster(tmp_path):
    cluster = LocalCluster(
        bank_policy_set(),
        2,
        str(tmp_path / "cluster"),
        store="memory",
        health_interval=30.0,
        catchup_interval=30.0,
        fsync=False,
    ).start()
    yield cluster
    cluster.stop()


class TestClusterGate:
    def test_reload_refuses_broken_set_before_touching_any_node(
        self, gate_cluster
    ):
        with pytest.raises(PolicyError, match="CONSTRAINT_DUPLICATE"):
            gate_cluster.reload_policy(broken_set())
        for node in gate_cluster.nodes():
            assert node.policy_version().epoch == 1

    def test_canary_rollout_applies_cluster_wide(self, gate_cluster):
        body = gate_cluster.canary_reload_policy(swapped_set())
        assert body["changed"]
        assert body["canary"]["staged"]["changed"]
        for node in gate_cluster.nodes():
            assert node.policy_version().epoch == 2

    def test_canary_rejects_on_replay_flips_and_rolls_the_standby_back(
        self, gate_cluster
    ):
        # Build MSoD-deny history on one shard through the router.
        user = next(
            f"user-{index}"
            for index in range(1000)
            if gate_cluster.ring.shard_for(f"user-{index}")
            == gate_cluster.shard_names[0]
        )
        with ClusterPDP((gate_cluster.host, gate_cluster.port)) as pdp:
            assert pdp.decide(
                make_request(user, TELLER, timestamp=1.0)
            ).granted
            assert not pdp.decide(
                make_request(user, AUDITOR, timestamp=2.0)
            ).granted
        shard = gate_cluster.shard(gate_cluster.shard_names[0])
        before = shard.standby.policy_version()
        with pytest.raises(PolicyError, match="canary rollout rejected"):
            gate_cluster.canary_reload_policy(
                swapped_set(),
                shard_name=gate_cluster.shard_names[0],
                max_flips=0,
                timeout=0.5,
            )
        # The staged standby was rolled back to its pre-stage lineage.
        after = shard.standby.policy_version()
        assert after.epoch == before.epoch
        assert after.digest == before.digest
        for node in gate_cluster.nodes():
            assert node.policy_version().epoch == 1

"""Property-based tests for the MSoD engine invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    Privilege,
    Role,
    SQLiteRetainedADIStore,
    store_digest,
)
from repro.xmlpolicy import combined_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")

PRIVILEGES = {
    TELLER: Privilege("handleCash", "till://cash"),
    AUDITOR: Privilege("auditBooks", "ledger://books"),
    CLERK: Privilege("prepareCheck", "http://www.myTaxOffice.com/Check"),
    MANAGER: Privilege(
        "approve/disapproveCheck", "http://www.myTaxOffice.com/Check"
    ),
}

_users = st.sampled_from(["u1", "u2", "u3"])
_roles = st.sampled_from([TELLER, AUDITOR, CLERK, MANAGER])
_branches = st.sampled_from(["York", "Leeds"])
_periods = st.sampled_from(["P1", "P2"])


@st.composite
def requests(draw, index=0):
    user = draw(_users)
    role = draw(_roles)
    privilege = PRIVILEGES[role]
    if role in (CLERK, MANAGER):
        instance = draw(st.sampled_from(["I1", "I2"]))
        context = ContextName.parse(
            f"TaxOffice=Leeds, taxRefundProcess={instance}"
        )
    else:
        context = ContextName.parse(
            f"Branch={draw(_branches)}, Period={draw(_periods)}"
        )
    return DecisionRequest(
        user_id=user,
        roles=(role,),
        operation=privilege.operation,
        target=privilege.target,
        context_instance=context,
        timestamp=float(index),
    )


@st.composite
def request_streams(draw, max_size=25):
    size = draw(st.integers(min_value=1, max_value=max_size))
    return [draw(requests(index=i)) for i in range(size)]


@given(request_streams())
@settings(max_examples=100, deadline=None)
def test_denied_requests_never_mutate_store(stream):
    """The Section 4.2 note, over arbitrary interleavings."""
    engine = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
    for request in stream:
        before = store_digest(engine.store)
        decision = engine.check(request)
        if decision.denied:
            assert store_digest(engine.store) == before


@given(request_streams())
@settings(max_examples=60, deadline=None)
def test_backends_agree(stream):
    """In-memory and SQLite stores produce identical decisions and state."""
    memory_engine = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
    sqlite_store = SQLiteRetainedADIStore(":memory:")
    sqlite_engine = MSoDEngine(combined_policy_set(), sqlite_store)
    try:
        for request in stream:
            a = memory_engine.check(request)
            b = sqlite_engine.check(request)
            assert a.effect == b.effect, request
        assert store_digest(memory_engine.store) == store_digest(
            sqlite_engine.store
        )
    finally:
        sqlite_store.close()


@given(request_streams())
@settings(max_examples=60, deadline=None)
def test_decisions_are_deterministic(stream):
    """Replaying the same stream yields the same decision sequence."""
    first = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
    second = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
    assert [d.effect for d in first.bulk_check(stream)] == [
        d.effect for d in second.bulk_check(stream)
    ]


@given(request_streams())
@settings(max_examples=60, deadline=None)
def test_no_user_ever_holds_m_conflicting_roles(stream):
    """Safety invariant: after any granted prefix, no user's retained
    history within one effective bank-policy context contains both
    Teller and Auditor."""
    engine = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
    policy = combined_policy_set().policies[0]  # the bank MMER policy
    for request in stream:
        engine.check(request)
        for period in ("P1", "P2"):
            effective = policy.business_context.instantiate(
                ContextName.parse(f"Branch=York, Period={period}")
            )
            for user in ("u1", "u2", "u3"):
                roles = engine.store.user_roles(user, effective)
                assert not (
                    TELLER in roles and AUDITOR in roles
                ), f"{user} holds both conflicting roles in {effective}"


@given(request_streams())
@settings(max_examples=60, deadline=None)
def test_grants_monotonically_bounded_store(stream):
    """Store size only changes on grants, and step-5/6 add at most a
    bounded number of records per request."""
    engine = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
    for request in stream:
        before = engine.store.count()
        decision = engine.check(request)
        after = engine.store.count()
        if decision.denied:
            assert after == before
        else:
            assert after >= before - decision.records_purged
            assert decision.records_added <= 4  # base + role records


@given(request_streams())
@settings(max_examples=40, deadline=None)
def test_strict_mode_denies_superset_of_literal(stream):
    """Strict mode only ever adds denials relative to the literal paper
    algorithm on single-role request streams."""
    from repro.core import MODE_LITERAL, MODE_STRICT

    literal = MSoDEngine(
        combined_policy_set(), InMemoryRetainedADIStore(), mode=MODE_LITERAL
    )
    strict = MSoDEngine(
        combined_policy_set(), InMemoryRetainedADIStore(), mode=MODE_STRICT
    )
    for request in stream:
        literal_decision = literal.check(request)
        strict_decision = strict.check(request)
        if literal_decision.denied:
            assert strict_decision.denied

"""Unit tests for the workload generator and detection metrics."""

import math

from repro.baselines import AnsiDsdChecker, AnsiSsdChecker, MSoDChecker
from repro.core.decision import DecisionRequest
from repro.rbac import DsdConstraint, SsdConstraint
from repro.workload import (
    ALL_CLASSES,
    BENIGN,
    CROSS_SESSION,
    FEDERATED_LINKED,
    FEDERATED_UNLINKED,
    REPEATED_PRIVILEGE,
    SAME_SESSION,
    SINGLE_AUTHORITY,
    VIOLATION_CLASSES,
    DetectionReport,
    ScenarioGenerator,
    ScenarioOutcome,
    decision_request_stream,
    format_detection_table,
    run_comparison,
)
from repro.xmlpolicy import combined_policy_set


class TestScenarioGenerator:
    def test_mixed_stream_covers_every_class(self):
        scenarios = ScenarioGenerator(seed=1).mixed_stream(
            per_class=2, benign_per_class=2
        )
        labels = {scenario.label for scenario in scenarios}
        assert labels == set(ALL_CLASSES)

    def test_scenarios_use_fresh_users(self):
        scenarios = ScenarioGenerator(seed=1).mixed_stream(
            per_class=3, benign_per_class=3
        )
        user_sets = [
            frozenset(step.user_id for step in scenario.steps)
            for scenario in scenarios
        ]
        for i, users_a in enumerate(user_sets):
            for users_b in user_sets[i + 1:]:
                assert not (users_a & users_b)

    def test_deterministic_given_seed(self):
        first = ScenarioGenerator(seed=5).mixed_stream(2, 2)
        second = ScenarioGenerator(seed=5).mixed_stream(2, 2)
        assert [s.scenario_id for s in first] == [s.scenario_id for s in second]
        assert [s.label for s in first] == [s.label for s in second]

    def test_violation_flags(self):
        gen = ScenarioGenerator(seed=1)
        assert not gen.benign_bank().is_violation
        assert gen.cross_session().is_violation

    def test_federated_unlinked_uses_distinct_presented_ids(self):
        scenario = ScenarioGenerator(seed=1).federated(linked=False)
        presented = [
            step.presented_id for step in scenario.steps if step.is_access
        ]
        assert len(set(presented)) == 2
        assert all(p != step.user_id for p, step in zip(
            presented, [s for s in scenario.steps if s.is_access]
        ))

    def test_federated_linked_ids_resolve(self):
        gen = ScenarioGenerator(seed=1)
        scenario = gen.federated(linked=True)
        for step in scenario.access_steps():
            assert gen.identity_linker.resolve(step.presented_id) == step.user_id


class TestDecisionRequestStream:
    def test_length_and_determinism(self):
        first = list(decision_request_stream(50, seed=3))
        second = list(decision_request_stream(50, seed=3))
        assert len(first) == 50
        assert [r.user_id for r in first] == [r.user_id for r in second]

    def test_requests_are_valid(self):
        for request in decision_request_stream(20):
            assert isinstance(request, DecisionRequest)
            assert request.context_instance.is_concrete

    def test_conflict_fraction_zero(self):
        requests = list(decision_request_stream(30, conflict_fraction=0.0))
        assert all(r.roles[0].value == "Teller" for r in requests)


class TestMetrics:
    def _reports(self):
        gen = ScenarioGenerator(seed=9)
        scenarios = gen.mixed_stream(per_class=4, benign_per_class=4)
        checkers = [
            MSoDChecker(combined_policy_set()),
            MSoDChecker(
                combined_policy_set(), linker=gen.identity_linker, name="MSoD+link"
            ),
            AnsiSsdChecker([SsdConstraint("ta", ["Teller", "Auditor"], 2)]),
            AnsiDsdChecker([DsdConstraint("ta", ["Teller", "Auditor"], 2)]),
        ]
        return run_comparison(checkers, scenarios)

    def test_paper_shape_detection_rates(self):
        reports = {report.checker_name: report for report in self._reports()}
        msod = reports["MSoD"]
        assert msod.detection_rate(SAME_SESSION) == 1.0
        assert msod.detection_rate(SINGLE_AUTHORITY) == 1.0
        assert msod.detection_rate(CROSS_SESSION) == 1.0
        assert msod.detection_rate(REPEATED_PRIVILEGE) == 1.0
        assert msod.detection_rate(FEDERATED_UNLINKED) == 0.0  # Section 6
        assert msod.false_positive_rate() == 0.0

        linked = reports["MSoD+link"]
        assert linked.detection_rate(FEDERATED_LINKED) == 1.0
        assert linked.false_positive_rate() == 0.0

        ssd = reports["ANSI SSD"]
        assert ssd.detection_rate(SINGLE_AUTHORITY) == 1.0
        assert ssd.detection_rate(CROSS_SESSION) == 0.0

        dsd = reports["ANSI DSD"]
        assert dsd.detection_rate(SAME_SESSION) == 1.0
        assert dsd.detection_rate(CROSS_SESSION) == 0.0

    def test_format_table_contains_all_checkers(self):
        table = format_detection_table(self._reports())
        for name in ("MSoD", "ANSI SSD", "ANSI DSD"):
            assert name in table
        assert BENIGN in table

    def test_detection_rate_nan_for_unseen_class(self):
        report = DetectionReport(checker_name="x")
        assert math.isnan(report.detection_rate("never-seen"))

    def test_outcome_correctness(self):
        gen = ScenarioGenerator(seed=2)
        violation = gen.cross_session()
        benign = gen.benign_bank()
        assert ScenarioOutcome(violation, blocked=True).correct
        assert not ScenarioOutcome(violation, blocked=False).correct
        assert ScenarioOutcome(benign, blocked=False).correct
        assert not ScenarioOutcome(benign, blocked=True).correct

    def test_all_violation_classes_enumerated(self):
        assert set(VIOLATION_CLASSES) | {BENIGN} == set(ALL_CLASSES)

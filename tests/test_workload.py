"""Unit tests for the workload generator and detection metrics."""

import math

from repro.baselines import AnsiDsdChecker, AnsiSsdChecker, MSoDChecker
from repro.core.decision import DecisionRequest
from repro.rbac import DsdConstraint, SsdConstraint
from repro.workload import (
    ALL_CLASSES,
    BENIGN,
    CROSS_SESSION,
    FEDERATED_LINKED,
    FEDERATED_UNLINKED,
    REPEATED_PRIVILEGE,
    SAME_SESSION,
    SINGLE_AUTHORITY,
    VIOLATION_CLASSES,
    DetectionReport,
    ScenarioGenerator,
    ScenarioOutcome,
    decision_request_stream,
    format_detection_table,
    run_comparison,
)
from repro.xmlpolicy import combined_policy_set


class TestScenarioGenerator:
    def test_mixed_stream_covers_every_class(self):
        scenarios = ScenarioGenerator(seed=1).mixed_stream(
            per_class=2, benign_per_class=2
        )
        labels = {scenario.label for scenario in scenarios}
        assert labels == set(ALL_CLASSES)

    def test_scenarios_use_fresh_users(self):
        scenarios = ScenarioGenerator(seed=1).mixed_stream(
            per_class=3, benign_per_class=3
        )
        user_sets = [
            frozenset(step.user_id for step in scenario.steps)
            for scenario in scenarios
        ]
        for i, users_a in enumerate(user_sets):
            for users_b in user_sets[i + 1:]:
                assert not (users_a & users_b)

    def test_deterministic_given_seed(self):
        first = ScenarioGenerator(seed=5).mixed_stream(2, 2)
        second = ScenarioGenerator(seed=5).mixed_stream(2, 2)
        assert [s.scenario_id for s in first] == [s.scenario_id for s in second]
        assert [s.label for s in first] == [s.label for s in second]

    def test_violation_flags(self):
        gen = ScenarioGenerator(seed=1)
        assert not gen.benign_bank().is_violation
        assert gen.cross_session().is_violation

    def test_federated_unlinked_uses_distinct_presented_ids(self):
        scenario = ScenarioGenerator(seed=1).federated(linked=False)
        presented = [
            step.presented_id for step in scenario.steps if step.is_access
        ]
        assert len(set(presented)) == 2
        assert all(p != step.user_id for p, step in zip(
            presented, [s for s in scenario.steps if s.is_access]
        ))

    def test_federated_linked_ids_resolve(self):
        gen = ScenarioGenerator(seed=1)
        scenario = gen.federated(linked=True)
        for step in scenario.access_steps():
            assert gen.identity_linker.resolve(step.presented_id) == step.user_id


class TestDecisionRequestStream:
    def test_length_and_determinism(self):
        first = list(decision_request_stream(50, seed=3))
        second = list(decision_request_stream(50, seed=3))
        assert len(first) == 50
        assert [r.user_id for r in first] == [r.user_id for r in second]

    def test_requests_are_valid(self):
        for request in decision_request_stream(20):
            assert isinstance(request, DecisionRequest)
            assert request.context_instance.is_concrete

    def test_conflict_fraction_zero(self):
        requests = list(decision_request_stream(30, conflict_fraction=0.0))
        assert all(r.roles[0].value == "Teller" for r in requests)


class TestMetrics:
    def _reports(self):
        gen = ScenarioGenerator(seed=9)
        scenarios = gen.mixed_stream(per_class=4, benign_per_class=4)
        checkers = [
            MSoDChecker(combined_policy_set()),
            MSoDChecker(
                combined_policy_set(), linker=gen.identity_linker, name="MSoD+link"
            ),
            AnsiSsdChecker([SsdConstraint("ta", ["Teller", "Auditor"], 2)]),
            AnsiDsdChecker([DsdConstraint("ta", ["Teller", "Auditor"], 2)]),
        ]
        return run_comparison(checkers, scenarios)

    def test_paper_shape_detection_rates(self):
        reports = {report.checker_name: report for report in self._reports()}
        msod = reports["MSoD"]
        assert msod.detection_rate(SAME_SESSION) == 1.0
        assert msod.detection_rate(SINGLE_AUTHORITY) == 1.0
        assert msod.detection_rate(CROSS_SESSION) == 1.0
        assert msod.detection_rate(REPEATED_PRIVILEGE) == 1.0
        assert msod.detection_rate(FEDERATED_UNLINKED) == 0.0  # Section 6
        assert msod.false_positive_rate() == 0.0

        linked = reports["MSoD+link"]
        assert linked.detection_rate(FEDERATED_LINKED) == 1.0
        assert linked.false_positive_rate() == 0.0

        ssd = reports["ANSI SSD"]
        assert ssd.detection_rate(SINGLE_AUTHORITY) == 1.0
        assert ssd.detection_rate(CROSS_SESSION) == 0.0

        dsd = reports["ANSI DSD"]
        assert dsd.detection_rate(SAME_SESSION) == 1.0
        assert dsd.detection_rate(CROSS_SESSION) == 0.0

    def test_format_table_contains_all_checkers(self):
        table = format_detection_table(self._reports())
        for name in ("MSoD", "ANSI SSD", "ANSI DSD"):
            assert name in table
        assert BENIGN in table

    def test_detection_rate_nan_for_unseen_class(self):
        report = DetectionReport(checker_name="x")
        assert math.isnan(report.detection_rate("never-seen"))

    def test_outcome_correctness(self):
        gen = ScenarioGenerator(seed=2)
        violation = gen.cross_session()
        benign = gen.benign_bank()
        assert ScenarioOutcome(violation, blocked=True).correct
        assert not ScenarioOutcome(violation, blocked=False).correct
        assert ScenarioOutcome(benign, blocked=False).correct
        assert not ScenarioOutcome(benign, blocked=True).correct

    def test_all_violation_classes_enumerated(self):
        assert set(VIOLATION_CLASSES) | {BENIGN} == set(ALL_CLASSES)


class TestBankScale:
    def _config(self, **overrides):
        from repro.workload import BankScaleConfig

        kwargs = dict(n_users=2_000, active_fraction=0.05, seed=7)
        kwargs.update(overrides)
        return BankScaleConfig(**kwargs)

    def test_policy_set_shape(self):
        from repro.workload import bank_scale_policy_set

        config = self._config()
        policies = list(bank_scale_policy_set(config))
        assert len(policies) == (
            config.n_divisions * config.duty_pairs_per_division
        )
        assert len({policy.policy_id for policy in policies}) == len(policies)
        assert config.n_roles == 2 * len(policies)

    def test_request_stream_is_deterministic_and_bounded(self):
        from repro.workload import bank_scale_request_stream

        config = self._config()
        first = list(bank_scale_request_stream(config, 200))
        second = list(bank_scale_request_stream(config, 200))
        assert [r.user_id for r in first] == [r.user_id for r in second]
        assert [str(r.context_instance) for r in first] == [
            str(r.context_instance) for r in second
        ]
        # Non-churn traffic stays within the active set.
        users = {r.user_id for r in first}
        assert len(users) <= config.active_users + int(
            200 * config.churn_fraction * 3
        )

    def test_invalid_config_raises(self):
        import pytest

        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            self._config(n_users=0)
        with pytest.raises(PolicyError):
            self._config(active_fraction=0.0)

    def test_history_covers_whole_population_and_predates_stream(self):
        from repro.workload import bank_scale_history

        config = self._config(n_users=50)
        records = list(bank_scale_history(config, 3))
        assert len(records) == 150
        assert {r.user_id for r in records} == {
            f"u{i:07d}" for i in range(50)
        }
        assert all(r.granted_at < 0.0 for r in records)
        assert len({r.request_id for r in records}) == len(records)
        # Deterministic: a replay into two stores must be identical.
        again = list(bank_scale_history(config, 3))
        assert [(r.user_id, r.request_id, str(r.context_instance))
                for r in records] == [
            (r.user_id, r.request_id, str(r.context_instance)) for r in again
        ]


class TestOpenLoop:
    def test_percentile_nearest_rank(self):
        from repro.workload import percentile

        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 0.50) == 51.0
        assert percentile(samples, 0.99) == 100.0
        assert percentile([], 0.99) == 0.0

    def test_open_loop_latency_measured_from_scheduled_arrival(self):
        from repro.workload import run_open_loop

        # Simulated clock: each decide takes 2s against a 1 rps
        # schedule, so the backlog grows and scheduled-arrival latency
        # climbs — the coordinated-omission signal a closed loop hides.
        now = [0.0]

        def clock():
            return now[0]

        def sleep(seconds):
            now[0] += seconds

        def decide(request):
            now[0] += 2.0

        report = run_open_loop(
            decide, range(5), 1.0, clock=clock, sleep=sleep
        )
        assert report.completed == 5
        assert report.latency_p99_ms > report.latency_p50_ms
        assert report.max_backlog_s > 0
        assert report.achieved_rps < report.offered_rps

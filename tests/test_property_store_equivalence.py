"""Differential property tests: the engine is backend-agnostic.

The optimized stores answer the engine's history views from incremental
aggregates (``_UserContextIndex``) plus cross-request memos, while the
abstract base class defines them as record scans.  These properties
drive full engines over randomized request streams and require the
in-memory and SQLite backends to produce *identical* decision streams
and identical final store digests, in both evaluation modes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MMEP,
    MMER,
    MODE_LITERAL,
    MODE_STRICT,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Privilege,
    Role,
    RetainedADIStore,
    SQLiteRetainedADIStore,
    Step,
    store_digest,
)

_CLERK = Role("role", "Clerk")
_AUDITOR = Role("role", "Auditor")
_MANAGER = Role("role", "Manager")

_OPS = (
    ("issue", "PO"),
    ("approve", "PO"),
    ("pay", "Invoice"),
    ("open", "Case"),
    ("close", "Case"),
    ("browse", "Docs"),
)


def _policy_set() -> MSoDPolicySet:
    """A small set exercising ``*``/``!`` scoping, MMER, MMEP and steps."""
    return MSoDPolicySet(
        [
            MSoDPolicy(
                business_context=ContextName.parse("Dept=*, Case=!"),
                mmers=[MMER([_CLERK, _AUDITOR], 2)],
                policy_id="p-mmer",
            ),
            MSoDPolicy(
                business_context=ContextName.parse("Dept=!"),
                mmeps=[
                    MMEP(
                        [Privilege("issue", "PO"), Privilege("approve", "PO")],
                        2,
                    )
                ],
                policy_id="p-mmep",
            ),
            MSoDPolicy(
                business_context=ContextName.parse("Dept=*, Case=*"),
                mmeps=[
                    MMEP(
                        [Privilege("pay", "Invoice"), Privilege("pay", "Invoice")],
                        2,
                    )
                ],
                policy_id="p-dup",
            ),
            MSoDPolicy(
                business_context=ContextName.parse("Dept=!, Case=!"),
                mmers=[MMER([_CLERK, _MANAGER], 2)],
                first_step=Step("open", "Case"),
                last_step=Step("close", "Case"),
                policy_id="p-steps",
            ),
        ]
    )


_requests = st.lists(
    st.tuples(
        st.sampled_from(["alice", "bob", "carol"]),
        st.sets(
            st.sampled_from([_CLERK, _AUDITOR, _MANAGER]), min_size=1, max_size=2
        ),
        st.sampled_from(_OPS),
        st.sampled_from(["d1", "d2"]),
        st.sampled_from(["c1", "c2"]),
    ),
    min_size=1,
    max_size=40,
)


def _decision_key(decision):
    return (
        decision.effect,
        decision.reason,
        decision.matched_policy_ids,
        decision.records_added,
    )


def _run_stream(mode, stream):
    memory = InMemoryRetainedADIStore()
    sqlite_store = SQLiteRetainedADIStore(":memory:")
    policy_set = _policy_set()
    engines = [
        MSoDEngine(policy_set, memory, mode=mode),
        MSoDEngine(policy_set, sqlite_store, mode=mode),
    ]
    try:
        for index, (user, roles, op, dept, case) in enumerate(stream):
            context = ContextName.parse(f"Dept={dept}, Case={case}")
            keys = []
            for engine in engines:
                request = DecisionRequest(
                    user_id=user,
                    roles=tuple(sorted(roles, key=str)),
                    operation=op[0],
                    target=op[1],
                    context_instance=context,
                    timestamp=float(index),
                    request_id=f"r{index}",
                )
                keys.append(_decision_key(engine.check(request)))
            assert keys[0] == keys[1], f"decision diverged at step {index}"
            assert store_digest(memory) == store_digest(sqlite_store), (
                f"store contents diverged at step {index}"
            )
    finally:
        sqlite_store.close()


@given(_requests)
@settings(max_examples=40, deadline=None)
def test_engines_agree_across_backends_strict(stream):
    _run_stream(MODE_STRICT, stream)


@given(_requests)
@settings(max_examples=40, deadline=None)
def test_engines_agree_across_backends_literal(stream):
    _run_stream(MODE_LITERAL, stream)


@given(_requests)
@settings(max_examples=30, deadline=None)
def test_aggregate_views_match_scan_definitions(stream):
    """The aggregate-backed views equal the base-class scan definitions."""
    store = InMemoryRetainedADIStore()
    engine = MSoDEngine(_policy_set(), store)
    queries = [
        ContextName.parse("Dept=d1"),
        ContextName.parse("Dept=*, Case=c2"),
        ContextName.parse("Dept=*, Case=*"),
        ContextName.root(),
    ]
    for index, (user, roles, op, dept, case) in enumerate(stream):
        engine.check(
            DecisionRequest(
                user_id=user,
                roles=tuple(sorted(roles, key=str)),
                operation=op[0],
                target=op[1],
                context_instance=ContextName.parse(f"Dept={dept}, Case={case}"),
                timestamp=float(index),
                request_id=f"r{index}",
            )
        )
        for query in queries:
            # The abstract base class holds the scan-based reference
            # definitions; calling them unbound bypasses the overrides.
            assert store.user_roles(user, query) == RetainedADIStore.user_roles(
                store, user, query
            )
            assert store.user_privilege_exercises(
                user, query
            ) == RetainedADIStore.user_privilege_exercises(store, user, query)
            assert store.has_context(query) == any(
                record.in_context(query) for record in store.records()
            )

"""Regression tests for store index hygiene and purge atomicity.

Two defects fixed alongside the hot-path work:

* the in-memory store's user index used to keep record ids after a
  delete, so long-lived users accumulated stale entries without bound;
* the SQLite ``purge_context``/``apply`` used to select doomed rows via
  ``find()`` *before* taking the store lock, so a concurrent ``add``
  could slip a matching record into the select-to-delete window and
  survive the purge.
"""

import threading

import pytest

from repro.core import (
    ContextName,
    InMemoryRetainedADIStore,
    RetainedADIRecord,
    Role,
    SQLiteRetainedADIStore,
)
from repro.core.retained_adi import ADIMutation


def _record(index, user="u1", context="Dept=d1"):
    return RetainedADIRecord(
        user_id=user,
        roles=(Role("role", "Clerk"),),
        operation="op",
        target="t",
        context_instance=ContextName.parse(context),
        granted_at=float(index),
        request_id=f"r{index}",
    )


class TestInMemoryIndexHygiene:
    def test_purge_fully_unlinks_user_entries(self):
        store = InMemoryRetainedADIStore()
        for index in range(5):
            store.add(_record(index))
        assert store.purge_context(ContextName.parse("Dept=d1")) == 5
        assert store.count() == 0
        # The user index must not retain empty/stale entries.
        assert store._index._by_user == {}
        assert store._index._by_context == {}

    def test_repeated_add_purge_cycles_do_not_leak(self):
        store = InMemoryRetainedADIStore()
        context = ContextName.parse("Dept=d1")
        for cycle in range(50):
            store.add(_record(cycle))
            assert store.purge_context(context) == 1
        assert store._index._by_user == {}
        assert store.find_user("u1", context) == []
        assert store.user_roles("u1", context) == frozenset()

    def test_purge_user_and_clear_unlink_everything(self):
        store = InMemoryRetainedADIStore()
        store.add(_record(0, user="u1"))
        store.add(_record(1, user="u2"))
        assert store.purge_user("u1") == 1
        assert "u1" not in store._index._by_user
        assert store.clear() == 1
        assert store._index._by_user == {}

    def test_partial_purge_keeps_other_contexts(self):
        store = InMemoryRetainedADIStore()
        store.add(_record(0, context="Dept=d1"))
        store.add(_record(1, context="Dept=d2"))
        store.purge_context(ContextName.parse("Dept=d1"))
        assert [r.context_instance for r in store.find_user(
            "u1", ContextName.root()
        )] == [ContextName.parse("Dept=d2")]


class TestSQLitePurgeAtomicity:
    def test_purge_context_does_not_preselect_via_find(self, monkeypatch):
        """Candidate selection must happen inside the locked transaction."""
        store = SQLiteRetainedADIStore(":memory:")
        try:
            store.add(_record(0))

            def poisoned_find(effective_context):
                raise AssertionError(
                    "purge_context must not select candidates through the "
                    "unlocked find() path"
                )

            monkeypatch.setattr(store, "find", poisoned_find)
            assert store.purge_context(ContextName.parse("Dept=d1")) == 1
            assert store.count() == 0
        finally:
            store.close()

    def test_apply_does_not_preselect_via_find(self, monkeypatch):
        store = SQLiteRetainedADIStore(":memory:")
        try:
            store.add(_record(0))
            monkeypatch.setattr(
                store,
                "find",
                lambda *_: pytest.fail("apply must not call find()"),
            )
            mutation = ADIMutation(
                adds=[_record(1, context="Dept=d2")],
                purge_contexts=[ContextName.parse("Dept=d1")],
            )
            assert store.apply(mutation) == 1
            assert [
                str(record.context_instance) for record in store.records()
            ] == ["Dept=d2"]
        finally:
            store.close()

    def test_concurrent_adds_never_survive_a_purge_window(self):
        """Records added while purges run either die or postdate the purge.

        The old select-then-lock window let a concurrent add land
        *before* the delete yet escape the doomed set.  With selection
        inside the transaction that interleaving is impossible: after
        the final purge round no record inserted before it can remain.
        """
        store = SQLiteRetainedADIStore(":memory:")
        context = ContextName.parse("Dept=d1")
        stop = threading.Event()

        def adder():
            index = 1000
            while not stop.is_set():
                store.add(_record(index))
                index += 1

        thread = threading.Thread(target=adder)
        thread.start()
        try:
            for _ in range(100):
                store.purge_context(context)
        finally:
            stop.set()
            thread.join()
        survivors = store.find(context)
        final_purge_floor = max(
            (record.record_id for record in survivors), default=0
        )
        store.purge_context(context)
        assert store.find(context) == []
        # Sanity: the index/cache stayed consistent with the table.
        assert store.count() == 0
        assert final_purge_floor >= 0
        store.close()

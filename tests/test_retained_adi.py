"""Unit tests for the retained-ADI stores (Sections 4.1-4.3, 5.2, 6)."""

import pytest

from repro.core.constraints import Privilege, Role
from repro.core.context import ContextName
from repro.core.retained_adi import (
    ADIMutation,
    InMemoryRetainedADIStore,
    RetainedADIRecord,
    SQLiteRetainedADIStore,
    store_digest,
)
from repro.errors import StoreError

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def record(
    user="alice",
    roles=(TELLER,),
    operation="handleCash",
    target="till://1",
    context="Branch=York, Period=2006",
    at=1.0,
    request_id="req-1",
):
    return RetainedADIRecord(
        user_id=user,
        roles=tuple(roles),
        operation=operation,
        target=target,
        context_instance=ContextName.parse(context),
        granted_at=at,
        request_id=request_id,
    )


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        yield InMemoryRetainedADIStore()
    else:
        sqlite_store = SQLiteRetainedADIStore(":memory:")
        yield sqlite_store
        sqlite_store.close()


class TestRecord:
    def test_privilege_view(self):
        assert record().privilege == Privilege("handleCash", "till://1")

    def test_in_context_wildcard(self):
        rec = record(context="Branch=York, Period=2006")
        assert rec.in_context(ContextName.parse("Branch=*, Period=2006"))
        assert not rec.in_context(ContextName.parse("Branch=*, Period=2007"))

    def test_dict_round_trip(self):
        rec = record(roles=(TELLER, AUDITOR))
        restored = RetainedADIRecord.from_dict(rec.to_dict(), record_id=9)
        assert restored.user_id == rec.user_id
        assert restored.roles == rec.roles
        assert restored.context_instance == rec.context_instance
        assert restored.record_id == 9


class TestStoreBasics:
    def test_add_assigns_record_id(self, store):
        stored = store.add(record())
        assert stored.record_id is not None
        assert store.count() == 1

    def test_records_iterates_all(self, store):
        store.add(record(request_id="r1"))
        store.add(record(user="bob", request_id="r2"))
        assert {rec.user_id for rec in store.records()} == {"alice", "bob"}

    def test_find_by_context(self, store):
        store.add(record(context="Branch=York, Period=2006"))
        store.add(record(context="Branch=Leeds, Period=2006", request_id="r2"))
        store.add(record(context="Branch=York, Period=2007", request_id="r3"))
        found = store.find(ContextName.parse("Branch=*, Period=2006"))
        assert len(found) == 2

    def test_find_user_scopes_to_user(self, store):
        store.add(record(user="alice"))
        store.add(record(user="bob", request_id="r2"))
        found = store.find_user("alice", ContextName.parse("Branch=*, Period=2006"))
        assert len(found) == 1
        assert found[0].user_id == "alice"

    def test_has_context(self, store):
        assert not store.has_context(ContextName.parse("Branch=*, Period=2006"))
        store.add(record())
        assert store.has_context(ContextName.parse("Branch=*, Period=2006"))

    def test_purge_context_removes_subordinates(self, store):
        store.add(record(context="Branch=York, Period=2006"))
        store.add(record(context="Branch=York, Period=2006, Till=1", request_id="r2"))
        store.add(record(context="Branch=York, Period=2007", request_id="r3"))
        removed = store.purge_context(ContextName.parse("Branch=*, Period=2006"))
        assert removed == 2
        assert store.count() == 1

    def test_purge_user(self, store):
        store.add(record(user="alice"))
        store.add(record(user="bob", request_id="r2"))
        assert store.purge_user("alice") == 1
        assert {rec.user_id for rec in store.records()} == {"bob"}

    def test_purge_older_than(self, store):
        store.add(record(at=1.0))
        store.add(record(at=5.0, request_id="r2"))
        assert store.purge_older_than(3.0) == 1
        assert store.count() == 1

    def test_clear(self, store):
        store.add(record())
        store.add(record(request_id="r2"))
        assert store.clear() == 2
        assert store.count() == 0


class TestStoreViews:
    def test_user_roles_aggregates(self, store):
        store.add(record(roles=(TELLER,)))
        store.add(record(roles=(AUDITOR,), request_id="r2"))
        roles = store.user_roles("alice", ContextName.parse("Branch=*, Period=2006"))
        assert roles == {TELLER, AUDITOR}

    def test_user_roles_respects_context(self, store):
        store.add(record(roles=(TELLER,), context="Branch=York, Period=2006"))
        roles = store.user_roles("alice", ContextName.parse("Branch=*, Period=2007"))
        assert roles == frozenset()

    def test_privilege_exercises_dedupe_by_request(self, store):
        # One decision request may add several role records (step 5.iv);
        # they count as one exercise of the operation.
        store.add(record(roles=(TELLER,), request_id="same"))
        store.add(record(roles=(AUDITOR,), request_id="same"))
        store.add(record(request_id="other"))
        exercises = store.user_privilege_exercises(
            "alice", ContextName.parse("Branch=*, Period=2006")
        )
        assert len(exercises) == 2

    def test_privilege_exercises_preserve_multiplicity(self, store):
        store.add(record(request_id="r1"))
        store.add(record(request_id="r2"))
        exercises = store.user_privilege_exercises(
            "alice", ContextName.parse("Branch=*, Period=2006")
        )
        assert len(exercises) == 2


class TestMutation:
    def test_apply_purges_then_adds(self, store):
        store.add(record())
        mutation = ADIMutation(
            adds=[record(context="Branch=York, Period=2007", request_id="r2")],
            purge_contexts=[ContextName.parse("Branch=*, Period=2006")],
        )
        store.apply(mutation)
        contexts = {str(rec.context_instance) for rec in store.records()}
        assert contexts == {"Branch=York, Period=2007"}

    def test_is_empty(self):
        assert ADIMutation().is_empty
        assert not ADIMutation(adds=[record()]).is_empty


class TestDigest:
    def test_digest_reflects_content_not_backend(self):
        memory = InMemoryRetainedADIStore()
        sqlite_store = SQLiteRetainedADIStore(":memory:")
        for target in (memory, sqlite_store):
            target.add(record())
            target.add(record(user="bob", request_id="r2"))
        assert store_digest(memory) == store_digest(sqlite_store)
        sqlite_store.close()

    def test_digest_changes_on_add(self):
        store = InMemoryRetainedADIStore()
        before = store_digest(store)
        store.add(record())
        assert store_digest(store) != before


class TestSQLiteSpecifics:
    def test_persistence_across_connections(self, tmp_path):
        path = str(tmp_path / "adi.db")
        first = SQLiteRetainedADIStore(path)
        first.add(record())
        first.close()
        second = SQLiteRetainedADIStore(path)
        assert second.count() == 1
        assert next(iter(second.records())).user_id == "alice"
        second.close()

    def test_closed_store_raises(self):
        store = SQLiteRetainedADIStore(":memory:")
        store.close()
        with pytest.raises(StoreError):
            store.add(record())
        with pytest.raises(StoreError):
            store.count()

    def test_close_is_idempotent(self):
        store = SQLiteRetainedADIStore(":memory:")
        store.close()
        store.close()

"""Tests for the organisational bank simulation."""

import pytest

from repro.simulation import (
    BankSimulation,
    ENFORCEMENT_MSOD,
    ENFORCEMENT_NONE,
    SimulationConfig,
    SimulationError,
    run_paired_simulation,
)

SMALL = SimulationConfig(
    seed=11, n_staff=12, n_branches=2, n_periods=3, actions_per_staff_period=3
)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        SimulationConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_staff": 1},
            {"n_branches": 0},
            {"n_periods": 0},
            {"actions_per_staff_period": 0},
            {"promotion_rate": 1.5},
            {"promotion_rate": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            SimulationConfig(**kwargs)

    def test_unknown_enforcement_rejected(self):
        with pytest.raises(SimulationError):
            BankSimulation(SMALL, enforcement="hope")


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        first = BankSimulation(SMALL, ENFORCEMENT_MSOD).run()
        second = BankSimulation(SMALL, ENFORCEMENT_MSOD).run()
        assert first.decisions == second.decisions
        assert first.msod_denials == second.msod_denials
        assert [s.grants for s in first.periods] == [
            s.grants for s in second.periods
        ]

    def test_different_seed_differs(self):
        other = SimulationConfig(
            seed=12, n_staff=12, n_branches=2, n_periods=3,
            actions_per_staff_period=3,
        )
        first = BankSimulation(SMALL, ENFORCEMENT_MSOD).run()
        second = BankSimulation(other, ENFORCEMENT_MSOD).run()
        # Same shape, (almost certainly) different denial pattern.
        assert first.decisions == second.decisions


class TestEnforcementEffect:
    def test_msod_prevents_every_separation_failure(self):
        enforced, unenforced = run_paired_simulation(SMALL)
        assert enforced.separation_failures == 0
        assert enforced.msod_denials > 0
        assert unenforced.separation_failures > 0
        assert unenforced.msod_denials == 0

    def test_both_runs_see_identical_workload(self):
        enforced, unenforced = run_paired_simulation(SMALL)
        assert enforced.decisions == unenforced.decisions

    def test_rbac_layer_never_denies_well_formed_duties(self):
        report = BankSimulation(SMALL, ENFORCEMENT_MSOD).run()
        assert all(stats.rbac_denials == 0 for stats in report.periods)

    def test_periods_are_isolated_by_commit_audit(self):
        """The retained ADI is flushed at each period's CommitAudit, so
        it does not accumulate across the run."""
        simulation = BankSimulation(SMALL, ENFORCEMENT_MSOD)
        simulation.run()
        assert simulation.pdp.retained_adi.count() == 0

    def test_report_accounting_consistent(self):
        report = BankSimulation(SMALL, ENFORCEMENT_MSOD).run()
        for stats in report.periods:
            assert stats.decisions == (
                stats.grants + stats.msod_denials + stats.rbac_denials
            )
        assert report.decisions == sum(s.decisions for s in report.periods)

    def test_zero_promotions_zero_conflicts(self):
        config = SimulationConfig(
            seed=11, n_staff=12, n_branches=2, n_periods=3,
            actions_per_staff_period=3, promotion_rate=0.0,
        )
        enforced, unenforced = run_paired_simulation(config)
        assert enforced.msod_denials == 0
        assert unenforced.separation_failures == 0

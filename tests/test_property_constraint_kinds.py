"""Differential properties for the pluggable constraint kinds.

Mirrors ``test_property_store_equivalence``: MMCD decision streams must
be bit-identical across the in-memory, SQLite and tiered backends, and
identical whether or not the engine is traced.  Also property-tests the
``repr`` round trip that embeds constraints in violation payloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MMEP,
    MMER,
    MODE_LITERAL,
    MODE_STRICT,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Privilege,
    Role,
    SQLiteRetainedADIStore,
    TieredADIStore,
    store_digest,
)
from repro.core.constraints import MMCD, AdminBoundary
from repro.obs.trace import DecisionTracer
from repro.xmlpolicy.dsl import parse_constraint_repr

_AUDITOR = Role("employee", "Auditor")
_CLERK = Role("employee", "Clerk")

_REVIEW = Privilege("review", "filing://annual")
_AMEND = Privilege("amend", "filing://annual")
_SIGNOFF = Privilege("signoff", "filing://annual")
_APPROVE = Privilege("approve", "filing://annual")
_BROWSE = Privilege("browse", "docs://public")

_OPS = (_REVIEW, _AMEND, _SIGNOFF, _APPROVE, _BROWSE)


def _policy_set() -> MSoDPolicySet:
    """MMCD binding plus a four-eyes MMEP over overlapping scopes."""
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Filing=*, Case=!"),
                constraints=[MMCD([_REVIEW, _AMEND, _SIGNOFF])],
                policy_id="p-binding",
            ),
            MSoDPolicy(
                ContextName.parse("Filing=!, Case=!"),
                mmeps=[MMEP([_SIGNOFF, _APPROVE], 2)],
                policy_id="p-four-eyes",
            ),
        ]
    )


_streams = st.lists(
    st.tuples(
        st.sampled_from(["alice", "bob", "carol", "dave"]),
        st.sampled_from(_OPS),
        st.sampled_from(["f1", "f2"]),
        st.sampled_from(["c1", "c2", "c3"]),
    ),
    min_size=1,
    max_size=40,
)


def _decision_key(decision):
    return (
        decision.effect,
        decision.reason,
        decision.matched_policy_ids,
        decision.records_added,
    )


def _requests(stream):
    for index, (user, privilege, filing, case) in enumerate(stream):
        yield DecisionRequest(
            user_id=user,
            roles=(_AUDITOR, _CLERK),
            operation=privilege.operation,
            target=privilege.target,
            context_instance=ContextName.parse(
                f"Filing={filing}, Case={case}"
            ),
            timestamp=float(index),
            request_id=f"r{index}",
        )


def _run_stream(mode, stream):
    memory = InMemoryRetainedADIStore()
    sqlite_store = SQLiteRetainedADIStore(":memory:")
    tiered = TieredADIStore(InMemoryRetainedADIStore(), hot_users=2, shards=2)
    policy_set = _policy_set()
    engines = [
        MSoDEngine(policy_set, memory, mode=mode),
        MSoDEngine(policy_set, sqlite_store, mode=mode),
        MSoDEngine(policy_set, tiered, mode=mode),
    ]
    try:
        for index, request in enumerate(_requests(stream)):
            keys = {
                _decision_key(engine.check(request)) for engine in engines
            }
            assert len(keys) == 1, f"decision diverged at step {index}"
            digests = {
                store_digest(store) for store in (memory, sqlite_store, tiered)
            }
            assert len(digests) == 1, f"store contents diverged at {index}"
    finally:
        sqlite_store.close()


@given(_streams)
@settings(max_examples=30, deadline=None)
def test_mmcd_engines_agree_across_backends_strict(stream):
    _run_stream(MODE_STRICT, stream)


@given(_streams)
@settings(max_examples=20, deadline=None)
def test_mmcd_engines_agree_across_backends_literal(stream):
    _run_stream(MODE_LITERAL, stream)


@given(_streams)
@settings(max_examples=20, deadline=None)
def test_traced_engine_decides_identically(stream):
    """Tracing is observational: it must never perturb a decision."""
    plain_store = InMemoryRetainedADIStore()
    traced_store = InMemoryRetainedADIStore()
    plain = MSoDEngine(_policy_set(), plain_store)
    traced = MSoDEngine(
        _policy_set(), traced_store, tracer=DecisionTracer()
    )
    for index, request in enumerate(_requests(stream)):
        assert _decision_key(plain.check(request)) == _decision_key(
            traced.check(request)
        ), f"tracing changed the decision at step {index}"
    assert store_digest(plain_store) == store_digest(traced_store)


_token = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789",
    min_size=1,
    max_size=8,
)
_privileges = st.builds(
    Privilege, _token, _token.map(lambda t: f"svc://{t}")
)
_roles = st.builds(Role, _token, _token)


def _distinct(items):
    return len(set(items)) == len(items)


_constraints = st.one_of(
    st.builds(
        MMER,
        st.lists(_roles, min_size=2, max_size=5, unique=True),
        st.just(2),
    ),
    st.builds(
        MMEP,
        st.lists(_privileges, min_size=2, max_size=5),
        st.just(2),
    ),
    st.builds(
        MMCD,
        st.lists(_privileges, min_size=2, max_size=5).filter(_distinct),
    ),
    st.builds(
        AdminBoundary,
        _token,
        st.lists(_privileges, min_size=1, max_size=4).filter(_distinct),
    ),
)


@given(_constraints)
@settings(max_examples=200, deadline=None)
def test_constraint_repr_round_trips(constraint):
    assert parse_constraint_repr(repr(constraint)) == constraint

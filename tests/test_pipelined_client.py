"""Behavior tests for the pipelined v2 clients.

Covers what the protocol-level tests cannot: negotiation against live
and downlevel servers, the auto-fallback memory, batch coalescing under
concurrency, the post-send no-replay discipline on the pipelined path,
the async client, and the wire perf counters surfacing in both the
``metrics`` verb and the Prometheus exposition.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.client import (
    AsyncRemotePDP,
    PDPUnavailableError,
    RemotePDP,
)
from repro.core import (
    MMER,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
)
from repro.errors import PDPConnectError, ProtocolError
from repro.obs import parse_exposition
from repro.perf import PerfRecorder
from repro.server import AuthorizationService, ServerThread, protocol

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")

FAST = dict(timeout=2.0, backoff_base=0.001, backoff_cap=0.002)


def make_service(n_shards=2, **kwargs):
    policy_set = MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                policy_id="bank",
            )
        ]
    )
    engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
    return AuthorizationService(engine, n_shards=n_shards, **kwargs)


def make_request(user, role, timestamp=1.0):
    operation, target = (
        ("handleCash", "till://1") if role == TELLER else ("auditBooks", "l://1")
    )
    return DecisionRequest(
        user_id=user,
        roles=(role,),
        operation=operation,
        target=target,
        context_instance=ContextName.parse("Branch=York, Period=P1"),
        timestamp=timestamp,
    )


class V1OnlyServer:
    """A downlevel JSON-lines server: ``hello`` is an unknown op.

    Mimics a pre-v2 deployment — every frame is answered in v1, and the
    negotiation frame gets the same protocol error an old server's
    unknown-op path would produce.  Decide frames are answered by a
    real engine so the fallback leg can be checked for correctness.
    """

    def __init__(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Branch=*, Period=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="bank",
                )
            ]
        )
        self._engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        self._lock = threading.Lock()
        self.hello_frames = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._accepting = True
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self):
        while self._accepting:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn):
        stream = conn.makefile("rb")
        try:
            while True:
                line = stream.readline()
                if not line:
                    return
                frame = json.loads(line)
                if frame.get("op") == protocol.OP_HELLO:
                    with self._lock:
                        self.hello_frames += 1
                    reply = protocol.error_frame(
                        frame["id"],
                        protocol.ERR_PROTOCOL,
                        "unknown op 'hello'",
                    )
                elif frame.get("op") == protocol.OP_DECIDE:
                    with self._lock:
                        decision = self._engine.check(
                            protocol.request_from_wire(frame["request"])
                        )
                    reply = protocol.response_frame(
                        frame["id"],
                        protocol.OP_DECIDE,
                        "decision",
                        protocol.decision_to_wire(decision),
                    )
                else:
                    reply = protocol.error_frame(
                        frame["id"], protocol.ERR_PROTOCOL, "unknown op"
                    )
                conn.sendall(json.dumps(reply).encode() + b"\n")
        except OSError:
            pass
        finally:
            conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._accepting = False
        try:
            self._sock.close()
        except OSError:
            pass


class DieAfterBatchServer:
    """Upgrades to v2, swallows one decide-batch frame, then drops dead.

    The pipelined client has sent the batch when the connection dies,
    so the only correct outcome is ``PDPUnavailableError`` with no
    replay — this stub counts every batch frame it ever receives so a
    replay (on this or any later connection) is visible.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.batch_frames = 0
        self.connections = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._accepting = True
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self):
        while self._accepting:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with self._lock:
                self.connections += 1
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn):
        stream = conn.makefile("rb")
        try:
            line = stream.readline()
            if not line:
                return
            frame = json.loads(line)
            if frame.get("op") != protocol.OP_HELLO:
                return
            reply = protocol.response_frame(
                frame["id"], protocol.OP_HELLO, "body", {"version": 2}
            )
            conn.sendall(json.dumps(reply).encode() + b"\n")
            header = stream.read(protocol.V2_HEADER_BYTES)
            if len(header) != protocol.V2_HEADER_BYTES:
                return
            payload = stream.read(protocol.v2_payload_length(header))
            decoded = protocol.decode_frame_v2(payload)
            if decoded.get("op") == protocol.OP_DECIDE_BATCH:
                with self._lock:
                    self.batch_frames += 1
            # Close without answering: the batch is sent, now ambiguous.
        except (OSError, ProtocolError):
            pass
        finally:
            conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._accepting = False
        try:
            self._sock.close()
        except OSError:
            pass


class TestPipelinedDecides:
    def test_concurrent_decides_coalesce_and_stay_correct(self):
        """Many threads through one pipelined connection: every user's
        duty sequence resolves exactly as in process, and the client's
        batch-size accounting covers every call."""
        service = make_service(n_shards=4, batch_max=16)
        perf = PerfRecorder()
        n_users = 12
        with ServerThread(service) as server:
            with RemotePDP(
                server.host,
                server.port,
                timeout=10.0,
                protocol_version="v2",
                perf=perf,
            ) as pdp:
                results = {}
                errors = []

                def client(user):
                    try:
                        results[user] = (
                            pdp.decide(make_request(user, TELLER, 1.0)),
                            pdp.decide(make_request(user, AUDITOR, 2.0)),
                        )
                    except Exception as exc:
                        errors.append(exc)

                threads = [
                    threading.Thread(target=client, args=(f"u{i}",))
                    for i in range(n_users)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30)
                assert not errors, errors
                assert pdp.negotiated_protocol == 2

        # Per-user MSoD semantics survived batching and reordering:
        # first duty granted, mutually exclusive duty then denied.
        for user in (f"u{i}" for i in range(n_users)):
            first, second = results[user]
            assert first.granted
            assert second.denied

        counters = perf.counters()
        assert counters["client.calls"] == 2 * n_users
        sizes = perf.sizes()
        batch_sizes = sizes["client.batch_size"]
        # Every decide travelled in exactly one batch entry, and the
        # frame count never exceeds the call count.
        assert batch_sizes.total == 2 * n_users
        assert 1 <= batch_sizes.count <= 2 * n_users
        assert counters["client.frames_out"] == batch_sizes.count

    def test_async_pipelined_decides(self):
        service = make_service(n_shards=4)
        with ServerThread(service) as server:

            async def run():
                async with AsyncRemotePDP(
                    server.host,
                    server.port,
                    timeout=10.0,
                    protocol_version="v2",
                ) as pdp:
                    firsts = await asyncio.gather(
                        *(
                            pdp.decide(make_request(f"a{i}", TELLER, 1.0))
                            for i in range(10)
                        )
                    )
                    seconds = await asyncio.gather(
                        *(
                            pdp.decide(make_request(f"a{i}", AUDITOR, 2.0))
                            for i in range(10)
                        )
                    )
                    assert pdp.negotiated_protocol == 2
                    return firsts, seconds

            firsts, seconds = asyncio.run(run())
        assert all(d.granted for d in firsts)
        assert all(d.denied for d in seconds)


class TestNegotiationFallback:
    def test_auto_falls_back_to_v1_and_remembers(self):
        with V1OnlyServer() as server:
            with RemotePDP(
                "127.0.0.1", server.port, protocol_version="auto", **FAST
            ) as pdp:
                first = pdp.decide(make_request("fb", TELLER, 1.0))
                second = pdp.decide(make_request("fb", AUDITOR, 2.0))
                assert first.granted
                assert second.denied
                assert pdp.negotiated_protocol == 1
            # The downgrade is remembered: one hello, not one per call.
            assert server.hello_frames == 1

    def test_forced_v2_against_v1_only_server_raises(self):
        with V1OnlyServer() as server:
            with RemotePDP(
                "127.0.0.1", server.port, protocol_version="v2", **FAST
            ) as pdp:
                with pytest.raises(ProtocolError):
                    pdp.decide(make_request("fx", TELLER, 1.0))

    def test_pipelined_connect_failure_is_retriable_kind(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        with RemotePDP(
            "127.0.0.1", port, protocol_version="v2", max_retries=1, **FAST
        ) as pdp:
            with pytest.raises(PDPConnectError):
                pdp.decide(make_request("cf", TELLER, 1.0))


class TestPostSendDiscipline:
    def test_batch_sent_then_death_is_unavailable_and_never_replayed(self):
        with DieAfterBatchServer() as server:
            with RemotePDP(
                "127.0.0.1",
                server.port,
                protocol_version="v2",
                max_retries=3,
                **FAST,
            ) as pdp:
                with pytest.raises(PDPUnavailableError) as excinfo:
                    pdp.decide(make_request("ns", TELLER, 1.0))
                # Ambiguous loss, not a pre-send connect failure: the
                # retriable subclass must NOT be what surfaced.
                assert not isinstance(excinfo.value, PDPConnectError)
            time.sleep(0.05)  # a replay would need a new connection
            assert server.batch_frames == 1
            assert server.connections == 1


class TestWireMetrics:
    def test_wire_counters_in_metrics_verb_and_exposition(self):
        perf = PerfRecorder()
        service = make_service(n_shards=2, perf=perf)
        with ServerThread(service) as server:
            with RemotePDP(
                server.host, server.port, timeout=10.0, protocol_version="v2"
            ) as pdp:
                for index in range(10):
                    pdp.decide(make_request(f"m{index}", TELLER, 1.0))
                body = pdp.metrics()
                text = pdp.metrics_text()

        snapshot = body["perf"]
        assert snapshot["counters"]["wire.frames_in"] >= 10
        assert snapshot["counters"]["wire.bytes_in"] > 0
        assert snapshot["counters"]["wire.bytes_out"] > 0
        assert snapshot["sizes"]["wire.batch_size"]["count"] >= 1
        assert snapshot["sizes"]["wire.batch_size"]["total_s"] == 10

        samples = parse_exposition(text)
        names = {name for name, _, _ in samples}
        assert "repro_wire_bytes_in_total" in names
        assert "repro_wire_bytes_out_total" in names
        assert "repro_wire_batch_size_bucket" in names
        assert "repro_wire_batch_size_count" in names

    def test_gather_window_knob(self):
        service = make_service(n_shards=2, gather_window=0.0015)
        assert service.gather_window == 0.0015
        with pytest.raises(ValueError):
            make_service(n_shards=2, gather_window=-0.001)
        # Default is adaptive: scaled to the shard count, capped.
        assert make_service(n_shards=1).gather_window <= 0.002
        assert (
            make_service(n_shards=2).gather_window
            >= make_service(n_shards=1).gather_window
        )

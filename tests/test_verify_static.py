"""Tests for the structured static policy verifier (pipeline stage 1)."""

import pytest

from repro.core import (
    MMEP,
    MMER,
    ContextName,
    MSoDPolicy,
    MSoDPolicySet,
    Privilege,
    Role,
    Step,
)
from repro.permis import PermisPolicyBuilder
from repro.rbac.constraints import SsdConstraint
from repro.verify import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    VerifyFinding,
    VerifyReport,
    analyze_policy_set,
    render_findings,
)
from repro.verify.static import (
    CONSTRAINT_DUPLICATE,
    FIRST_STEP_UNGRANTABLE,
    LAST_STEP_UNGRANTABLE,
    LIFECYCLE_NO_LAST_STEP,
    LIFECYCLE_SELF_TERMINATING,
    MMEP_DEAD_PRIVILEGES,
    MMEP_REDUNDANT,
    MMEP_UNSATISFIABLE,
    MMER_COVERED_BY_SSD,
    MMER_DEAD_ROLES,
    MMER_REDUNDANT,
    MMER_UNSATISFIABLE,
    POLICY_DUPLICATE,
    RBAC_UNREACHABLE_RULE,
    SCOPE_OVERLAP,
    SCOPE_SHADOWED,
    SCOPE_UNIVERSAL,
)
from repro.xmlpolicy import bank_policy_set, combined_policy_set, parse_policy_set
from repro.xmlpolicy.examples import (
    BANK_POLICY_XML,
    COMBINED_POLICY_XML,
    TAX_REFUND_POLICY_XML,
)

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")
GHOST = Role("employee", "Ghost")

HANDLE_CASH = Privilege("handleCash", "till://main")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://main")
COMMIT_AUDIT = Privilege("CommitAudit", "http://audit.location.com/audit")
PHANTOM = Privilege("phantomOp", "nowhere://x")

SOA = "cn=soa,o=bank,c=gb"

CTX = ContextName.parse("Branch=*, Period=!")


def policy(policy_id="p", context=CTX, **kwargs):
    return MSoDPolicy(context, policy_id=policy_id, **kwargs)


def codes(report):
    return [finding.code for finding in report.findings]


def errors(report):
    return [f.code for f in report.findings if f.severity == SEVERITY_ERROR]


# ----------------------------------------------------------------------
class TestExamplePoliciesAreClean:
    """Every shipped example must pass the verifier error-free."""

    @pytest.mark.parametrize(
        "xml",
        [BANK_POLICY_XML, TAX_REFUND_POLICY_XML, COMBINED_POLICY_XML],
        ids=["bank", "tax-refund", "combined"],
    )
    def test_example_xml_has_no_errors(self, xml):
        report = analyze_policy_set(parse_policy_set(xml))
        assert not errors(report), render_findings(report)

    @pytest.mark.parametrize(
        "policy_set",
        [bank_policy_set(), combined_policy_set()],
        ids=["bank", "combined"],
    )
    def test_builtin_sets_have_no_errors(self, policy_set):
        report = analyze_policy_set(policy_set)
        assert not errors(report), render_findings(report)

    def test_workload_set_has_no_errors(self):
        from repro.workload import bank_policy_set as workload_set

        assert not errors(analyze_policy_set(workload_set()))

    def test_combined_set_with_healthy_permis_companion(self):
        permis = (
            PermisPolicyBuilder()
            .allow_assignment(
                SOA, [TELLER, AUDITOR, CLERK, MANAGER], "o=bank,c=gb"
            )
            .grant(TELLER, [HANDLE_CASH])
            .grant(AUDITOR, [AUDIT_BOOKS, COMMIT_AUDIT])
            .grant(
                CLERK,
                [
                    Privilege("prepareCheck", "http://www.myTaxOffice.com/Check"),
                    Privilege("confirmCheck", "http://secret.location.com/audit"),
                ],
            )
            .grant(
                MANAGER,
                [
                    Privilege(
                        "approve/disapproveCheck",
                        "http://www.myTaxOffice.com/Check",
                    ),
                    Privilege(
                        "combineResults", "http://secret.location.com/results"
                    ),
                ],
            )
            .with_msod(combined_policy_set())
            .build()
        )
        report = analyze_policy_set(combined_policy_set(), permis=permis)
        assert not errors(report), render_findings(report)


# ----------------------------------------------------------------------
class TestBareSetFindings:
    def test_duplicate_constraint_is_error(self):
        # Same MMER twice, modulo role ordering.
        report = analyze_policy_set(
            MSoDPolicySet(
                [
                    policy(
                        mmers=[
                            MMER([TELLER, AUDITOR], 2),
                            MMER([AUDITOR, TELLER], 2),
                        ]
                    )
                ]
            )
        )
        assert CONSTRAINT_DUPLICATE in errors(report)

    def test_duplicate_policy_is_error(self):
        base = dict(mmers=[MMER([TELLER, AUDITOR], 2)])
        report = analyze_policy_set(
            MSoDPolicySet(
                [policy(policy_id="a", **base), policy(policy_id="b", **base)]
            )
        )
        assert POLICY_DUPLICATE in errors(report)
        finding = next(
            f for f in report.findings if f.code == POLICY_DUPLICATE
        )
        assert finding.policy_id == "b"
        assert not report.ok

    def test_redundant_mmer_is_warning(self):
        report = analyze_policy_set(
            MSoDPolicySet(
                [
                    policy(
                        mmers=[
                            # Implied: violating it (holding both) always
                            # violates the wider 2-of-{T,A,C} first.
                            MMER([TELLER, AUDITOR], 2),
                            MMER([TELLER, AUDITOR, CLERK], 2),
                        ]
                    )
                ]
            )
        )
        assert MMER_REDUNDANT in codes(report)
        assert report.ok  # warnings do not block deployment

    def test_redundant_mmep_is_warning(self):
        report = analyze_policy_set(
            MSoDPolicySet(
                [
                    policy(
                        mmeps=[
                            MMEP([HANDLE_CASH, AUDIT_BOOKS], 2),
                            MMEP([HANDLE_CASH, AUDIT_BOOKS, COMMIT_AUDIT], 2),
                        ]
                    )
                ]
            )
        )
        assert MMEP_REDUNDANT in codes(report)

    def test_missing_last_step_is_growth_warning(self):
        report = analyze_policy_set(
            MSoDPolicySet([policy(mmers=[MMER([TELLER, AUDITOR], 2)])])
        )
        assert LIFECYCLE_NO_LAST_STEP in codes(report)

    def test_self_terminating_lifecycle_is_warning(self):
        step = Step("CommitAudit", "http://audit.location.com/audit")
        report = analyze_policy_set(
            MSoDPolicySet(
                [
                    policy(
                        first_step=step,
                        last_step=step,
                        mmers=[MMER([TELLER, AUDITOR], 2)],
                    )
                ]
            )
        )
        assert LIFECYCLE_SELF_TERMINATING in codes(report)

    def test_universal_scope_is_info(self):
        report = analyze_policy_set(
            MSoDPolicySet(
                [
                    policy(
                        context=ContextName.root(),
                        mmers=[MMER([TELLER, AUDITOR], 2)],
                    )
                ]
            )
        )
        finding = next(
            f for f in report.findings if f.code == SCOPE_UNIVERSAL
        )
        assert finding.severity == SEVERITY_INFO

    def test_equal_scopes_with_different_constraints_overlap(self):
        report = analyze_policy_set(
            MSoDPolicySet(
                [
                    policy(policy_id="a", mmers=[MMER([TELLER, AUDITOR], 2)]),
                    policy(policy_id="b", mmers=[MMER([TELLER, CLERK], 2)]),
                ]
            )
        )
        assert SCOPE_OVERLAP in codes(report)

    def test_subordinate_scope_under_stricter_ancestor_is_shadowed(self):
        report = analyze_policy_set(
            MSoDPolicySet(
                [
                    policy(
                        policy_id="wide",
                        context=ContextName.parse("Branch=*, Period=!"),
                        mmers=[MMER([TELLER, AUDITOR], 2)],
                    ),
                    policy(
                        policy_id="narrow",
                        context=ContextName.parse("Branch=York, Period=!"),
                        mmers=[MMER([TELLER, AUDITOR], 2)],
                    ),
                ]
            )
        )
        shadowed = [
            f for f in report.findings if f.code == SCOPE_SHADOWED
        ]
        assert [f.policy_id for f in shadowed] == ["narrow"]
        assert shadowed[0].severity == SEVERITY_WARNING


# ----------------------------------------------------------------------
class TestPermisBackedFindings:
    def permis(self, assign=(TELLER, AUDITOR), grants=None):
        builder = PermisPolicyBuilder().allow_assignment(
            SOA, list(assign), "o=bank,c=gb"
        )
        for role, privileges in (grants or {}).items():
            builder = builder.grant(role, privileges)
        return builder.build()

    def test_unsatisfiable_mmer_is_error(self):
        report = analyze_policy_set(
            MSoDPolicySet([policy(mmers=[MMER([TELLER, AUDITOR], 2)])]),
            permis=self.permis(assign=(TELLER,)),
        )
        assert MMER_UNSATISFIABLE in errors(report)

    def test_dead_mmer_role_is_warning_when_still_satisfiable(self):
        report = analyze_policy_set(
            MSoDPolicySet(
                [policy(mmers=[MMER([TELLER, AUDITOR, GHOST], 2)])]
            ),
            permis=self.permis(),
        )
        assert MMER_DEAD_ROLES in codes(report)
        assert MMER_UNSATISFIABLE not in codes(report)

    def test_hierarchy_makes_roles_assignable_transitively(self):
        # Only the top role is directly assignable; the MMER roles are
        # two and three hops down the hierarchy.
        director = Role("employee", "Director")
        permis = (
            PermisPolicyBuilder()
            .senior_to(director, MANAGER)
            .senior_to(MANAGER, TELLER)
            .senior_to(TELLER, AUDITOR)
            .allow_assignment(SOA, [director], "o=bank,c=gb")
            .build()
        )
        report = analyze_policy_set(
            MSoDPolicySet([policy(mmers=[MMER([TELLER, AUDITOR], 2)])]),
            permis=permis,
        )
        assert MMER_UNSATISFIABLE not in codes(report)
        assert MMER_DEAD_ROLES not in codes(report)

    def test_unsatisfiable_mmep_is_error(self):
        report = analyze_policy_set(
            MSoDPolicySet(
                [policy(mmeps=[MMEP([HANDLE_CASH, AUDIT_BOOKS], 2)])]
            ),
            permis=self.permis(grants={TELLER: [HANDLE_CASH]}),
        )
        assert MMEP_UNSATISFIABLE in errors(report)

    def test_dead_mmep_privilege_is_warning_when_still_satisfiable(self):
        report = analyze_policy_set(
            MSoDPolicySet(
                [
                    policy(
                        mmeps=[
                            MMEP([HANDLE_CASH, AUDIT_BOOKS, PHANTOM], 2)
                        ]
                    )
                ]
            ),
            permis=self.permis(
                grants={TELLER: [HANDLE_CASH], AUDITOR: [AUDIT_BOOKS]}
            ),
        )
        assert MMEP_DEAD_PRIVILEGES in codes(report)
        assert MMEP_UNSATISFIABLE not in codes(report)

    def test_ungrantable_first_and_last_steps_are_errors(self):
        report = analyze_policy_set(
            MSoDPolicySet(
                [
                    policy(
                        first_step=Step("phantomOp", "nowhere://x"),
                        last_step=Step("phantomEnd", "nowhere://y"),
                        mmers=[MMER([TELLER, AUDITOR], 2)],
                    )
                ]
            ),
            permis=self.permis(
                grants={TELLER: [HANDLE_CASH], AUDITOR: [AUDIT_BOOKS]}
            ),
        )
        assert FIRST_STEP_UNGRANTABLE in errors(report)
        assert LAST_STEP_UNGRANTABLE in errors(report)

    def test_unreachable_access_rule_via_grandparent_not_flagged(self):
        # Satellite regression: assignability must close over the
        # *transitive* hierarchy, not one-hop seniors.
        director = Role("employee", "Director")
        permis = (
            PermisPolicyBuilder()
            .senior_to(director, MANAGER)
            .senior_to(MANAGER, TELLER)
            .allow_assignment(SOA, [director], "o=bank,c=gb")
            .grant(TELLER, [HANDLE_CASH])
            .build()
        )
        report = analyze_policy_set(MSoDPolicySet([]), permis=permis)
        assert RBAC_UNREACHABLE_RULE not in codes(report)

    def test_truly_unreachable_access_rule_is_flagged(self):
        permis = (
            PermisPolicyBuilder()
            .allow_assignment(SOA, [TELLER], "o=bank,c=gb")
            .grant(GHOST, [AUDIT_BOOKS])
            .build()
        )
        report = analyze_policy_set(MSoDPolicySet([]), permis=permis)
        assert RBAC_UNREACHABLE_RULE in codes(report)


# ----------------------------------------------------------------------
class TestSsdCoverage:
    def test_mmer_covered_by_static_ssd_is_warning(self):
        ssd = SsdConstraint(
            "bank-ssd", [str(TELLER), str(AUDITOR)], 2
        )
        report = analyze_policy_set(
            MSoDPolicySet([policy(mmers=[MMER([TELLER, AUDITOR], 2)])]),
            ssd=[ssd],
        )
        assert MMER_COVERED_BY_SSD in codes(report)

    def test_wider_mmer_not_covered(self):
        ssd = SsdConstraint(
            "bank-ssd", [str(TELLER), str(AUDITOR)], 2
        )
        report = analyze_policy_set(
            MSoDPolicySet(
                [policy(mmers=[MMER([TELLER, AUDITOR, CLERK], 3)])]
            ),
            ssd=[ssd],
        )
        assert MMER_COVERED_BY_SSD not in codes(report)


# ----------------------------------------------------------------------
class TestReportMechanics:
    def report(self):
        base = dict(mmers=[MMER([TELLER, AUDITOR], 2)])
        return analyze_policy_set(
            MSoDPolicySet(
                [policy(policy_id="a", **base), policy(policy_id="b", **base)]
            )
        )

    def test_counts_by_severity(self):
        counts = self.report().counts_by_severity()
        assert counts[SEVERITY_ERROR] == 1
        assert counts[SEVERITY_WARNING] == 2  # two growth warnings

    def test_round_trip(self):
        report = self.report()
        clone = VerifyReport.from_dict(report.to_dict())
        assert clone == report
        assert clone.to_dict() == report.to_dict()

    def test_render_findings_are_strings(self):
        lines = render_findings(self.report())
        assert lines
        assert all(isinstance(line, str) for line in lines)
        assert any(POLICY_DUPLICATE in line for line in lines)

    def test_finding_str_mentions_severity_and_code(self):
        finding = VerifyFinding(
            POLICY_DUPLICATE, SEVERITY_ERROR, "p", "detail"
        )
        text = str(finding)
        assert SEVERITY_ERROR in text and POLICY_DUPLICATE in text

"""Property-based round-trip tests for the XML policy language."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import MMEP, MMER, Privilege, Role
from repro.core.context import ContextComponent, ContextName
from repro.core.policy import MSoDPolicy, MSoDPolicySet, Step
from repro.xmlpolicy import (
    parse_policy_set,
    validate_policy_document,
    write_policy_set,
)

_token = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    min_size=1,
    max_size=10,
)


@st.composite
def roles(draw):
    return Role(draw(_token), draw(_token))


@st.composite
def privileges(draw):
    return Privilege(draw(_token), "http://example.com/" + draw(_token))


@st.composite
def mmers(draw):
    role_list = draw(
        st.lists(roles(), min_size=2, max_size=5, unique_by=lambda r: (r.role_type, r.value))
    )
    cardinality = draw(st.integers(min_value=2, max_value=len(role_list)))
    return MMER(role_list, cardinality)


@st.composite
def mmeps(draw):
    privilege_list = draw(st.lists(privileges(), min_size=2, max_size=5))
    cardinality = draw(
        st.integers(min_value=2, max_value=len(privilege_list))
    )
    return MMEP(privilege_list, cardinality)


@st.composite
def policies(draw, index=0):
    depth = draw(st.integers(min_value=1, max_value=3))
    components = [
        ContextComponent(
            draw(_token) + str(position),
            draw(st.one_of(_token, st.just("*"), st.just("!"))),
        )
        for position in range(depth)
    ]
    context = ContextName(components)
    use_mmer = draw(st.booleans())
    first_step = draw(
        st.one_of(st.none(), st.builds(Step, _token, _token))
    )
    last_step = draw(
        st.one_of(st.none(), st.builds(Step, _token, _token))
    )
    return MSoDPolicy(
        business_context=context,
        mmers=[draw(mmers())] if use_mmer else [],
        mmeps=[] if use_mmer else [draw(mmeps())],
        first_step=first_step,
        last_step=last_step,
        policy_id=f"policy-{index}",
    )


@st.composite
def policy_sets(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    return MSoDPolicySet(
        [draw(policies(index=index)) for index in range(count)]
    )


@given(policy_sets())
@settings(max_examples=100, deadline=None)
def test_write_parse_round_trip(policy_set):
    xml = write_policy_set(policy_set)
    restored = parse_policy_set(xml)
    assert len(restored) == len(policy_set)
    for original, parsed in zip(policy_set, restored):
        assert parsed.business_context == original.business_context
        assert list(parsed.mmers) == list(original.mmers)
        assert list(parsed.mmeps) == list(original.mmeps)
        assert parsed.first_step == original.first_step
        assert parsed.last_step == original.last_step
        assert parsed.policy_id == original.policy_id


@given(policy_sets())
@settings(max_examples=100, deadline=None)
def test_written_documents_validate_cleanly(policy_set):
    xml = write_policy_set(policy_set)
    assert validate_policy_document(xml) == []


@given(policy_sets(), st.booleans())
@settings(max_examples=50, deadline=None)
def test_round_trip_is_idempotent(policy_set, pretty):
    once = write_policy_set(policy_set, pretty=pretty)
    twice = write_policy_set(parse_policy_set(once), pretty=pretty)
    assert once == twice

"""Property tests over the baseline-comparison harness.

For arbitrary seeded workloads, the paper's qualitative claims must hold
as invariants — they are not artefacts of one lucky seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AnsiDsdChecker,
    AnsiSsdChecker,
    AntiRoleChecker,
    MSoDChecker,
)
from repro.rbac import DsdConstraint, SsdConstraint
from repro.workload import (
    AUDITOR,
    BENIGN,
    CROSS_SESSION,
    FEDERATED_LINKED,
    FEDERATED_UNLINKED,
    OBJECT_COMPLETION,
    REPEATED_PRIVILEGE,
    SAME_SESSION,
    SINGLE_AUTHORITY,
    TELLER,
    ScenarioGenerator,
    run_comparison,
)
from repro.xmlpolicy import combined_policy_set

SSD = [SsdConstraint("ta", ["Teller", "Auditor"], 2)]
DSD = [DsdConstraint("ta", ["Teller", "Auditor"], 2)]


def _run(seed, per_class=3, benign=3):
    generator = ScenarioGenerator(seed=seed)
    scenarios = generator.mixed_stream(
        per_class=per_class, benign_per_class=benign
    )
    checkers = [
        MSoDChecker(combined_policy_set()),
        MSoDChecker(
            combined_policy_set(),
            linker=generator.identity_linker,
            name="linked",
        ),
        AnsiSsdChecker(SSD),
        AnsiDsdChecker(DSD),
        AntiRoleChecker([frozenset({TELLER, AUDITOR})]),
    ]
    reports = run_comparison(checkers, scenarios)
    return {report.checker_name: report for report in reports}


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_msod_claims_hold_for_any_seed(seed):
    reports = _run(seed)
    msod = reports["MSoD"]
    linked = reports["linked"]

    # MSoD: no false positives, full multi-session coverage.
    assert msod.false_positive_rate() == 0.0
    for label in (SAME_SESSION, SINGLE_AUTHORITY, CROSS_SESSION,
                  REPEATED_PRIVILEGE, OBJECT_COMPLETION):
        assert msod.detection_rate(label) == 1.0, label
    # Section 6: unlinked federation defeats MSoD; linking restores it.
    assert msod.detection_rate(FEDERATED_UNLINKED) == 0.0
    assert linked.detection_rate(FEDERATED_LINKED) == 1.0
    assert linked.false_positive_rate() == 0.0


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_each_ansi_point_catches_exactly_its_class(seed):
    reports = _run(seed)
    ssd = reports["ANSI SSD"]
    dsd = reports["ANSI DSD"]
    assert ssd.detection_rate(SINGLE_AUTHORITY) == 1.0
    assert ssd.detection_rate(CROSS_SESSION) == 0.0
    assert ssd.detection_rate(SAME_SESSION) == 0.0
    assert ssd.false_positive_rate() == 0.0
    assert dsd.detection_rate(SAME_SESSION) == 1.0
    assert dsd.detection_rate(CROSS_SESSION) == 0.0
    assert dsd.detection_rate(SINGLE_AUTHORITY) == 0.0
    assert dsd.false_positive_rate() == 0.0


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_linked_msod_blocks_superset_of_plain_msod(seed):
    """Identity linking only ever adds detections, never removes any."""
    generator = ScenarioGenerator(seed=seed)
    scenarios = generator.mixed_stream(per_class=3, benign_per_class=3)
    plain = MSoDChecker(combined_policy_set())
    linked = MSoDChecker(
        combined_policy_set(), linker=generator.identity_linker, name="linked"
    )
    plain_report, linked_report = run_comparison([plain, linked], scenarios)
    plain_blocked = {
        outcome.scenario.scenario_id
        for outcomes in plain_report.per_class.values()
        for outcome in outcomes
        if outcome.blocked
    }
    linked_blocked = {
        outcome.scenario.scenario_id
        for outcomes in linked_report.per_class.values()
        for outcome in outcomes
        if outcome.blocked
    }
    assert plain_blocked <= linked_blocked


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_anti_role_is_msod_with_false_positives(seed):
    """Anti-roles block every cross-session conflict MSoD blocks, plus
    benign cross-period work (the context-blindness the paper fixes)."""
    reports = _run(seed, per_class=4, benign=4)
    anti = reports["Anti-role"]
    assert anti.detection_rate(CROSS_SESSION) == 1.0
    assert anti.detection_rate(SINGLE_AUTHORITY) == 1.0
    assert anti.false_positive_rate() > 0.0

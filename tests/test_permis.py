"""Unit tests for the PERMIS subsystem (Section 5, Figure 4)."""

import pytest

from repro.core import ContextName, Privilege, Role
from repro.errors import CredentialError, DirectoryError
from repro.permis import (
    AttributeCredential,
    CredentialValidationService,
    LdapDirectory,
    PermisPDP,
    PermisPolicyBuilder,
    PrivilegeAllocator,
    TrustStore,
    dn_is_under,
    normalize_dn,
    sign_credential,
    verify_signature,
)
from repro.xmlpolicy import bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
MANAGER = Role("employee", "Manager")

HANDLE_CASH = Privilege("handleCash", "till://1")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://1")

SOA_DN = "cn=SOA,o=bank,c=gb"
ALICE = "cn=alice,o=bank,c=gb"
OUTSIDER = "cn=eve,o=other,c=gb"
KEY = b"soa-key"


@pytest.fixture
def directory():
    return LdapDirectory()


@pytest.fixture
def allocator(directory):
    return PrivilegeAllocator(SOA_DN, KEY, directory)


@pytest.fixture
def trust(allocator):
    store = TrustStore()
    store.trust(allocator.soa_dn, allocator.verification_key)
    return store


@pytest.fixture
def policy():
    return (
        PermisPolicyBuilder()
        .allow_assignment(SOA_DN, [TELLER, AUDITOR], "o=bank,c=gb")
        .grant(TELLER, [HANDLE_CASH])
        .grant(AUDITOR, [AUDIT_BOOKS])
        .with_msod(bank_policy_set())
        .build()
    )


@pytest.fixture
def cvs(policy, trust, directory):
    return CredentialValidationService(policy, trust, directory)


class TestDn:
    def test_normalize(self):
        assert normalize_dn(" CN = Alice , O=bank ,c=gb") == "cn=Alice,o=bank,c=gb"

    def test_bad_dn(self):
        with pytest.raises(DirectoryError):
            normalize_dn("not a dn")
        with pytest.raises(DirectoryError):
            normalize_dn("")

    def test_dn_is_under(self):
        assert dn_is_under(ALICE, "o=bank,c=gb")
        assert dn_is_under(ALICE, ALICE)
        assert not dn_is_under(OUTSIDER, "o=bank,c=gb")
        assert not dn_is_under("o=bank,c=gb", ALICE)


class TestDirectory:
    def test_add_get_delete(self, directory):
        directory.add_entry(ALICE)
        assert ALICE in directory
        directory.delete_entry(ALICE)
        assert ALICE not in directory

    def test_duplicate_entry_rejected(self, directory):
        directory.add_entry(ALICE)
        with pytest.raises(DirectoryError):
            directory.add_entry(ALICE)

    def test_attributes_multivalued(self, directory):
        entry = directory.add_entry(ALICE)
        entry.add_value("mail", "a@bank")
        entry.add_value("mail", "alice@bank")
        assert entry.values("mail") == ("a@bank", "alice@bank")
        entry.remove_value("mail", "a@bank")
        assert entry.values("mail") == ("alice@bank",)

    def test_search_scopes(self, directory):
        for dn in ("o=bank,c=gb", ALICE, "cn=x,ou=it,o=bank,c=gb"):
            directory.add_entry(dn)
        subtree = directory.search("o=bank,c=gb")
        assert len(subtree) == 3
        one = directory.search("o=bank,c=gb", scope="one")
        assert {entry.dn for entry in one} == {normalize_dn(ALICE)}
        base = directory.search("o=bank,c=gb", scope="base")
        assert len(base) == 1

    def test_search_filter(self, directory):
        entry = directory.add_entry(ALICE)
        entry.add_value("role", "teller")
        directory.add_entry("cn=bob,o=bank,c=gb")
        hits = directory.search("o=bank,c=gb", attribute="role", value="teller")
        assert [hit.dn for hit in hits] == [normalize_dn(ALICE)]

    def test_unknown_scope(self, directory):
        with pytest.raises(DirectoryError):
            directory.search("o=bank,c=gb", scope="galaxy")


class TestCredentials:
    def test_sign_and_verify(self):
        credential = AttributeCredential(ALICE, SOA_DN, (TELLER,), 0, 10)
        signed = sign_credential(credential, KEY)
        assert verify_signature(signed, KEY)
        assert not verify_signature(signed, b"wrong")
        assert not verify_signature(credential, KEY)  # unsigned

    def test_tampered_credential_fails(self):
        signed = sign_credential(
            AttributeCredential(ALICE, SOA_DN, (TELLER,), 0, 10), KEY
        )
        forged = signed.tampered(attributes=(AUDITOR,))
        assert not verify_signature(forged, KEY)

    def test_validity_window(self):
        credential = AttributeCredential(ALICE, SOA_DN, (TELLER,), 5, 10)
        assert credential.is_valid_at(5)
        assert credential.is_valid_at(10)
        assert not credential.is_valid_at(4.9)
        assert not credential.is_valid_at(10.1)

    def test_invalid_construction(self):
        with pytest.raises(CredentialError):
            AttributeCredential(ALICE, SOA_DN, (), 0, 10)
        with pytest.raises(CredentialError):
            AttributeCredential(ALICE, SOA_DN, (TELLER,), 10, 0)
        with pytest.raises(CredentialError):
            AttributeCredential(ALICE, SOA_DN, (TELLER,), 0, 10, encoding="jwt")

    def test_saml_encoding_supported(self):
        credential = AttributeCredential(
            ALICE, SOA_DN, (TELLER,), 0, 10, encoding="saml"
        )
        assert verify_signature(sign_credential(credential, KEY), KEY)

    def test_trust_store(self):
        store = TrustStore()
        store.trust(SOA_DN, KEY)
        assert store.is_trusted(SOA_DN)
        assert store.key_for(SOA_DN) == KEY
        store.revoke(SOA_DN)
        assert not store.is_trusted(SOA_DN)
        with pytest.raises(CredentialError):
            store.key_for(SOA_DN)


class TestAllocator:
    def test_issue_publishes_to_directory(self, allocator, directory):
        credential = allocator.issue(ALICE, [TELLER], 0, 10)
        assert credential.signature
        assert directory.credentials_of(normalize_dn(ALICE)) == (credential,)

    def test_revoke(self, allocator, directory):
        credential = allocator.issue(ALICE, [TELLER], 0, 10)
        allocator.revoke(credential)
        assert directory.credentials_of(normalize_dn(ALICE)) == ()
        with pytest.raises(CredentialError):
            allocator.revoke(credential)


class TestCVS:
    def test_valid_credential_yields_roles(self, cvs, allocator):
        allocator.issue(ALICE, [TELLER], 0, 10)
        result = cvs.validate(ALICE, at=5.0)
        assert result.valid_roles == {TELLER}
        assert result.all_valid

    def test_expired_credential_rejected(self, cvs, allocator):
        allocator.issue(ALICE, [TELLER], 0, 10)
        result = cvs.validate(ALICE, at=20.0)
        assert result.valid_roles == frozenset()
        assert "not valid at time" in result.rejections[0].reason

    def test_untrusted_issuer_rejected(self, policy, directory):
        rogue = PrivilegeAllocator("cn=rogue,o=bank,c=gb", b"rogue-key", directory)
        rogue.issue(ALICE, [TELLER], 0, 10)
        cvs = CredentialValidationService(policy, TrustStore(), directory)
        result = cvs.validate(ALICE, at=5.0)
        assert result.valid_roles == frozenset()
        assert "not a trusted SOA" in result.rejections[0].reason

    def test_tampered_signature_rejected(self, cvs, allocator):
        credential = allocator.issue(ALICE, [TELLER], 0, 10)
        forged = credential.tampered(attributes=(AUDITOR,))
        result = cvs.validate(ALICE, credentials=[forged], at=5.0)
        assert result.valid_roles == frozenset()
        assert "signature" in result.rejections[0].reason

    def test_holder_mismatch_rejected(self, cvs, allocator):
        credential = allocator.issue("cn=bob,o=bank,c=gb", [TELLER], 0, 10)
        result = cvs.validate(ALICE, credentials=[credential], at=5.0)
        assert result.valid_roles == frozenset()

    def test_role_outside_assignment_policy_rejected(self, cvs, allocator):
        """A trusted SOA asserting a role it may not assign is filtered
        per-role, keeping the roles it may assign."""
        credential = allocator.issue(ALICE, [TELLER, MANAGER], 0, 10)
        result = cvs.validate(ALICE, credentials=[credential], at=5.0)
        assert result.valid_roles == {TELLER}
        assert any(
            rejection.role == MANAGER for rejection in result.rejections
        )

    def test_subject_outside_domain_rejected(self, cvs, allocator):
        allocator.issue(OUTSIDER, [TELLER], 0, 10)
        result = cvs.validate(OUTSIDER, at=5.0)
        assert result.valid_roles == frozenset()

    def test_pull_mode_without_directory(self, policy, trust):
        cvs = CredentialValidationService(policy, trust, directory=None)
        result = cvs.validate(ALICE, at=5.0)
        assert result.valid_roles == frozenset()


class TestPermisPolicy:
    def test_hierarchy_inheritance(self):
        policy = (
            PermisPolicyBuilder()
            .senior_to(MANAGER, TELLER)
            .grant(TELLER, [HANDLE_CASH])
            .build()
        )
        assert policy.permits([MANAGER], HANDLE_CASH)
        assert not policy.permits([TELLER], AUDIT_BOOKS)

    def test_privileges_of(self, policy):
        assert policy.privileges_of([TELLER]) == {HANDLE_CASH}
        assert policy.privileges_of([TELLER, AUDITOR]) == {
            HANDLE_CASH,
            AUDIT_BOOKS,
        }

    def test_assignment_permitted(self, policy):
        assert policy.assignment_permitted(SOA_DN, ALICE, TELLER)
        assert not policy.assignment_permitted(SOA_DN, OUTSIDER, TELLER)
        assert not policy.assignment_permitted(SOA_DN, ALICE, MANAGER)
        assert not policy.assignment_permitted(
            "cn=rogue,o=bank,c=gb", ALICE, TELLER
        )


class TestPermisPDP:
    CTX = ContextName.parse("Branch=York, Period=2006")

    def test_full_pipeline_grant(self, policy, trust, directory, allocator):
        allocator.issue(ALICE, [TELLER], 0, 100)
        pdp = PermisPDP(policy, trust, directory)
        decision = pdp.decision(ALICE, "handleCash", "till://1", self.CTX, at=5.0)
        assert decision.granted

    def test_no_roles_denied(self, policy, trust, directory):
        pdp = PermisPDP(policy, trust, directory)
        decision = pdp.decision(ALICE, "handleCash", "till://1", self.CTX, at=5.0)
        assert decision.denied
        assert "no valid roles" in decision.reason

    def test_rbac_denies_unauthorized_operation(
        self, policy, trust, directory, allocator
    ):
        allocator.issue(ALICE, [TELLER], 0, 100)
        pdp = PermisPDP(policy, trust, directory)
        decision = pdp.decision(ALICE, "auditBooks", "ledger://1", self.CTX, at=5.0)
        assert decision.denied
        assert decision.reason.startswith("RBAC")

    def test_msod_denies_multi_session_conflict(
        self, policy, trust, directory, allocator
    ):
        allocator.issue(ALICE, [TELLER], 0, 100)
        pdp = PermisPDP(policy, trust, directory)
        assert pdp.decision(
            ALICE, "handleCash", "till://1", self.CTX, at=5.0
        ).granted
        # Alice is later also issued the auditor role (promotion).
        allocator.issue(ALICE, [AUDITOR], 0, 100)
        decision = pdp.decision(ALICE, "auditBooks", "ledger://1", self.CTX, at=50.0)
        assert decision.denied
        assert decision.violation is not None

    def test_push_mode_credentials(self, policy, trust, allocator):
        credential = allocator.issue(ALICE, [TELLER], 0, 100, publish=False)
        pdp = PermisPDP(policy, trust, directory=None)
        decision = pdp.decision(
            ALICE,
            "handleCash",
            "till://1",
            self.CTX,
            credentials=[credential],
            at=5.0,
        )
        assert decision.granted

    def test_management_port_controls_retained_adi(
        self, policy, trust, directory, allocator
    ):
        """Section 4.3: the retained ADI is an RBAC-protected target on
        the PDP's management port."""
        from repro.core import CONTROLLER_ROLE
        from repro.errors import AdminError

        allocator.issue(ALICE, [TELLER], 0, 100)
        pdp = PermisPDP(policy, trust, directory)
        pdp.decision(ALICE, "handleCash", "till://1", self.CTX, at=5.0)
        assert pdp.retained_adi.count() > 0
        port = pdp.management_port
        with pytest.raises(AdminError):
            port.purge_all([TELLER])  # an ordinary role may not manage
        outcome = port.purge_context([CONTROLLER_ROLE], self.CTX)
        assert outcome.affected > 0
        assert pdp.retained_adi.count() == 0

    def test_admin_events_are_audited(self, policy, trust, tmp_path):
        from repro.audit import AuditTrailManager, EVENT_ADMIN
        from repro.core import CONTROLLER_ROLE

        audit = AuditTrailManager(str(tmp_path), b"key")
        pdp = PermisPDP(policy, trust, audit=audit)
        outcome = pdp.management_port.purge_all([CONTROLLER_ROLE])
        pdp.log_admin_event(outcome.operation, outcome.detail, at=9.0)
        events = list(audit.events())
        assert events[-1].event_type == EVENT_ADMIN
        assert events[-1].payload["operation"] == "purgeAll"

    def test_decide_uses_prevalidated_roles(self, policy, trust):
        from repro.core import DecisionRequest

        pdp = PermisPDP(policy, trust)
        request = DecisionRequest(
            user_id=normalize_dn(ALICE),
            roles=(TELLER,),
            operation="handleCash",
            target="till://1",
            context_instance=self.CTX,
            timestamp=1.0,
        )
        assert pdp.decide(request).granted

"""Differential property tests: tiered == always-resident SQLite.

The tiered store answers the engine's history views from a bounded hot
layer that cycles users in and out of memory; the SQLite oracle keeps
everything resident.  These properties drive both behind full engines
with a deliberately tiny hot budget (``hot_users=2`` over more users
than that, so every example forces eviction/rehydration churn) through
randomized interleavings of decisions, purges and policy-epoch swaps,
and require bit-identical decision streams and identical final store
digests — the same gate ``benchmarks/bench_scale.py`` enforces at
10^6-user scale.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MMEP,
    MMER,
    ContextName,
    DecisionRequest,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Privilege,
    Role,
    SQLiteRetainedADIStore,
    TieredADIStore,
    store_digest,
)

_CLERK = Role("role", "Clerk")
_AUDITOR = Role("role", "Auditor")
_MANAGER = Role("role", "Manager")

_OPS = (
    ("issue", "PO"),
    ("approve", "PO"),
    ("pay", "Invoice"),
    ("browse", "Docs"),
)

_USERS = ["alice", "bob", "carol", "dave", "erin"]


def _policy_set() -> MSoDPolicySet:
    return MSoDPolicySet(
        [
            MSoDPolicy(
                business_context=ContextName.parse("Dept=*, Case=!"),
                mmers=[MMER([_CLERK, _AUDITOR], 2)],
                policy_id="p-mmer",
            ),
            MSoDPolicy(
                business_context=ContextName.parse("Dept=!"),
                mmeps=[
                    MMEP(
                        [Privilege("issue", "PO"), Privilege("approve", "PO")],
                        2,
                    )
                ],
                policy_id="p-mmep",
            ),
        ]
    )


def _swapped_policy_set() -> MSoDPolicySet:
    """A different epoch: one extra constraint over a disjoint context."""
    return MSoDPolicySet(
        list(_policy_set().policies)
        + [
            MSoDPolicy(
                business_context=ContextName.parse("Dept=zz-unused"),
                mmers=[MMER([_CLERK, _MANAGER], 2)],
                policy_id="p-epoch",
            )
        ]
    )


# An operation stream mixing decisions with the store-mutating and
# epoch-advancing operations the tiered layer must stay coherent under.
_decide = st.tuples(
    st.just("decide"),
    st.sampled_from(_USERS),
    st.sets(st.sampled_from([_CLERK, _AUDITOR, _MANAGER]), min_size=1, max_size=2),
    st.sampled_from(_OPS),
    st.sampled_from(["d1", "d2"]),
    st.sampled_from(["c1", "c2"]),
)
_purge_user = st.tuples(st.just("purge_user"), st.sampled_from(_USERS))
_purge_context = st.tuples(
    st.just("purge_context"),
    st.sampled_from(["Dept=d1", "Dept=d2", "Dept=*, Case=c1"]),
)
_purge_older = st.tuples(
    st.just("purge_older_than"), st.integers(min_value=0, max_value=30)
)
_swap = st.tuples(st.just("swap_policy"), st.booleans())

_operations = st.lists(
    st.one_of(_decide, _purge_user, _purge_context, _purge_older, _swap),
    min_size=1,
    max_size=40,
)


def _decision_key(decision):
    return (
        decision.effect,
        decision.reason,
        decision.matched_policy_ids,
        decision.records_added,
        decision.records_purged,
    )


@given(_operations, st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_tiered_matches_always_resident_sqlite(operations, hot_users):
    oracle_store = SQLiteRetainedADIStore(":memory:")
    warm = SQLiteRetainedADIStore(":memory:")
    hot_store = TieredADIStore(warm, hot_users=hot_users, shards=2)
    oracle = MSoDEngine(_policy_set(), oracle_store)
    engine = MSoDEngine(_policy_set(), hot_store)
    try:
        for index, operation in enumerate(operations):
            kind = operation[0]
            if kind == "decide":
                _, user, roles, op, dept, case = operation
                request = DecisionRequest(
                    user_id=user,
                    roles=tuple(sorted(roles, key=str)),
                    operation=op[0],
                    target=op[1],
                    context_instance=ContextName.parse(
                        f"Dept={dept}, Case={case}"
                    ),
                    timestamp=float(index),
                    request_id=f"r{index}",
                )
                expected = _decision_key(oracle.check(request))
                actual = _decision_key(engine.check(request))
                assert actual == expected, f"decision diverged at step {index}"
            elif kind == "purge_user":
                _, user = operation
                assert hot_store.purge_user(user) == oracle_store.purge_user(
                    user
                ), f"purge_user diverged at step {index}"
            elif kind == "purge_context":
                _, context_text = operation
                context = ContextName.parse(context_text)
                assert hot_store.purge_context(
                    context
                ) == oracle_store.purge_context(context), (
                    f"purge_context diverged at step {index}"
                )
            elif kind == "purge_older_than":
                _, cutoff = operation
                assert hot_store.purge_older_than(
                    float(cutoff)
                ) == oracle_store.purge_older_than(float(cutoff)), (
                    f"purge_older_than diverged at step {index}"
                )
            else:  # swap_policy: advance the policy epoch on both
                _, extended = operation
                target = _swapped_policy_set() if extended else _policy_set()
                oracle.swap_policy(target, force=True)
                engine.swap_policy(target, force=True)
            assert store_digest(hot_store) == store_digest(oracle_store), (
                f"store contents diverged at step {index}"
            )
    finally:
        hot_store.close()
        warm.close()
        oracle_store.close()


@given(
    st.lists(
        st.tuples(
            st.sampled_from(_USERS),
            st.sampled_from(["d1", "d2"]),
            st.sampled_from(["c1", "c2"]),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_eviction_schedule_cannot_change_answers(reads):
    """Interleaving arbitrary read-driven eviction churn between writes
    leaves every aggregate view identical to the oracle's."""
    oracle_store = SQLiteRetainedADIStore(":memory:")
    warm = SQLiteRetainedADIStore(":memory:")
    hot_store = TieredADIStore(warm, hot_users=1, shards=1)
    oracle = MSoDEngine(_policy_set(), oracle_store)
    engine = MSoDEngine(_policy_set(), hot_store)
    try:
        for index, (user, dept, case) in enumerate(reads):
            request = DecisionRequest(
                user_id=user,
                roles=(_CLERK,),
                operation="issue",
                target="PO",
                context_instance=ContextName.parse(f"Dept={dept}, Case={case}"),
                timestamp=float(index),
                request_id=f"r{index}",
            )
            assert _decision_key(engine.check(request)) == _decision_key(
                oracle.check(request)
            )
            # Read a *different* user to churn the single-entry hot layer.
            other = _USERS[(index + 1) % len(_USERS)]
            query = ContextName.parse(f"Dept={dept}")
            assert hot_store.user_roles(other, query) == oracle_store.user_roles(
                other, query
            )
            assert hot_store.user_privilege_exercises(
                user, query
            ) == oracle_store.user_privilege_exercises(user, query)
        assert store_digest(hot_store) == store_digest(oracle_store)
        assert hot_store.stats()["hydrations"] >= 1
    finally:
        hot_store.close()
        warm.close()
        oracle_store.close()

"""Unit + property tests for the MSoD policy authoring DSL."""

import pytest
from hypothesis import given, settings

from repro.core import ContextName, Privilege, Role
from repro.errors import PolicyParseError
from repro.xmlpolicy import (
    compile_policy_set,
    decompile_policy_set,
    combined_policy_set,
    write_policy_set,
    parse_policy_set,
)

BANK_DSL = """
# Example 1 — bank cash processing
policy bank within "Branch=*, Period=!":
    last step CommitAudit on http://audit.location.com/audit
    mutually exclusive roles limit 2:
        employee:Teller, employee:Auditor
"""

TAX_DSL = """
policy tax within "TaxOffice=!, taxRefundProcess=!":
    first step prepareCheck on http://www.myTaxOffice.com/Check
    last step confirmCheck on http://secret.location.com/audit
    mutually exclusive privileges limit 2:
        prepareCheck on http://www.myTaxOffice.com/Check,
        confirmCheck on http://secret.location.com/audit
    mutually exclusive privileges limit 2:
        approve/disapproveCheck on http://www.myTaxOffice.com/Check,
        approve/disapproveCheck on http://www.myTaxOffice.com/Check,
        combineResults on http://secret.location.com/results
"""


class TestCompile:
    def test_bank_policy(self):
        policy_set = compile_policy_set(BANK_DSL)
        policy = policy_set.get("bank")
        assert policy.business_context == ContextName.parse("Branch=*, Period=!")
        assert policy.last_step.operation == "CommitAudit"
        assert set(policy.mmers[0].roles) == {
            Role("employee", "Teller"),
            Role("employee", "Auditor"),
        }

    def test_tax_policy_with_duplicate_privilege(self):
        policy_set = compile_policy_set(TAX_DSL)
        policy = policy_set.get("tax")
        assert policy.first_step.operation == "prepareCheck"
        approve = Privilege(
            "approve/disapproveCheck", "http://www.myTaxOffice.com/Check"
        )
        assert list(policy.mmeps[1].privileges).count(approve) == 2

    def test_dsl_matches_published_xml_semantics(self):
        """Compiling the DSL rendition equals parsing the paper's XML."""
        from_dsl = compile_policy_set(BANK_DSL + TAX_DSL)
        from_xml = combined_policy_set()
        for dsl_policy, xml_policy in zip(from_dsl, from_xml):
            assert dsl_policy.business_context == xml_policy.business_context
            assert list(dsl_policy.mmers) == list(xml_policy.mmers)
            assert list(dsl_policy.mmeps) == list(xml_policy.mmeps)
            assert dsl_policy.first_step == xml_policy.first_step
            assert dsl_policy.last_step == xml_policy.last_step

    def test_universal_context(self):
        policy_set = compile_policy_set(
            'policy universal within "":\n'
            "    mutually exclusive roles limit 2:\n"
            "        e:A, e:B\n"
        )
        assert policy_set.get("universal").business_context.is_root

    def test_comments_and_blank_lines_ignored(self):
        policy_set = compile_policy_set(
            "# leading comment\n\n" + BANK_DSL + "\n# trailing\n"
        )
        assert len(policy_set) == 1


class TestCompileErrors:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("", "no policies"),
            ("last step a on b\n", "outside a policy block"),
            ('policy p within "A=1"\n', "must end with ':'"),
            ('policy p "A=1":\n', "within"),
            ("policy p within A=1:\n", "double-quoted"),
            (
                'policy p within "A=1":\n    nonsense here\n',
                "unrecognised statement",
            ),
            (
                'policy p within "A=1":\n'
                "    mutually exclusive roles limit two:\n        e:A, e:B\n",
                "integer",
            ),
            (
                'policy p within "A=1":\n'
                "    mutually exclusive roles limit 2:\n",
                "needs at least one MMER or MMEP|list is empty",
            ),
            (
                'policy p within "A=1":\n'
                "    mutually exclusive roles limit 2:\n        NotARole\n",
                "type:value",
            ),
            (
                'policy p within "A=1":\n'
                "    mutually exclusive privileges limit 2:\n        op-only\n",
                "on",
            ),
            (
                'policy p within "A=1":\n'
                "    first step a on t\n    first step b on t\n"
                "    mutually exclusive roles limit 2:\n        e:A, e:B\n",
                "duplicate 'first step'",
            ),
            (
                'policy p within "not-a-context":\n'
                "    mutually exclusive roles limit 2:\n        e:A, e:B\n",
                "type=value",
            ),
        ],
    )
    def test_bad_input(self, text, match):
        with pytest.raises(PolicyParseError, match=match):
            compile_policy_set(text)

    def test_error_messages_carry_line_numbers(self):
        with pytest.raises(PolicyParseError, match="line 2"):
            compile_policy_set("\nsurprise\n")


class TestDecompile:
    def test_round_trip_paper_policies(self):
        original = combined_policy_set()
        text = decompile_policy_set(original)
        restored = compile_policy_set(text)
        for a, b in zip(original, restored):
            assert a.business_context == b.business_context
            assert list(a.mmers) == list(b.mmers)
            assert list(a.mmeps) == list(b.mmeps)
            assert a.first_step == b.first_step
            assert a.last_step == b.last_step
            assert a.policy_id == b.policy_id

    def test_dsl_to_xml_pipeline(self):
        """DSL → model → XML → model stays equivalent."""
        policy_set = compile_policy_set(BANK_DSL + TAX_DSL)
        xml = write_policy_set(policy_set)
        restored = parse_policy_set(xml)
        assert len(restored) == 2
        assert list(restored.get("bank").mmers) == list(
            policy_set.get("bank").mmers
        )


# Reuse the hypothesis strategy from the XML round-trip suite: its
# token alphabet is alphanumeric, which is within the DSL's lexical
# limits (no commas or '#' in names).
from tests.test_property_xml import policy_sets  # noqa: E402


@given(policy_sets())
@settings(max_examples=80, deadline=None)
def test_property_dsl_round_trip(policy_set):
    text = decompile_policy_set(policy_set)
    restored = compile_policy_set(text)
    assert len(restored) == len(policy_set)
    for original, parsed in zip(policy_set, restored):
        assert parsed.business_context == original.business_context
        assert list(parsed.mmers) == list(original.mmers)
        assert list(parsed.mmeps) == list(original.mmeps)
        assert parsed.first_step == original.first_step
        assert parsed.last_step == original.last_step

"""Property-based tests for context names and matching (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import (
    ContextComponent,
    ContextName,
    common_supercontext,
)

# Token alphabet excludes '=', ',', whitespace, '*' and '!'.
_token = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters="-_."
    ),
    min_size=1,
    max_size=8,
)

_value = st.one_of(_token, st.just("*"), st.just("!"))


@st.composite
def context_names(draw, concrete=False, max_depth=5):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    components = []
    seen_types = set()
    for index in range(depth):
        ctx_type = draw(_token) + str(index)  # suffix guarantees uniqueness
        if ctx_type in seen_types:
            continue
        seen_types.add(ctx_type)
        value = draw(_token if concrete else _value)
        components.append(ContextComponent(ctx_type, value))
    return ContextName(components)


@given(context_names())
def test_str_parse_round_trip(name):
    assert ContextName.parse(str(name)) == name


@given(context_names())
def test_matching_is_reflexive(name):
    assert name.is_equal_or_subordinate_to(name)


@given(context_names())
def test_everything_matches_root(name):
    assert name.is_equal_or_subordinate_to(ContextName.root())


@given(context_names(concrete=True), context_names(concrete=True))
def test_concrete_matching_is_antisymmetric(a, b):
    """For concrete names, mutual matching implies equality."""
    if a.is_equal_or_subordinate_to(b) and b.is_equal_or_subordinate_to(a):
        assert a == b


@given(
    context_names(concrete=True),
    context_names(concrete=True),
    context_names(concrete=True),
)
def test_concrete_matching_is_transitive(a, b, c):
    if a.is_equal_or_subordinate_to(b) and b.is_equal_or_subordinate_to(c):
        assert a.is_equal_or_subordinate_to(c)


@given(context_names(concrete=True), _token, _token)
def test_child_is_strictly_subordinate(name, ctx_type, value):
    existing_types = {component.ctx_type for component in name}
    child_type = ctx_type + "_leaf"
    if child_type in existing_types:
        return
    child = name.child(child_type, value)
    assert child.is_strictly_subordinate_to(name)
    assert child.parent == name


@given(context_names(max_depth=4), context_names(concrete=True, max_depth=4))
@settings(max_examples=200)
def test_instantiate_result_covers_instance(policy, instance):
    """When an instance matches a policy, the instantiated context still
    matches the policy and is matched by the instance."""
    if not instance.is_equal_or_subordinate_to(policy):
        return
    effective = policy.instantiate(instance)
    assert len(effective) == len(policy)
    assert instance.is_equal_or_subordinate_to(effective)
    # '!' components are gone after instantiation.
    assert not any(component.is_per_instance for component in effective)


@given(st.lists(context_names(concrete=True), min_size=1, max_size=5))
def test_common_supercontext_is_superior_to_all(names):
    ancestor = common_supercontext(names)
    for name in names:
        assert name.is_equal_or_subordinate_to(ancestor)


@given(st.lists(context_names(concrete=True), min_size=1, max_size=5))
def test_common_supercontext_is_deepest(names):
    """No strictly deeper common prefix exists."""
    ancestor = common_supercontext(names)
    if len(ancestor) == len(names[0]):
        return  # ancestor equals the shallowest possible already
    deeper = ContextName(names[0].components[: len(ancestor) + 1])
    assert not all(name.is_equal_or_subordinate_to(deeper) for name in names)

"""Wire-format tests: round trips plus malformed-input fuzzing.

The hard requirement (ISSUE 2): truncated frames, oversized frames and
bad UTF-8 must yield a :class:`~repro.errors.ProtocolError` — never any
other exception, because any other exception would crash a serving
worker on attacker-controlled bytes.
"""

import dataclasses
import json
import random

import pytest

from repro.core import ContextName, Decision, DecisionRequest, MSoDViolation, Role
from repro.core.retained_adi import RetainedADIRecord
from repro.errors import ProtocolError
from repro.server import protocol

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def make_request(**overrides):
    defaults = dict(
        user_id="alice",
        roles=(TELLER, AUDITOR),
        operation="handleCash",
        target="till://1",
        context_instance=ContextName.parse("Branch=York, Period=P1"),
        timestamp=17.25,
        environment={"tod": "morning"},
        request_id="req-test-0001",
    )
    defaults.update(overrides)
    return DecisionRequest(**defaults)


def make_grant():
    request = make_request()
    record = RetainedADIRecord(
        user_id="alice",
        roles=(TELLER,),
        operation="handleCash",
        target="till://1",
        context_instance=ContextName.parse("Branch=York, Period=P1"),
        granted_at=17.25,
        request_id="req-test-0001",
        record_id=41,
    )
    return Decision(
        effect="grant",
        request=request,
        matched_policy_ids=("bank-1",),
        records_added=1,
        records_purged=0,
        reason="granted under MSoD",
        adi_adds=(record,),
        adi_purged_contexts=(ContextName.parse("Branch=York, Period=P0"),),
    )


def make_deny():
    request = make_request()
    violation = MSoDViolation(
        policy_id="bank-1",
        constraint_kind="MMER",
        constraint_repr="MMER({Teller, Auditor}, 2)",
        effective_context=ContextName.parse("Branch=*, Period=P1"),
        detail="user 'alice' would hold 2 of 2 mutually exclusive roles",
    )
    return Decision(
        effect="deny",
        request=request,
        violation=violation,
        matched_policy_ids=("bank-1",),
        reason=violation.detail,
    )


class TestRoundTrips:
    def test_request_round_trip_is_bit_identical(self):
        request = make_request()
        wire = json.loads(json.dumps(protocol.request_to_wire(request)))
        assert protocol.request_from_wire(wire) == request

    def test_grant_decision_round_trip(self):
        decision = make_grant()
        wire = json.loads(json.dumps(protocol.decision_to_wire(decision)))
        assert protocol.decision_from_wire(wire) == decision

    def test_deny_decision_round_trip(self):
        decision = make_deny()
        wire = json.loads(json.dumps(protocol.decision_to_wire(decision)))
        assert protocol.decision_from_wire(wire) == decision

    def test_policy_version_round_trips_when_stamped(self):
        decision = dataclasses.replace(
            make_grant(), policy_epoch=3, policy_digest="ab" * 32
        )
        wire = json.loads(json.dumps(protocol.decision_to_wire(decision)))
        assert wire["policy_epoch"] == 3
        assert wire["policy_digest"] == "ab" * 32
        assert protocol.decision_from_wire(wire) == decision

    def test_pre_epoch_decisions_omit_policy_keys(self):
        wire = protocol.decision_to_wire(make_grant())
        assert "policy_epoch" not in wire
        assert "policy_digest" not in wire
        restored = protocol.decision_from_wire(json.loads(json.dumps(wire)))
        assert restored.policy_epoch == 0
        assert restored.policy_digest == ""

    def test_frame_envelope_round_trip(self):
        frame = protocol.request_frame(
            "decide", "c-1", request=protocol.request_to_wire(make_request())
        )
        data = protocol.encode_frame(frame)
        assert data.endswith(b"\n")
        assert protocol.decode_frame(data) == frame

    def test_float_timestamps_survive_exactly(self):
        request = make_request(timestamp=0.1 + 0.2)  # classic non-exact sum
        wire = json.loads(json.dumps(protocol.request_to_wire(request)))
        assert protocol.request_from_wire(wire).timestamp == request.timestamp


class TestEnvelopeRejection:
    def test_empty_frame(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"\n")

    def test_bad_utf8(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b'\xff\xfe{"v": 1}\n')

    def test_truncated_json(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b'{"v": 1, "op": "deci')

    def test_non_object_frame(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"[1, 2, 3]\n")

    def test_oversized_frame(self):
        line = b'{"v": 1, "pad": "' + b"x" * protocol.MAX_FRAME_BYTES + b'"}\n'
        with pytest.raises(ProtocolError):
            protocol.decode_frame(line)

    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_frame({"v": 1, "pad": "x" * protocol.MAX_FRAME_BYTES})

    @pytest.mark.parametrize("version", [None, 0, 2, "1", [1]])
    def test_wrong_version(self, version):
        line = json.dumps({"v": version, "op": "healthz"}).encode() + b"\n"
        with pytest.raises(ProtocolError):
            protocol.decode_frame(line)


class TestRequestRejection:
    def wire(self, **overrides):
        base = protocol.request_to_wire(make_request())
        base.update(overrides)
        return base

    @pytest.mark.parametrize(
        "overrides",
        [
            {"user_id": 7},
            {"user_id": None},
            {"user_id": ""},  # semantically invalid (Section 4.1)
            {"roles": "Teller"},
            {"roles": [["employee"]]},
            {"roles": [["employee", 3]]},
            {"roles": [{"type": "employee"}]},
            {"operation": None},
            {"target": 4.2},
            {"context_instance": 9},
            {"context_instance": "not==a==context"},
            {"context_instance": "Branch=*, Period=P1"},  # non-concrete
            {"timestamp": "noon"},
            {"timestamp": True},
            {"environment": [1, 2]},
            {"environment": {"k": 5}},
            {"request_id": None},
        ],
    )
    def test_malformed_request_bodies(self, overrides):
        with pytest.raises(ProtocolError):
            protocol.request_from_wire(self.wire(**overrides))

    def test_non_dict_request(self):
        with pytest.raises(ProtocolError):
            protocol.request_from_wire("decide me")


class TestDecisionRejection:
    @pytest.mark.parametrize(
        "mutate",
        [
            lambda wire: wire.update(effect="maybe"),
            lambda wire: wire.update(reason=None),
            lambda wire: wire.update(matched_policy_ids="p1"),
            lambda wire: wire.update(matched_policy_ids=[1]),
            lambda wire: wire.update(records_added="many"),
            lambda wire: wire.update(records_purged=True),
            lambda wire: wire.update(adi_adds={"a": 1}),
            lambda wire: wire.update(adi_adds=[{"user_id": "x"}]),
            lambda wire: wire.update(adi_purged_contexts="ctx"),
            lambda wire: wire.update(adi_purged_contexts=[3]),
            lambda wire: wire.update(violation={"policy_id": 1}),
            lambda wire: wire.update(request=None),
        ],
    )
    def test_malformed_decisions(self, mutate):
        wire = protocol.decision_to_wire(make_grant())
        mutate(wire)
        with pytest.raises(ProtocolError):
            protocol.decision_from_wire(wire)


class TestFuzz:
    """Random corruption must only ever produce ProtocolError."""

    def test_truncations_never_crash(self):
        frame = protocol.encode_frame(
            protocol.request_frame(
                "decide",
                "c-9",
                request=protocol.request_to_wire(make_request()),
            )
        )
        for cut in range(len(frame)):
            truncated = frame[:cut]
            try:
                decoded = protocol.decode_frame(truncated)
                protocol.request_from_wire(decoded.get("request"))
            except ProtocolError:
                pass  # the only acceptable failure mode

    def test_random_byte_corruption_never_crashes(self):
        rng = random.Random(20260806)
        frame = bytearray(
            protocol.encode_frame(
                protocol.request_frame(
                    "decide",
                    "c-10",
                    request=protocol.request_to_wire(make_request()),
                )
            )
        )
        for _ in range(500):
            corrupted = bytearray(frame)
            for _ in range(rng.randrange(1, 6)):
                corrupted[rng.randrange(len(corrupted))] = rng.randrange(256)
            try:
                decoded = protocol.decode_frame(bytes(corrupted))
                if decoded.get("op") == protocol.OP_DECIDE:
                    protocol.request_from_wire(decoded.get("request"))
            except ProtocolError:
                pass

    def test_random_json_shapes_never_crash(self):
        rng = random.Random(7)
        atoms = [None, True, False, 0, -1, 3.5, "x", "", [], {}, "Branch=York"]

        def shape(depth=0):
            if depth > 2 or rng.random() < 0.4:
                return rng.choice(atoms)
            if rng.random() < 0.5:
                return [shape(depth + 1) for _ in range(rng.randrange(3))]
            return {
                rng.choice(["v", "op", "id", "request", "roles", "user_id"]):
                    shape(depth + 1)
                for _ in range(rng.randrange(4))
            }

        for _ in range(300):
            payload = {"v": 1, "op": "decide", "id": "f", "request": shape()}
            line = json.dumps(payload).encode() + b"\n"
            decoded = protocol.decode_frame(line)
            try:
                protocol.request_from_wire(decoded.get("request"))
            except ProtocolError:
                pass

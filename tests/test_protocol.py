"""Wire-format tests: round trips plus malformed-input fuzzing.

The hard requirement (ISSUE 2): truncated frames, oversized frames and
bad UTF-8 must yield a :class:`~repro.errors.ProtocolError` — never any
other exception, because any other exception would crash a serving
worker on attacker-controlled bytes.
"""

import dataclasses
import json
import random

import pytest

from repro.core import ContextName, Decision, DecisionRequest, MSoDViolation, Role
from repro.core.retained_adi import RetainedADIRecord
from repro.errors import ProtocolError
from repro.server import protocol

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def make_request(**overrides):
    defaults = dict(
        user_id="alice",
        roles=(TELLER, AUDITOR),
        operation="handleCash",
        target="till://1",
        context_instance=ContextName.parse("Branch=York, Period=P1"),
        timestamp=17.25,
        environment={"tod": "morning"},
        request_id="req-test-0001",
    )
    defaults.update(overrides)
    return DecisionRequest(**defaults)


def make_grant():
    request = make_request()
    record = RetainedADIRecord(
        user_id="alice",
        roles=(TELLER,),
        operation="handleCash",
        target="till://1",
        context_instance=ContextName.parse("Branch=York, Period=P1"),
        granted_at=17.25,
        request_id="req-test-0001",
        record_id=41,
    )
    return Decision(
        effect="grant",
        request=request,
        matched_policy_ids=("bank-1",),
        records_added=1,
        records_purged=0,
        reason="granted under MSoD",
        adi_adds=(record,),
        adi_purged_contexts=(ContextName.parse("Branch=York, Period=P0"),),
    )


def make_deny():
    request = make_request()
    violation = MSoDViolation(
        policy_id="bank-1",
        constraint_kind="MMER",
        constraint_repr="MMER({Teller, Auditor}, 2)",
        effective_context=ContextName.parse("Branch=*, Period=P1"),
        detail="user 'alice' would hold 2 of 2 mutually exclusive roles",
    )
    return Decision(
        effect="deny",
        request=request,
        violation=violation,
        matched_policy_ids=("bank-1",),
        reason=violation.detail,
    )


class TestRoundTrips:
    def test_request_round_trip_is_bit_identical(self):
        request = make_request()
        wire = json.loads(json.dumps(protocol.request_to_wire(request)))
        assert protocol.request_from_wire(wire) == request

    def test_grant_decision_round_trip(self):
        decision = make_grant()
        wire = json.loads(json.dumps(protocol.decision_to_wire(decision)))
        assert protocol.decision_from_wire(wire) == decision

    def test_deny_decision_round_trip(self):
        decision = make_deny()
        wire = json.loads(json.dumps(protocol.decision_to_wire(decision)))
        assert protocol.decision_from_wire(wire) == decision

    def test_policy_version_round_trips_when_stamped(self):
        decision = dataclasses.replace(
            make_grant(), policy_epoch=3, policy_digest="ab" * 32
        )
        wire = json.loads(json.dumps(protocol.decision_to_wire(decision)))
        assert wire["policy_epoch"] == 3
        assert wire["policy_digest"] == "ab" * 32
        assert protocol.decision_from_wire(wire) == decision

    def test_pre_epoch_decisions_omit_policy_keys(self):
        wire = protocol.decision_to_wire(make_grant())
        assert "policy_epoch" not in wire
        assert "policy_digest" not in wire
        restored = protocol.decision_from_wire(json.loads(json.dumps(wire)))
        assert restored.policy_epoch == 0
        assert restored.policy_digest == ""

    def test_frame_envelope_round_trip(self):
        frame = protocol.request_frame(
            "decide", "c-1", request=protocol.request_to_wire(make_request())
        )
        data = protocol.encode_frame(frame)
        assert data.endswith(b"\n")
        assert protocol.decode_frame(data) == frame

    def test_float_timestamps_survive_exactly(self):
        request = make_request(timestamp=0.1 + 0.2)  # classic non-exact sum
        wire = json.loads(json.dumps(protocol.request_to_wire(request)))
        assert protocol.request_from_wire(wire).timestamp == request.timestamp


class TestEnvelopeRejection:
    def test_empty_frame(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"\n")

    def test_bad_utf8(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b'\xff\xfe{"v": 1}\n')

    def test_truncated_json(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b'{"v": 1, "op": "deci')

    def test_non_object_frame(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"[1, 2, 3]\n")

    def test_oversized_frame(self):
        line = b'{"v": 1, "pad": "' + b"x" * protocol.MAX_FRAME_BYTES + b'"}\n'
        with pytest.raises(ProtocolError):
            protocol.decode_frame(line)

    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_frame({"v": 1, "pad": "x" * protocol.MAX_FRAME_BYTES})

    @pytest.mark.parametrize("version", [None, 0, 2, "1", [1]])
    def test_wrong_version(self, version):
        line = json.dumps({"v": version, "op": "healthz"}).encode() + b"\n"
        with pytest.raises(ProtocolError):
            protocol.decode_frame(line)


class TestRequestRejection:
    def wire(self, **overrides):
        base = protocol.request_to_wire(make_request())
        base.update(overrides)
        return base

    @pytest.mark.parametrize(
        "overrides",
        [
            {"user_id": 7},
            {"user_id": None},
            {"user_id": ""},  # semantically invalid (Section 4.1)
            {"roles": "Teller"},
            {"roles": [["employee"]]},
            {"roles": [["employee", 3]]},
            {"roles": [{"type": "employee"}]},
            {"operation": None},
            {"target": 4.2},
            {"context_instance": 9},
            {"context_instance": "not==a==context"},
            {"context_instance": "Branch=*, Period=P1"},  # non-concrete
            {"timestamp": "noon"},
            {"timestamp": True},
            {"environment": [1, 2]},
            {"environment": {"k": 5}},
            {"request_id": None},
        ],
    )
    def test_malformed_request_bodies(self, overrides):
        with pytest.raises(ProtocolError):
            protocol.request_from_wire(self.wire(**overrides))

    def test_non_dict_request(self):
        with pytest.raises(ProtocolError):
            protocol.request_from_wire("decide me")


class TestDecisionRejection:
    @pytest.mark.parametrize(
        "mutate",
        [
            lambda wire: wire.update(effect="maybe"),
            lambda wire: wire.update(reason=None),
            lambda wire: wire.update(matched_policy_ids="p1"),
            lambda wire: wire.update(matched_policy_ids=[1]),
            lambda wire: wire.update(records_added="many"),
            lambda wire: wire.update(records_purged=True),
            lambda wire: wire.update(adi_adds={"a": 1}),
            lambda wire: wire.update(adi_adds=[{"user_id": "x"}]),
            lambda wire: wire.update(adi_purged_contexts="ctx"),
            lambda wire: wire.update(adi_purged_contexts=[3]),
            lambda wire: wire.update(violation={"policy_id": 1}),
            lambda wire: wire.update(request=None),
        ],
    )
    def test_malformed_decisions(self, mutate):
        wire = protocol.decision_to_wire(make_grant())
        mutate(wire)
        with pytest.raises(ProtocolError):
            protocol.decision_from_wire(wire)


class TestFuzz:
    """Random corruption must only ever produce ProtocolError."""

    def test_truncations_never_crash(self):
        frame = protocol.encode_frame(
            protocol.request_frame(
                "decide",
                "c-9",
                request=protocol.request_to_wire(make_request()),
            )
        )
        for cut in range(len(frame)):
            truncated = frame[:cut]
            try:
                decoded = protocol.decode_frame(truncated)
                protocol.request_from_wire(decoded.get("request"))
            except ProtocolError:
                pass  # the only acceptable failure mode

    def test_random_byte_corruption_never_crashes(self):
        rng = random.Random(20260806)
        frame = bytearray(
            protocol.encode_frame(
                protocol.request_frame(
                    "decide",
                    "c-10",
                    request=protocol.request_to_wire(make_request()),
                )
            )
        )
        for _ in range(500):
            corrupted = bytearray(frame)
            for _ in range(rng.randrange(1, 6)):
                corrupted[rng.randrange(len(corrupted))] = rng.randrange(256)
            try:
                decoded = protocol.decode_frame(bytes(corrupted))
                if decoded.get("op") == protocol.OP_DECIDE:
                    protocol.request_from_wire(decoded.get("request"))
            except ProtocolError:
                pass

    def test_random_json_shapes_never_crash(self):
        rng = random.Random(7)
        atoms = [None, True, False, 0, -1, 3.5, "x", "", [], {}, "Branch=York"]

        def shape(depth=0):
            if depth > 2 or rng.random() < 0.4:
                return rng.choice(atoms)
            if rng.random() < 0.5:
                return [shape(depth + 1) for _ in range(rng.randrange(3))]
            return {
                rng.choice(["v", "op", "id", "request", "roles", "user_id"]):
                    shape(depth + 1)
                for _ in range(rng.randrange(4))
            }

        for _ in range(300):
            payload = {"v": 1, "op": "decide", "id": "f", "request": shape()}
            line = json.dumps(payload).encode() + b"\n"
            decoded = protocol.decode_frame(line)
            try:
                protocol.request_from_wire(decoded.get("request"))
            except ProtocolError:
                pass


def v2_frame_bytes(frame):
    """Encode and split a v2 frame into (header, payload) for surgery."""
    data = protocol.encode_frame_v2(frame)
    return data[: protocol.V2_HEADER_BYTES], data[protocol.V2_HEADER_BYTES :]


class TestV2RoundTrips:
    def test_decide_batch_frame_round_trip(self):
        requests = [
            protocol.request_to_wire(make_request(request_id=f"req-{i}"))
            for i in range(5)
        ]
        frame = {
            "op": protocol.OP_DECIDE_BATCH,
            "id": "c-77",
            "epoch": 3,
            "requests": requests,
        }
        header, payload = v2_frame_bytes(frame)
        assert protocol.v2_payload_length(header) == len(payload)
        decoded = protocol.decode_frame_v2(payload)
        assert decoded["v"] == 2  # encode stamps the version
        restored = protocol.batch_requests_of(decoded)
        assert [protocol.request_to_wire(r) for r in restored] == requests

    def test_binpack_value_fidelity(self):
        # Exercise every tag family and its size-boundary transitions.
        values = [
            None, True, False,
            0, 1, -1, 31, 32, 127, 128, 255, 256, 65535, 65536,
            -32, -33, -128, -129, -32768, -32769,
            2**31 - 1, 2**31, 2**32, 2**63 - 1, -(2**63),
            0.0, -0.5, 17.25, 0.1 + 0.2, float("inf"),
            "", "x", "a" * 31, "a" * 32, "a" * 255, "a" * 256, "π" * 100,
            b"", b"\x00\xff", b"y" * 300,
            [], [1, [2, [3]]], list(range(20)),
            {}, {"k": "v"}, {str(i): i for i in range(40)},
        ]
        for value in values:
            packed = protocol.pack_payload(value)
            assert protocol.unpack_payload(packed) == value

    def test_float_timestamps_survive_exactly_in_v2(self):
        request = make_request(timestamp=0.1 + 0.2)
        packed = protocol.pack_payload(protocol.request_to_wire(request))
        restored = protocol.request_from_wire(protocol.unpack_payload(packed))
        assert restored.timestamp == request.timestamp

    def test_decision_survives_v2_payload(self):
        for decision in (make_grant(), make_deny()):
            wire = protocol.decision_to_wire(decision)
            packed = protocol.pack_payload(wire)
            assert protocol.decision_from_wire(
                protocol.unpack_payload(packed)
            ) == decision


class TestV2Negotiation:
    def test_hello_frame_is_v1(self):
        frame = protocol.hello_frame("c-1")
        assert frame["v"] == 1 and frame["op"] == protocol.OP_HELLO
        assert frame["max_version"] == protocol.MAX_PROTOCOL_VERSION

    def test_negotiated_version_caps_at_server_max(self):
        assert protocol.negotiated_version({"max_version": 1}) == 1
        assert protocol.negotiated_version({"max_version": 2}) == 2
        assert protocol.negotiated_version({"max_version": 99}) == (
            protocol.MAX_PROTOCOL_VERSION
        )

    @pytest.mark.parametrize("bad", [None, 0, -1, "2", True, [2]])
    def test_bad_max_version_rejected(self, bad):
        with pytest.raises(ProtocolError):
            protocol.negotiated_version({"max_version": bad})

    @pytest.mark.parametrize("body", [None, "2", [], {"version": "2"},
                                      {"version": 0}, {"version": True}])
    def test_bad_hello_body_rejected(self, body):
        with pytest.raises(ProtocolError):
            protocol.hello_body_version(body)

    def test_decide_batch_is_not_a_v1_op(self):
        # v1 endpoints must keep rejecting the batch verb.
        assert protocol.OP_DECIDE_BATCH not in protocol.KNOWN_OPS
        assert protocol.OP_DECIDE_BATCH in protocol.V2_OPS


class TestV2FramingRejection:
    def good(self):
        return v2_frame_bytes(
            {"op": protocol.OP_DECIDE_BATCH, "id": "c-1",
             "requests": [protocol.request_to_wire(make_request())]}
        )

    def test_truncated_header_prefixes(self):
        header, _ = self.good()
        for cut in range(len(header)):
            with pytest.raises(ProtocolError):
                protocol.v2_payload_length(header[:cut])

    def test_v1_json_crosstalk_detected_as_bad_magic(self):
        # A v1 client's JSON line read as a v2 header: '{' != magic.
        with pytest.raises(ProtocolError) as excinfo:
            protocol.v2_payload_length(b'{"v": 1,')
        assert "magic" in str(excinfo.value)

    def test_v2_magic_is_invalid_utf8_lead_byte(self):
        # The reverse cross-talk: a v2 header sent to a v1 JSON endpoint
        # must fail UTF-8 decoding on the very first byte.
        header, _ = self.good()
        with pytest.raises(ProtocolError):
            protocol.decode_frame(header + b"\n")

    def test_oversized_declared_length(self):
        bad = protocol.V2_HEADER.pack(
            protocol.V2_MAGIC, 2, 0, protocol.MAX_FRAME_BYTES_V2 + 1
        )
        with pytest.raises(ProtocolError):
            protocol.v2_payload_length(bad)

    def test_zero_length_and_reserved_bits_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.v2_payload_length(
                protocol.V2_HEADER.pack(protocol.V2_MAGIC, 2, 0, 0)
            )
        with pytest.raises(ProtocolError):
            protocol.v2_payload_length(
                protocol.V2_HEADER.pack(protocol.V2_MAGIC, 2, 7, 10)
            )

    def test_wrong_version_byte(self):
        with pytest.raises(ProtocolError):
            protocol.v2_payload_length(
                protocol.V2_HEADER.pack(protocol.V2_MAGIC, 1, 0, 10)
            )

    def test_truncated_payload_prefixes_never_crash(self):
        _, payload = self.good()
        for cut in range(len(payload)):
            with pytest.raises(ProtocolError):
                protocol.decode_frame_v2(payload[:cut])

    def test_trailing_garbage_rejected(self):
        _, payload = self.good()
        with pytest.raises(ProtocolError):
            protocol.decode_frame_v2(payload + b"\x00")

    def test_non_map_payload_rejected(self):
        for value in (None, 7, "frame", [1, 2]):
            with pytest.raises(ProtocolError):
                protocol.decode_frame_v2(protocol.pack_payload(value))

    def test_random_payload_corruption_never_crashes(self):
        rng = random.Random(20260808)
        _, payload = self.good()
        for _ in range(600):
            corrupted = bytearray(payload)
            for _ in range(rng.randrange(1, 6)):
                corrupted[rng.randrange(len(corrupted))] = rng.randrange(256)
            try:
                frame = protocol.decode_frame_v2(bytes(corrupted))
                protocol.batch_requests_of(frame)
            except ProtocolError:
                pass  # the only acceptable failure mode

    def test_random_byte_soup_never_crashes(self):
        rng = random.Random(11)
        for _ in range(600):
            soup = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 64))
            )
            try:
                protocol.decode_frame_v2(soup)
            except ProtocolError:
                pass


class TestV2BatchRejection:
    def frame(self, requests):
        return {"v": 2, "op": protocol.OP_DECIDE_BATCH, "id": "c-2",
                "requests": requests}

    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.batch_requests_of(self.frame([]))

    def test_non_list_batch_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.batch_requests_of(self.frame({"0": {}}))

    def test_oversized_batch_rejected(self):
        wire = protocol.request_to_wire(make_request())
        requests = [wire] * (protocol.MAX_WIRE_BATCH + 1)
        with pytest.raises(ProtocolError):
            protocol.batch_requests_of(self.frame(requests))

    def test_mid_batch_garbage_rejects_whole_frame(self):
        # All-or-nothing: one malformed entry poisons the frame before
        # any sibling request can reach a shard queue.
        good = protocol.request_to_wire(make_request())
        for garbage in ({"user_id": 7}, None, "decide me", 4.2,
                        {**good, "timestamp": "noon"}):
            with pytest.raises(ProtocolError):
                protocol.batch_requests_of(self.frame([good, garbage, good]))

    def test_batch_result_count_mismatch_rejected(self):
        frame = {"v": 2, "ok": True, "id": "c-3",
                 "op": protocol.OP_DECIDE_BATCH,
                 "results": [{"ok": True, "decision": None}]}
        with pytest.raises(ProtocolError):
            protocol.batch_result_entries(frame, expected=2)
        with pytest.raises(ProtocolError):
            protocol.batch_result_entries({"results": "nope"}, expected=1)

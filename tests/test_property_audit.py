"""Property-based tamper-evidence tests for the secure audit trail."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import SecureAuditTrail
from repro.errors import AuditTrailError

KEY = b"property-test-key"

_payloads = st.dictionaries(
    keys=st.text(
        alphabet=st.characters(whitelist_categories=("Ll",)),
        min_size=1,
        max_size=6,
    ),
    values=st.one_of(
        st.integers(min_value=-1000, max_value=1000),
        st.text(max_size=12),
        st.booleans(),
    ),
    max_size=4,
)

_event_lists = st.lists(
    st.tuples(st.sampled_from(["decision", "purge", "admin"]), _payloads),
    min_size=1,
    max_size=12,
)


@given(_event_lists)
@settings(max_examples=60, deadline=None)
def test_any_honest_trail_verifies(tmp_path_factory, events):
    path = str(tmp_path_factory.mktemp("trail") / "t.log")
    trail = SecureAuditTrail(path, KEY)
    for index, (event_type, payload) in enumerate(events):
        trail.append(event_type, float(index), payload)
    read_back = list(SecureAuditTrail(path, KEY).verify_and_read())
    assert len(read_back) == len(events)
    for event, (event_type, payload) in zip(read_back, events):
        assert event.event_type == event_type
        assert event.payload == payload


@given(_event_lists, st.data())
@settings(max_examples=60, deadline=None)
def test_any_single_record_mutation_detected(tmp_path_factory, events, data):
    """Flipping any record's payload content breaks verification."""
    path = str(tmp_path_factory.mktemp("trail") / "t.log")
    trail = SecureAuditTrail(path, KEY)
    for index, (event_type, payload) in enumerate(events):
        trail.append(event_type, float(index), payload)

    with open(path) as handle:
        lines = handle.readlines()
    victim = data.draw(st.integers(min_value=0, max_value=len(lines) - 1))
    record = json.loads(lines[victim])
    record["payload"] = {"forged": True}
    lines[victim] = json.dumps(record, sort_keys=True) + "\n"
    with open(path, "w") as handle:
        handle.writelines(lines)

    with pytest.raises(AuditTrailError):
        SecureAuditTrail(path, KEY).verify()


@given(_event_lists, st.data())
@settings(max_examples=60, deadline=None)
def test_any_record_deletion_detected(tmp_path_factory, events, data):
    path = str(tmp_path_factory.mktemp("trail") / "t.log")
    trail = SecureAuditTrail(path, KEY)
    for index, (event_type, payload) in enumerate(events):
        trail.append(event_type, float(index), payload)
    with open(path) as handle:
        lines = handle.readlines()
    victim = data.draw(st.integers(min_value=0, max_value=len(lines) - 1))
    remaining = lines[:victim] + lines[victim + 1:]
    with open(path, "w") as handle:
        handle.writelines(remaining)
    # Deleting the final record is pure truncation: the hash chain stays
    # internally consistent and only the sealed checkpoint catches it.
    with pytest.raises(AuditTrailError):
        SecureAuditTrail(path, KEY).verify()

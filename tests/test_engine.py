"""Unit tests for the Section 4.2 MSoD enforcement algorithm."""

import pytest

from repro.core import (
    MMEP,
    MMER,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MODE_LITERAL,
    MODE_STRICT,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Privilege,
    Role,
    Step,
    store_digest,
)
from repro.errors import PolicyError

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
MANAGER = Role("employee", "Manager")
CLERK = Role("employee", "Clerk")

HANDLE_CASH = Privilege("handleCash", "till://1")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://1")
COMMIT_AUDIT = Privilege("CommitAudit", "http://audit.location.com/audit")

PREPARE = Privilege("prepareCheck", "http://tax/check")
APPROVE = Privilege("approve/disapproveCheck", "http://tax/check")
COMBINE = Privilege("combineResults", "http://tax/results")
CONFIRM = Privilege("confirmCheck", "http://tax/audit")

YORK_2006 = ContextName.parse("Branch=York, Period=2006")
LEEDS_2006 = ContextName.parse("Branch=Leeds, Period=2006")
YORK_2007 = ContextName.parse("Branch=York, Period=2007")


def bank_policy_set():
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                last_step=Step(COMMIT_AUDIT.operation, COMMIT_AUDIT.target),
                policy_id="bank",
            )
        ]
    )


def tax_policy_set():
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("TaxOffice=!, taxRefundProcess=!"),
                mmeps=[
                    MMEP([PREPARE, CONFIRM], 2),
                    MMEP([APPROVE, APPROVE, COMBINE], 2),
                ],
                first_step=Step(PREPARE.operation, PREPARE.target),
                last_step=Step(CONFIRM.operation, CONFIRM.target),
                policy_id="tax",
            )
        ]
    )


def request(user, roles, privilege, context, at=1.0):
    return DecisionRequest(
        user_id=user,
        roles=tuple(roles),
        operation=privilege.operation,
        target=privilege.target,
        context_instance=context,
        timestamp=at,
    )


def bank_engine(mode=MODE_STRICT):
    return MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore(), mode=mode)


def tax_engine(mode=MODE_STRICT):
    return MSoDEngine(tax_policy_set(), InMemoryRetainedADIStore(), mode=mode)


class TestBasics:
    def test_unknown_mode_rejected(self):
        with pytest.raises(PolicyError):
            MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore(), mode="x")

    def test_no_matching_policy_grants_unaltered(self):
        engine = bank_engine()
        decision = engine.check(
            request("alice", [TELLER], HANDLE_CASH, ContextName.parse("Office=K"))
        )
        assert decision.granted
        assert decision.matched_policy_ids == ()
        assert engine.store.count() == 0

    def test_matched_policy_ids_reported(self):
        engine = bank_engine()
        decision = engine.check(request("alice", [TELLER], HANDLE_CASH, YORK_2006))
        assert decision.matched_policy_ids == ("bank",)

    def test_request_requires_user_id(self):
        with pytest.raises(PolicyError):
            request("", [TELLER], HANDLE_CASH, YORK_2006)

    def test_request_requires_concrete_context(self):
        with pytest.raises(PolicyError):
            request("alice", [TELLER], HANDLE_CASH, ContextName.parse("A=*"))

    def test_replace_policy_set(self):
        engine = bank_engine()
        engine.replace_policy_set(tax_policy_set())
        assert engine.policy_set.get("tax").policy_id == "tax"

    def test_bulk_check_in_order(self):
        engine = bank_engine()
        decisions = engine.bulk_check(
            [
                request("alice", [TELLER], HANDLE_CASH, YORK_2006, at=1.0),
                request("alice", [AUDITOR], AUDIT_BOOKS, YORK_2006, at=2.0),
            ]
        )
        assert [d.effect for d in decisions] == ["grant", "deny"]


class TestExample1Bank:
    """Paper Example 1: teller/auditor across sessions and branches."""

    def test_first_role_use_granted(self):
        decision = bank_engine().check(
            request("alice", [TELLER], HANDLE_CASH, YORK_2006)
        )
        assert decision.granted
        assert decision.records_added > 0

    def test_conflicting_role_denied_in_later_session(self):
        engine = bank_engine()
        engine.check(request("alice", [TELLER], HANDLE_CASH, YORK_2006, at=1.0))
        decision = engine.check(
            request("alice", [AUDITOR], AUDIT_BOOKS, YORK_2006, at=100.0)
        )
        assert decision.denied
        assert decision.violation.constraint_kind == "MMER"
        assert decision.violation.policy_id == "bank"

    def test_conflict_detected_across_branches(self):
        """Branch=* aggregates history across all branches."""
        engine = bank_engine()
        engine.check(request("alice", [TELLER], HANDLE_CASH, YORK_2006))
        decision = engine.check(
            request("alice", [AUDITOR], AUDIT_BOOKS, LEEDS_2006, at=2.0)
        )
        assert decision.denied

    def test_new_period_is_a_fresh_instance(self):
        """Period=! scopes the conflict to each audit period."""
        engine = bank_engine()
        engine.check(request("alice", [TELLER], HANDLE_CASH, YORK_2006))
        decision = engine.check(
            request("alice", [AUDITOR], AUDIT_BOOKS, YORK_2007, at=2.0)
        )
        assert decision.granted

    def test_other_user_not_affected(self):
        engine = bank_engine()
        engine.check(request("alice", [TELLER], HANDLE_CASH, YORK_2006))
        decision = engine.check(
            request("bob", [AUDITOR], AUDIT_BOOKS, YORK_2006, at=2.0)
        )
        assert decision.granted

    def test_same_role_repeated_is_fine(self):
        engine = bank_engine()
        for at in (1.0, 2.0, 3.0):
            decision = engine.check(
                request("alice", [TELLER], HANDLE_CASH, YORK_2006, at=at)
            )
            assert decision.granted

    def test_commit_audit_purges_period(self):
        engine = bank_engine()
        engine.check(request("alice", [TELLER], HANDLE_CASH, YORK_2006, at=1.0))
        engine.check(request("x", [TELLER], HANDLE_CASH, LEEDS_2006, at=2.0))
        commit = engine.check(
            request("bob", [AUDITOR], COMMIT_AUDIT, YORK_2006, at=3.0)
        )
        assert commit.granted
        assert commit.records_purged >= 2  # both branches, same period
        assert engine.store.count() == 0
        # After the purge alice may audit in the next period's context.
        decision = engine.check(
            request("alice", [AUDITOR], AUDIT_BOOKS, LEEDS_2006, at=4.0)
        )
        assert decision.granted

    def test_commit_audit_leaves_other_periods_alone(self):
        engine = bank_engine()
        engine.check(request("alice", [TELLER], HANDLE_CASH, YORK_2006, at=1.0))
        engine.check(request("carol", [TELLER], HANDLE_CASH, YORK_2007, at=2.0))
        engine.check(request("bob", [AUDITOR], COMMIT_AUDIT, YORK_2006, at=3.0))
        decision = engine.check(
            request("carol", [AUDITOR], AUDIT_BOOKS, YORK_2007, at=4.0)
        )
        assert decision.denied  # 2007 history survived the 2006 purge


class TestExample2TaxRefund:
    """Paper Example 2: MMEP enforcement inside a process instance."""

    CTX = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=42")
    CTX_OTHER = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=43")

    def run_prefix(self, engine, at=1.0):
        assert engine.check(
            request("clerk1", [CLERK], PREPARE, self.CTX, at=at)
        ).granted

    def test_clerk_cannot_prepare_and_confirm(self):
        engine = tax_engine()
        self.run_prefix(engine)
        decision = engine.check(
            request("clerk1", [CLERK], CONFIRM, self.CTX, at=2.0)
        )
        assert decision.denied
        assert decision.violation.constraint_kind == "MMEP"

    def test_different_clerk_can_confirm(self):
        engine = tax_engine()
        self.run_prefix(engine)
        decision = engine.check(
            request("clerk2", [CLERK], CONFIRM, self.CTX, at=2.0)
        )
        assert decision.granted

    def test_manager_cannot_approve_twice(self):
        engine = tax_engine()
        self.run_prefix(engine)
        assert engine.check(
            request("mgr1", [MANAGER], APPROVE, self.CTX, at=2.0)
        ).granted
        decision = engine.check(
            request("mgr1", [MANAGER], APPROVE, self.CTX, at=3.0)
        )
        assert decision.denied

    def test_two_managers_approve_once_each(self):
        engine = tax_engine()
        self.run_prefix(engine)
        assert engine.check(
            request("mgr1", [MANAGER], APPROVE, self.CTX, at=2.0)
        ).granted
        assert engine.check(
            request("mgr2", [MANAGER], APPROVE, self.CTX, at=3.0)
        ).granted

    def test_approver_cannot_combine(self):
        engine = tax_engine()
        self.run_prefix(engine)
        engine.check(request("mgr1", [MANAGER], APPROVE, self.CTX, at=2.0))
        decision = engine.check(
            request("mgr1", [MANAGER], COMBINE, self.CTX, at=3.0)
        )
        assert decision.denied

    def test_fresh_manager_can_combine(self):
        engine = tax_engine()
        self.run_prefix(engine)
        engine.check(request("mgr1", [MANAGER], APPROVE, self.CTX, at=2.0))
        decision = engine.check(
            request("mgr3", [MANAGER], COMBINE, self.CTX, at=3.0)
        )
        assert decision.granted

    def test_process_instances_are_isolated(self):
        engine = tax_engine()
        self.run_prefix(engine)
        engine.check(request("mgr1", [MANAGER], APPROVE, self.CTX, at=2.0))
        # A different process instance: the same manager may approve.
        assert engine.check(
            request("clerk9", [CLERK], PREPARE, self.CTX_OTHER, at=3.0)
        ).granted
        decision = engine.check(
            request("mgr1", [MANAGER], APPROVE, self.CTX_OTHER, at=4.0)
        )
        assert decision.granted

    def test_confirm_terminates_the_instance(self):
        engine = tax_engine()
        self.run_prefix(engine)
        engine.check(request("mgr1", [MANAGER], APPROVE, self.CTX, at=2.0))
        confirm = engine.check(
            request("clerk2", [CLERK], CONFIRM, self.CTX, at=3.0)
        )
        assert confirm.granted
        assert confirm.records_purged > 0
        assert engine.store.find(self.CTX) == []


class TestFirstStep:
    def test_enforcement_waits_for_first_step(self):
        """Before the first step runs, the policy imposes nothing."""
        engine = tax_engine()
        decision = engine.check(
            request("mgr1", [MANAGER], APPROVE, TestExample2TaxRefund.CTX)
        )
        assert decision.granted
        assert engine.store.count() == 0  # nothing retained yet

    def test_pre_first_step_activity_is_not_history(self):
        engine = tax_engine()
        ctx = TestExample2TaxRefund.CTX
        engine.check(request("mgr1", [MANAGER], APPROVE, ctx, at=1.0))
        engine.check(request("clerk1", [CLERK], PREPARE, ctx, at=2.0))
        # mgr1's pre-start approval was never recorded, so they may
        # approve once after the process has started.
        decision = engine.check(request("mgr1", [MANAGER], APPROVE, ctx, at=3.0))
        assert decision.granted

    def test_first_step_starts_retention(self):
        engine = tax_engine()
        engine.check(
            request("clerk1", [CLERK], PREPARE, TestExample2TaxRefund.CTX)
        )
        assert engine.store.count() > 0


class TestStrictVsLiteral:
    def test_simultaneous_conflict_on_context_start(self):
        """A user activating both conflicting roles in the very first
        in-context request: strict mode denies, literal mode (the
        published step order) grants."""
        strict = bank_engine(mode=MODE_STRICT)
        literal = bank_engine(mode=MODE_LITERAL)
        req = request("alice", [TELLER, AUDITOR], AUDIT_BOOKS, YORK_2006)
        assert strict.check(req).denied
        req2 = request("alice", [TELLER, AUDITOR], AUDIT_BOOKS, YORK_2006)
        assert literal.check(req2).granted

    def test_literal_mode_catches_on_second_request(self):
        literal = bank_engine(mode=MODE_LITERAL)
        literal.check(
            request("alice", [TELLER, AUDITOR], AUDIT_BOOKS, YORK_2006, at=1.0)
        )
        decision = literal.check(
            request("alice", [TELLER], HANDLE_CASH, YORK_2006, at=2.0)
        )
        assert decision.denied

    def test_modes_agree_after_context_started(self):
        for mode in (MODE_STRICT, MODE_LITERAL):
            engine = bank_engine(mode=mode)
            engine.check(request("x", [TELLER], HANDLE_CASH, YORK_2006, at=1.0))
            engine.check(
                request("alice", [TELLER], HANDLE_CASH, YORK_2006, at=2.0)
            )
            decision = engine.check(
                request("alice", [AUDITOR], AUDIT_BOOKS, YORK_2006, at=3.0)
            )
            assert decision.denied, mode


class TestDenyNeverMutates:
    def test_deny_leaves_store_unchanged(self):
        engine = bank_engine()
        engine.check(request("alice", [TELLER], HANDLE_CASH, YORK_2006, at=1.0))
        before = store_digest(engine.store)
        decision = engine.check(
            request("alice", [AUDITOR], AUDIT_BOOKS, YORK_2006, at=2.0)
        )
        assert decision.denied
        assert store_digest(engine.store) == before

    def test_denied_last_step_does_not_purge(self):
        """If the last step itself violates a constraint, nothing is
        purged: the deny discards the whole buffered mutation."""
        engine = tax_engine()
        ctx = TestExample2TaxRefund.CTX
        engine.check(request("clerk1", [CLERK], PREPARE, ctx, at=1.0))
        before = store_digest(engine.store)
        decision = engine.check(request("clerk1", [CLERK], CONFIRM, ctx, at=2.0))
        assert decision.denied
        assert store_digest(engine.store) == before


class TestCardinalities:
    def test_two_out_of_three(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmers=[MMER([TELLER, AUDITOR, MANAGER], 2)],
                    policy_id="m2n3",
                )
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        ctx = ContextName.parse("P=1")
        assert engine.check(
            request("u", [TELLER], HANDLE_CASH, ctx, at=1.0)
        ).granted
        assert engine.check(
            request("u", [AUDITOR], AUDIT_BOOKS, ctx, at=2.0)
        ).denied
        assert engine.check(
            request("u", [MANAGER], AUDIT_BOOKS, ctx, at=3.0)
        ).denied

    def test_three_out_of_three(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("P=!"),
                    mmers=[MMER([TELLER, AUDITOR, MANAGER], 3)],
                    policy_id="m3n3",
                )
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        ctx = ContextName.parse("P=1")
        assert engine.check(
            request("u", [TELLER], HANDLE_CASH, ctx, at=1.0)
        ).granted
        assert engine.check(
            request("u", [AUDITOR], AUDIT_BOOKS, ctx, at=2.0)
        ).granted
        assert engine.check(
            request("u", [MANAGER], AUDIT_BOOKS, ctx, at=3.0)
        ).denied

    def test_unconstrained_role_untouched(self):
        engine = bank_engine()
        decision = engine.check(
            request("alice", [MANAGER], HANDLE_CASH, YORK_2006)
        )
        assert decision.granted


class TestSubordinateInstances:
    """Requests may carry contexts deeper than the policy's (Fig. 2)."""

    TILL = ContextName.parse("Branch=York, Period=2006, Till=3")
    OTHER_TILL = ContextName.parse("Branch=Leeds, Period=2006, Till=9")

    def test_deep_instance_matches_policy(self):
        engine = bank_engine()
        decision = engine.check(
            request("alice", [TELLER], HANDLE_CASH, self.TILL)
        )
        assert decision.granted
        assert decision.matched_policy_ids == ("bank",)

    def test_history_aggregates_across_subordinate_instances(self):
        """A teller at till 3 in York conflicts with auditing till 9 in
        Leeds: both instances roll up to [Branch=*, Period=2006]."""
        engine = bank_engine()
        engine.check(request("alice", [TELLER], HANDLE_CASH, self.TILL, at=1.0))
        decision = engine.check(
            request("alice", [AUDITOR], AUDIT_BOOKS, self.OTHER_TILL, at=2.0)
        )
        assert decision.denied

    def test_commit_audit_purges_subordinates(self):
        engine = bank_engine()
        engine.check(request("alice", [TELLER], HANDLE_CASH, self.TILL, at=1.0))
        commit = engine.check(
            request("bob", [AUDITOR], COMMIT_AUDIT, YORK_2006, at=2.0)
        )
        assert commit.granted
        assert engine.store.count() == 0


class TestImpliedTermination:
    def test_containing_context_termination_purges_contained(self):
        """Section 2.2: finishing a containing context implies the end of
        every contained instance; the application signals the engine."""
        engine = tax_engine()
        ctx_a = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=1")
        ctx_b = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=2")
        ctx_other = ContextName.parse("TaxOffice=York, taxRefundProcess=3")
        for at, ctx in enumerate((ctx_a, ctx_b, ctx_other), start=1):
            assert engine.check(
                request("clerk", [CLERK], PREPARE, ctx, at=float(at))
            ).granted
        # The Leeds tax office closes: everything under it terminates.
        purged = engine.notify_context_terminated(
            ContextName.parse("TaxOffice=Leeds")
        )
        assert purged > 0
        assert engine.store.find(ctx_a) == []
        assert engine.store.find(ctx_b) == []
        assert engine.store.find(ctx_other) != []
        # clerk may now prepare again in a re-opened Leeds instance.
        assert engine.check(
            request("clerk", [CLERK], CONFIRM, ctx_a, at=9.0)
        ).granted

    def test_termination_of_unknown_context_is_noop(self):
        engine = tax_engine()
        assert engine.notify_context_terminated(
            ContextName.parse("TaxOffice=Nowhere")
        ) == 0


class TestMultiplePolicies:
    def test_all_matching_policies_apply(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Branch=*, Period=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="pair",
                ),
                MSoDPolicy(
                    ContextName.parse("Branch=York, Period=!"),
                    mmers=[MMER([TELLER, MANAGER], 2)],
                    policy_id="york-only",
                ),
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        decision = engine.check(
            request("alice", [TELLER], HANDLE_CASH, YORK_2006)
        )
        assert decision.granted
        assert set(decision.matched_policy_ids) == {"pair", "york-only"}
        # york-only applies only in York.
        leeds = engine.check(request("bob", [TELLER], HANDLE_CASH, LEEDS_2006))
        assert leeds.matched_policy_ids == ("pair",)

    def test_deny_from_second_policy_discards_first_policy_records(self):
        policy_set = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Branch=*, Period=!"),
                    mmers=[MMER([TELLER, MANAGER], 2)],
                    policy_id="a",
                ),
                MSoDPolicy(
                    ContextName.parse("Branch=*, Period=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="b",
                ),
            ]
        )
        engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
        engine.check(request("u", [AUDITOR], AUDIT_BOOKS, YORK_2006, at=1.0))
        before = store_digest(engine.store)
        # Policy "a" would grant-and-record TELLER, but policy "b" denies.
        decision = engine.check(
            request("u", [TELLER], HANDLE_CASH, YORK_2006, at=2.0)
        )
        assert decision.denied
        assert store_digest(engine.store) == before

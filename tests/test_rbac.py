"""Unit tests for the ANSI RBAC substrate (Section 2.1, Figure 1)."""

import pytest

from repro.errors import (
    ConstraintError,
    ConstraintViolationError,
    DuplicateEntityError,
    RBACError,
    SessionError,
    UnknownEntityError,
)
from repro.rbac import (
    DsdConstraint,
    Permission,
    RBACSystem,
    RoleHierarchy,
    SsdConstraint,
)


@pytest.fixture
def bank():
    system = RBACSystem()
    for user in ("alice", "bob"):
        system.add_user(user)
    for role in ("teller", "auditor", "supervisor", "employee"):
        system.add_role(role)
    system.grant_permission("teller", Permission("handleCash", "till"))
    system.grant_permission("auditor", Permission("audit", "ledger"))
    system.grant_permission("employee", Permission("enter", "building"))
    return system


class TestPermission:
    def test_fields_validated(self):
        with pytest.raises(RBACError):
            Permission("", "obj")
        with pytest.raises(RBACError):
            Permission("op", "")

    def test_str(self):
        assert str(Permission("op", "obj")) == "(op, obj)"


class TestCoreAdministration:
    def test_duplicate_user_rejected(self, bank):
        with pytest.raises(DuplicateEntityError):
            bank.add_user("alice")

    def test_duplicate_role_rejected(self, bank):
        with pytest.raises(DuplicateEntityError):
            bank.add_role("teller")

    def test_assign_and_review(self, bank):
        bank.assign_user("alice", "teller")
        assert bank.assigned_roles("alice") == {"teller"}
        assert bank.assigned_users("teller") == {"alice"}

    def test_assign_unknown_entities(self, bank):
        with pytest.raises(UnknownEntityError):
            bank.assign_user("mallory", "teller")
        with pytest.raises(UnknownEntityError):
            bank.assign_user("alice", "ghost")

    def test_double_assignment_rejected(self, bank):
        bank.assign_user("alice", "teller")
        with pytest.raises(DuplicateEntityError):
            bank.assign_user("alice", "teller")

    def test_deassign(self, bank):
        bank.assign_user("alice", "teller")
        bank.deassign_user("alice", "teller")
        assert bank.assigned_roles("alice") == frozenset()

    def test_deassign_drops_active_role(self, bank):
        bank.assign_user("alice", "teller")
        session = bank.create_session("alice", ["teller"])
        bank.deassign_user("alice", "teller")
        assert bank.session_roles(session.session_id) == frozenset()

    def test_delete_user_terminates_sessions(self, bank):
        bank.assign_user("alice", "teller")
        session = bank.create_session("alice")
        bank.delete_user("alice")
        with pytest.raises(UnknownEntityError):
            bank.session_roles(session.session_id)

    def test_delete_role_cleans_relations(self, bank):
        bank.assign_user("alice", "teller")
        session = bank.create_session("alice", ["teller"])
        bank.delete_role("teller")
        assert "teller" not in bank.roles()
        assert bank.assigned_roles("alice") == frozenset()
        assert bank.session_roles(session.session_id) == frozenset()

    def test_grant_revoke_permission(self, bank):
        permission = Permission("count", "vault")
        bank.grant_permission("teller", permission)
        assert permission in bank.role_permissions("teller")
        bank.revoke_permission("teller", permission)
        assert permission not in bank.role_permissions("teller")

    def test_duplicate_grant_rejected(self, bank):
        with pytest.raises(DuplicateEntityError):
            bank.grant_permission("teller", Permission("handleCash", "till"))


class TestHierarchy:
    def test_inheritance_gives_permissions(self, bank):
        bank.add_inheritance("supervisor", "teller")
        assert Permission("handleCash", "till") in bank.role_permissions(
            "supervisor"
        )

    def test_authorized_roles_closure(self, bank):
        bank.add_inheritance("supervisor", "teller")
        bank.add_inheritance("teller", "employee")
        bank.assign_user("alice", "supervisor")
        assert bank.authorized_roles("alice") == {
            "supervisor",
            "teller",
            "employee",
        }

    def test_authorized_users(self, bank):
        bank.add_inheritance("supervisor", "teller")
        bank.assign_user("alice", "supervisor")
        bank.assign_user("bob", "teller")
        assert bank.authorized_users("teller") == {"alice", "bob"}
        assert bank.authorized_users("supervisor") == {"alice"}

    def test_cycle_rejected(self, bank):
        bank.add_inheritance("supervisor", "teller")
        with pytest.raises(RBACError):
            bank.add_inheritance("teller", "supervisor")

    def test_self_inheritance_rejected(self, bank):
        with pytest.raises(RBACError):
            bank.add_inheritance("teller", "teller")

    def test_duplicate_edge_rejected(self, bank):
        bank.add_inheritance("supervisor", "teller")
        with pytest.raises(RBACError):
            bank.add_inheritance("supervisor", "teller")

    def test_delete_inheritance(self, bank):
        bank.add_inheritance("supervisor", "teller")
        bank.delete_inheritance("supervisor", "teller")
        assert Permission("handleCash", "till") not in bank.role_permissions(
            "supervisor"
        )

    def test_add_ascendant_descendant(self, bank):
        bank.add_ascendant("branch-manager", "supervisor")
        bank.add_descendant("trainee", "teller")
        assert bank.hierarchy.inherits("branch-manager", "supervisor")
        assert bank.hierarchy.inherits("teller", "trainee")

    def test_limited_hierarchy(self):
        hierarchy = RoleHierarchy(limited=True)
        for role in ("a", "b", "c"):
            hierarchy.add_role(role)
        hierarchy.add_inheritance("a", "b")
        with pytest.raises(RBACError):
            hierarchy.add_inheritance("a", "c")

    def test_transitive_queries(self):
        hierarchy = RoleHierarchy()
        for role in ("a", "b", "c"):
            hierarchy.add_role(role)
        hierarchy.add_inheritance("a", "b")
        hierarchy.add_inheritance("b", "c")
        assert hierarchy.juniors_of("a") == {"b", "c"}
        assert hierarchy.seniors_of("c") == {"a", "b"}
        assert hierarchy.inherits("a", "c")
        assert not hierarchy.inherits("c", "a")


class TestSsd:
    def test_assignment_blocked(self, bank):
        bank.create_ssd_set("sod", ["teller", "auditor"], 2)
        bank.assign_user("alice", "teller")
        with pytest.raises(ConstraintViolationError):
            bank.assign_user("alice", "auditor")

    def test_ssd_respects_hierarchy(self, bank):
        bank.add_inheritance("supervisor", "teller")
        bank.create_ssd_set("sod", ["teller", "auditor"], 2)
        bank.assign_user("alice", "auditor")
        # supervisor inherits teller, so the authorized set would conflict.
        with pytest.raises(ConstraintViolationError):
            bank.assign_user("alice", "supervisor")

    def test_creating_violated_ssd_set_rejected(self, bank):
        bank.assign_user("alice", "teller")
        bank.assign_user("alice", "auditor")
        with pytest.raises(ConstraintViolationError):
            bank.create_ssd_set("sod", ["teller", "auditor"], 2)
        assert "sod" not in bank.ssd_role_sets()

    def test_inheritance_rolled_back_on_ssd_violation(self, bank):
        bank.create_ssd_set("sod", ["teller", "auditor"], 2)
        bank.assign_user("alice", "auditor")
        bank.assign_user("alice", "supervisor")
        with pytest.raises(ConstraintViolationError):
            bank.add_inheritance("supervisor", "teller")
        assert not bank.hierarchy.inherits("supervisor", "teller")

    def test_cardinality_three(self, bank):
        bank.create_ssd_set("sod3", ["teller", "auditor", "supervisor"], 3)
        bank.assign_user("alice", "teller")
        bank.assign_user("alice", "auditor")
        with pytest.raises(ConstraintViolationError):
            bank.assign_user("alice", "supervisor")

    def test_delete_ssd_set(self, bank):
        bank.create_ssd_set("sod", ["teller", "auditor"], 2)
        bank.delete_ssd_set("sod")
        bank.assign_user("alice", "teller")
        bank.assign_user("alice", "auditor")  # no longer constrained

    def test_constraint_validation(self):
        with pytest.raises(ConstraintError):
            SsdConstraint("bad", ["only-one"], 2)
        with pytest.raises(ConstraintError):
            SsdConstraint("bad", ["a", "b"], 1)
        with pytest.raises(ConstraintError):
            SsdConstraint("", ["a", "b"], 2)


class TestSessionsAndDsd:
    def test_activation_requires_authorization(self, bank):
        session = bank.create_session("alice")
        with pytest.raises(SessionError):
            bank.add_active_role(session.session_id, "teller")

    def test_activation_via_hierarchy(self, bank):
        bank.add_inheritance("supervisor", "teller")
        bank.assign_user("alice", "supervisor")
        session = bank.create_session("alice")
        bank.add_active_role(session.session_id, "teller")
        assert bank.session_roles(session.session_id) == {"teller"}

    def test_dsd_blocks_simultaneous_activation(self, bank):
        bank.create_dsd_set("dsd", ["teller", "auditor"], 2)
        bank.assign_user("alice", "teller")
        bank.assign_user("alice", "auditor")
        session = bank.create_session("alice", ["teller"])
        with pytest.raises(ConstraintViolationError):
            bank.add_active_role(session.session_id, "auditor")

    def test_dsd_allows_sequential_sessions(self, bank):
        """The exact blind spot of Example 1: conflicting roles in
        *different* sessions pass DSD."""
        bank.create_dsd_set("dsd", ["teller", "auditor"], 2)
        bank.assign_user("alice", "teller")
        bank.assign_user("alice", "auditor")
        first = bank.create_session("alice", ["teller"])
        bank.delete_session(first.session_id)
        second = bank.create_session("alice", ["auditor"])
        assert bank.session_roles(second.session_id) == {"auditor"}

    def test_create_session_rolls_back_on_dsd_violation(self, bank):
        bank.create_dsd_set("dsd", ["teller", "auditor"], 2)
        bank.assign_user("alice", "teller")
        bank.assign_user("alice", "auditor")
        with pytest.raises(ConstraintViolationError):
            bank.create_session("alice", ["teller", "auditor"])
        assert bank.sessions() == {}

    def test_creating_violated_dsd_set_rejected(self, bank):
        bank.assign_user("alice", "teller")
        bank.assign_user("alice", "auditor")
        bank.create_session("alice", ["teller", "auditor"])
        with pytest.raises(ConstraintViolationError):
            bank.create_dsd_set("dsd", ["teller", "auditor"], 2)

    def test_drop_active_role(self, bank):
        bank.assign_user("alice", "teller")
        session = bank.create_session("alice", ["teller"])
        bank.drop_active_role(session.session_id, "teller")
        assert bank.session_roles(session.session_id) == frozenset()

    def test_check_access(self, bank):
        bank.assign_user("alice", "teller")
        session = bank.create_session("alice", ["teller"])
        assert bank.check_access(session.session_id, "handleCash", "till")
        assert not bank.check_access(session.session_id, "audit", "ledger")

    def test_check_access_through_hierarchy(self, bank):
        bank.add_inheritance("supervisor", "teller")
        bank.assign_user("alice", "supervisor")
        session = bank.create_session("alice", ["supervisor"])
        assert bank.check_access(session.session_id, "handleCash", "till")

    def test_terminated_session_unusable(self, bank):
        bank.assign_user("alice", "teller")
        session = bank.create_session("alice")
        bank.delete_session(session.session_id)
        with pytest.raises(UnknownEntityError):
            bank.add_active_role(session.session_id, "teller")


class TestReviewFunctions:
    def test_user_permissions(self, bank):
        bank.add_inheritance("teller", "employee")
        bank.assign_user("alice", "teller")
        assert bank.user_permissions("alice") == {
            Permission("handleCash", "till"),
            Permission("enter", "building"),
        }

    def test_session_permissions(self, bank):
        bank.add_inheritance("teller", "employee")
        bank.assign_user("alice", "teller")
        session = bank.create_session("alice", ["teller"])
        assert Permission("enter", "building") in bank.session_permissions(
            session.session_id
        )

    def test_operations_on_object(self, bank):
        bank.assign_user("alice", "teller")
        assert bank.role_operations_on_object("teller", "till") == {"handleCash"}
        assert bank.user_operations_on_object("alice", "till") == {"handleCash"}
        assert bank.user_operations_on_object("alice", "ledger") == frozenset()

"""Tests for the differential what-if replay (pipeline stage 2)."""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import (
    EVENT_DECISION,
    EVENT_PURGE,
    AuditTrailManager,
    decision_event_payload,
)
from repro.core import (
    MMER,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
    SQLiteRetainedADIStore,
)
from repro.errors import AuditTrailError
from repro.verify import (
    WhatIfReport,
    decision_request_from_payload,
    what_if_replay,
)

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")

KEY = b"whatif-test-key"


def bank_set(roles=(TELLER, AUDITOR), m=2, policy_id="bank"):
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER(list(roles), m)],
                policy_id=policy_id,
            )
        ]
    )


def request(user, role, period="P1", timestamp=1.0, request_id=None):
    operation, target = (
        ("handleCash", "till://1")
        if role == TELLER
        else ("auditBooks", "ledger://1")
    )
    kwargs = {} if request_id is None else {"request_id": request_id}
    return DecisionRequest(
        user_id=user,
        roles=(role,),
        operation=operation,
        target=target,
        context_instance=ContextName.parse(f"Branch=York, Period={period}"),
        timestamp=timestamp,
        **kwargs,
    )


def record_trail(directory, requests, policy_set):
    """Decide ``requests`` and append each decision to a fresh trail."""
    trails = AuditTrailManager(directory, KEY, fsync=False)
    engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
    effects = []
    for req in requests:
        decision = engine.check(req)
        trails.append(
            EVENT_DECISION, req.timestamp, decision_event_payload(decision)
        )
        effects.append(decision.effect)
    return engine, effects


def reader(directory):
    return AuditTrailManager(directory, KEY, tolerate_ahead=True)


MIXED_REQUESTS = [
    request("alice", TELLER, timestamp=1.0),
    request("alice", AUDITOR, timestamp=2.0),  # denied under 2-of-{T,A}
    request("bob", AUDITOR, timestamp=3.0),
    request("bob", TELLER, timestamp=4.0),  # denied
    request("carol", TELLER, period="P2", timestamp=5.0),
]


# ----------------------------------------------------------------------
class TestSameSetIsFixpoint:
    def test_zero_flips_and_exact_counts(self, tmp_path):
        record_trail(str(tmp_path), MIXED_REQUESTS, bank_set())
        report = what_if_replay(reader(str(tmp_path)), bank_set())
        assert report.flip_count == 0
        assert report.flips == ()
        assert report.decisions_replayed == len(MIXED_REQUESTS)
        assert report.events_scanned == len(MIXED_REQUESTS)

    def test_bit_identical_across_memory_and_sqlite(self, tmp_path):
        record_trail(str(tmp_path), MIXED_REQUESTS, bank_set())
        memory = what_if_replay(
            reader(str(tmp_path)), bank_set(), InMemoryRetainedADIStore()
        )
        sqlite_store = SQLiteRetainedADIStore(str(tmp_path / "replay.db"))
        try:
            sqlite = what_if_replay(
                reader(str(tmp_path)), bank_set(), sqlite_store
            )
        finally:
            sqlite_store.close()
        assert memory == sqlite
        assert memory.to_dict() == sqlite.to_dict()

    def test_replay_applies_recorded_purges(self, tmp_path):
        trails = AuditTrailManager(str(tmp_path), KEY, fsync=False)
        engine = MSoDEngine(bank_set(), InMemoryRetainedADIStore())
        first = engine.check(request("alice", TELLER, timestamp=1.0))
        trails.append(EVENT_DECISION, 1.0, decision_event_payload(first))
        # An administrative purge wipes the context on both sides.
        context = ContextName.parse("Branch=York, Period=P1")
        engine.store.purge_context(context)
        trails.append(EVENT_PURGE, 2.0, {"context": str(context)})
        second = engine.check(request("alice", AUDITOR, timestamp=3.0))
        assert second.granted  # history was purged
        trails.append(EVENT_DECISION, 3.0, decision_event_payload(second))
        report = what_if_replay(reader(str(tmp_path)), bank_set())
        assert report.flip_count == 0
        assert report.decisions_replayed == 2


# ----------------------------------------------------------------------
class TestFlipDetection:
    def test_tightened_set_reports_the_exact_flip(self, tmp_path):
        # Under 3-of-{T,A,C} alice may hold Teller and Auditor; the
        # tightened 2-of-{T,A} candidate flips exactly her second grant.
        history = [
            request("alice", TELLER, timestamp=1.0, request_id="r1"),
            request("alice", AUDITOR, timestamp=2.0, request_id="r2"),
            request("bob", TELLER, timestamp=3.0, request_id="r3"),
        ]
        _, effects = record_trail(
            str(tmp_path), history, bank_set((TELLER, AUDITOR, CLERK), 3)
        )
        assert effects == ["grant", "grant", "grant"]
        report = what_if_replay(reader(str(tmp_path)), bank_set())
        assert report.flip_count == 1
        assert report.grant_to_deny == 1
        assert report.deny_to_grant == 0
        flip = report.flips[0]
        assert flip.request_id == "r2"
        assert flip.user_id == "alice"
        assert flip.operation == "auditBooks"
        assert flip.recorded_effect == "grant"
        assert flip.replayed_effect == "deny"
        assert flip.replayed_policy_id == "bank"
        assert "MMER" in flip.replayed_constraint

    def test_swapped_roles_flip_a_recorded_deny_to_grant(self, tmp_path):
        record_trail(str(tmp_path), MIXED_REQUESTS, bank_set())
        report = what_if_replay(
            reader(str(tmp_path)), bank_set((TELLER, MANAGER))
        )
        assert report.deny_to_grant == 2  # alice's and bob's denials
        assert report.grant_to_deny == 0

    def test_flip_detail_cap_keeps_counts_exact(self, tmp_path):
        record_trail(str(tmp_path), MIXED_REQUESTS, bank_set())
        report = what_if_replay(
            reader(str(tmp_path)),
            bank_set((TELLER, MANAGER)),
            max_flips_recorded=1,
        )
        assert len(report.flips) == 1
        assert report.flip_count == 2

    def test_since_filter_skips_older_events(self, tmp_path):
        record_trail(str(tmp_path), MIXED_REQUESTS, bank_set())
        report = what_if_replay(
            reader(str(tmp_path)), bank_set((TELLER, MANAGER)), since=3.0
        )
        # Only bob's deny (t=4) remains flippable after the cutoff.
        assert report.deny_to_grant == 1


# ----------------------------------------------------------------------
class TestReportMechanics:
    def test_round_trip(self, tmp_path):
        record_trail(str(tmp_path), MIXED_REQUESTS, bank_set())
        report = what_if_replay(
            reader(str(tmp_path)), bank_set((TELLER, MANAGER))
        )
        clone = WhatIfReport.from_dict(report.to_dict())
        assert clone == report

    def test_flip_str_mentions_direction(self, tmp_path):
        record_trail(str(tmp_path), MIXED_REQUESTS, bank_set())
        report = what_if_replay(
            reader(str(tmp_path)), bank_set((TELLER, MANAGER))
        )
        assert "deny->grant" in str(report.flips[0])

    def test_payload_without_request_is_an_error(self):
        with pytest.raises(AuditTrailError):
            decision_request_from_payload({"effect": "grant"})


# ----------------------------------------------------------------------
@st.composite
def request_streams(draw):
    """Short random decision streams over a handful of users/roles."""
    entries = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # user
                st.sampled_from([TELLER, AUDITOR]),
                st.integers(min_value=1, max_value=2),  # period
            ),
            min_size=1,
            max_size=25,
        )
    )
    return [
        request(
            f"user-{user}", role, period=f"P{period}", timestamp=float(index)
        )
        for index, (user, role, period) in enumerate(entries)
    ]


@settings(max_examples=25, deadline=None)
@given(stream=request_streams())
def test_property_same_set_replay_is_deterministic_fixpoint(stream):
    """Replaying any trail under its own set flips nothing, and the
    report is bit-identical across memory and SQLite replay stores."""
    with tempfile.TemporaryDirectory() as directory:
        record_trail(directory, stream, bank_set())
        memory = what_if_replay(
            reader(directory), bank_set(), InMemoryRetainedADIStore()
        )
        sqlite_store = SQLiteRetainedADIStore(f"{directory}/replay.db")
        try:
            sqlite = what_if_replay(reader(directory), bank_set(), sqlite_store)
        finally:
            sqlite_store.close()
        assert memory.flip_count == 0
        assert memory.decisions_replayed == len(stream)
        assert memory.to_dict() == sqlite.to_dict()

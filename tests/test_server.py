"""Tests for the sharded authorization service and its TCP front end."""

import asyncio
import json

import pytest

from repro.core import (
    MMER,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
    SQLiteRetainedADIStore,
)
from repro.perf import PerfRecorder
from repro.server import (
    AuthorizationService,
    MSoDServer,
    ServerThread,
    ServiceOverloadedError,
    ServiceUnavailableError,
    protocol,
    shard_of,
)

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def bank_policy_set():
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                policy_id="bank",
            )
        ]
    )


def make_engine(store=None):
    return MSoDEngine(bank_policy_set(), store or InMemoryRetainedADIStore())


def make_request(user, role, index=0, period="P1"):
    operation, target = (
        ("handleCash", "till://1") if role is TELLER else ("auditBooks", "l://1")
    )
    return DecisionRequest(
        user_id=user,
        roles=(role,),
        operation=operation,
        target=target,
        context_instance=ContextName.parse(f"Branch=York, Period={period}"),
        timestamp=float(index),
    )


class TestSharding:
    def test_shard_is_deterministic_and_in_range(self):
        for n_shards in (1, 2, 7, 64):
            for user in ("alice", "bob", "", "user-9999", "ünïcode"):
                shard = shard_of(user, n_shards)
                assert 0 <= shard < n_shards
                assert shard == shard_of(user, n_shards)

    def test_shards_spread_users(self):
        shards = {shard_of(f"user-{index}", 8) for index in range(200)}
        assert len(shards) == 8


class TestService:
    def test_decide_and_metrics(self):
        async def scenario():
            service = AuthorizationService(make_engine(), n_shards=2)
            await service.start()
            grant = await service.decide(make_request("alice", TELLER))
            deny = await service.decide(make_request("alice", AUDITOR, index=1))
            await service.stop()
            return grant, deny, service.metrics()

        grant, deny, metrics = asyncio.run(scenario())
        assert grant.granted and deny.denied
        shard = shard_of("alice", 2)
        assert metrics["shards"][shard]["submitted"] == 2
        assert metrics["shards"][shard]["completed"] == 2

    def test_rejects_before_start_and_after_stop(self):
        async def scenario():
            service = AuthorizationService(make_engine())
            with pytest.raises(ServiceUnavailableError):
                service.submit(make_request("alice", TELLER))
            await service.start()
            await service.stop()
            with pytest.raises(ServiceUnavailableError):
                service.submit(make_request("alice", TELLER))

        asyncio.run(scenario())

    def test_overload_sheds_with_retry_after(self):
        async def scenario():
            service = AuthorizationService(
                make_engine(), n_shards=1, queue_depth=4, retry_after=0.125
            )
            await service.start()
            # submit() is synchronous: the worker task cannot drain until
            # we yield, so the fifth request must be shed.
            futures = [
                service.submit(make_request(f"u{index}", TELLER, index))
                for index in range(4)
            ]
            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.submit(make_request("u-late", TELLER, 99))
            assert excinfo.value.retry_after == 0.125
            decisions = await asyncio.gather(*futures)
            await service.stop()
            return decisions, service.metrics()

        decisions, metrics = asyncio.run(scenario())
        assert all(decision.granted for decision in decisions)
        assert metrics["shards"][0]["rejected"] == 1
        assert metrics["perf"]["counters"] == {}  # NOOP records nothing

    def test_graceful_drain_answers_queued_work(self):
        async def scenario():
            flushed = []

            def sink(decision):
                pass

            sink.flush = lambda: flushed.append(True)
            service = AuthorizationService(
                make_engine(), n_shards=2, audit_sink=sink
            )
            await service.start()
            futures = [
                service.submit(make_request(f"user-{index}", TELLER, index))
                for index in range(20)
            ]
            await service.stop()
            decisions = await asyncio.gather(*futures)
            return decisions, flushed

        decisions, flushed = asyncio.run(scenario())
        assert len(decisions) == 20
        assert all(decision.granted for decision in decisions)
        assert flushed == [True]

    def test_same_user_requests_serialize_in_submission_order(self):
        """One user's stream lands on one shard: FIFO, race-free."""

        async def scenario():
            service = AuthorizationService(make_engine(), n_shards=8)
            await service.start()
            futures = [
                service.submit(
                    make_request("alice", TELLER if index % 2 else AUDITOR, index)
                )
                for index in range(12)
            ]
            decisions = await asyncio.gather(*futures)
            await service.stop()
            return decisions

        decisions = asyncio.run(scenario())
        # First request (auditor) wins the MMER; every teller request
        # afterwards must deny, deterministically, because the shard
        # serializes them behind it.
        assert decisions[0].granted
        effects = [decision.effect for decision in decisions]
        assert effects == ["grant" if i % 2 == 0 else "deny" for i in range(12)]

    def test_micro_batches_share_one_store_batch(self):
        perf = PerfRecorder()
        store = SQLiteRetainedADIStore(":memory:")

        async def scenario():
            service = AuthorizationService(
                make_engine(store), n_shards=1, batch_max=16, perf=perf
            )
            await service.start()
            futures = [
                service.submit(make_request(f"user-{index}", TELLER, index))
                for index in range(10)
            ]
            await asyncio.gather(*futures)
            await service.stop()
            return service.metrics()

        metrics = asyncio.run(scenario())
        store.close()
        # All ten were queued before the worker first ran, so they drain
        # as one micro-batch (one SQLite transaction).
        assert metrics["shards"][0]["max_batch"] == 10
        assert perf.counter("server.batches") < 10
        assert perf.counter("server.decided") == 10

    def test_engine_failure_fails_only_its_future(self):
        class ExplodingEngine:
            def __init__(self, engine):
                self._engine = engine
                self.store = engine.store

            def check(self, request):
                if request.user_id == "boom":
                    raise RuntimeError("engine exploded")
                return self._engine.check(request)

        async def scenario():
            service = AuthorizationService(ExplodingEngine(make_engine()), n_shards=1)
            await service.start()
            bad = service.submit(make_request("boom", TELLER, 0))
            good = service.submit(make_request("fine", TELLER, 1))
            results = await asyncio.gather(bad, good, return_exceptions=True)
            await service.stop()
            return results

        bad, good = asyncio.run(scenario())
        assert isinstance(bad, RuntimeError)
        assert good.granted


async def tcp_exchange(writer, reader, frame):
    writer.write(protocol.encode_frame(frame))
    await writer.drain()
    return protocol.decode_frame(await reader.readline())


class TestTCPServer:
    def run_with_server(self, scenario):
        async def runner():
            server = MSoDServer(AuthorizationService(make_engine(), n_shards=2))
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                try:
                    return await asyncio.wait_for(
                        scenario(server, reader, writer), timeout=20
                    )
                finally:
                    writer.close()
            finally:
                await server.stop()

        return asyncio.run(runner())

    def test_decide_round_trip(self):
        async def scenario(server, reader, writer):
            request = make_request("alice", TELLER)
            frame = protocol.request_frame(
                "decide", "c-1", request=protocol.request_to_wire(request)
            )
            return await tcp_exchange(writer, reader, frame), request

        response, request = self.run_with_server(scenario)
        assert response["ok"] is True and response["id"] == "c-1"
        decision = protocol.decision_from_wire(response["decision"])
        assert decision.granted
        assert decision.request == request

    def test_healthz_and_metrics(self):
        async def scenario(server, reader, writer):
            health = await tcp_exchange(
                writer, reader, protocol.request_frame("healthz", "h-1")
            )
            metrics = await tcp_exchange(
                writer, reader, protocol.request_frame("metrics", "m-1")
            )
            return health, metrics

        health, metrics = self.run_with_server(scenario)
        assert health["body"]["status"] == "ok"
        assert health["body"]["queue_depths"] == [0, 0]
        assert len(metrics["body"]["shards"]) == 2

    def test_malformed_frames_answered_not_fatal(self):
        async def scenario(server, reader, writer):
            responses = []
            for junk in (
                b"not json at all\n",
                b'\xff\xfe\x00garbage\n',
                b'{"v": 99, "op": "decide"}\n',
                b'{"v": 1, "op": "warp"}\n',
                b'{"v": 1, "op": "decide", "request": {"user_id": 5}}\n',
                b'[1,2,3]\n',
            ):
                writer.write(junk)
                await writer.drain()
                responses.append(protocol.decode_frame(await reader.readline()))
            # The connection and server survive: a real decide still works.
            ok = await tcp_exchange(
                writer,
                reader,
                protocol.request_frame(
                    "decide",
                    "after-junk",
                    request=protocol.request_to_wire(make_request("bob", TELLER)),
                ),
            )
            return responses, ok

        responses, ok = self.run_with_server(scenario)
        for response in responses:
            assert response["ok"] is False
            assert response["error"]["kind"] == "protocol"
        assert ok["ok"] is True

    def test_oversized_frame_closes_connection(self):
        async def scenario(server, reader, writer):
            writer.write(b"x" * (protocol.MAX_FRAME_BYTES + 100) + b"\n")
            await writer.drain()
            response = protocol.decode_frame(await reader.readline())
            eof = await reader.readline()
            return response, eof

        response, eof = self.run_with_server(scenario)
        assert response["ok"] is False
        assert response["error"]["kind"] == "protocol"
        assert eof == b""  # server closed the corrupt connection

    def test_truncated_frame_then_eof_is_harmless(self):
        """A client dying mid-frame must not wedge or crash the server."""

        async def scenario(server, reader, writer):
            writer.write(b'{"v": 1, "op": "deci')  # no newline, then EOF
            await writer.drain()
            writer.close()
            # A fresh connection still gets served.
            reader2, writer2 = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                return await tcp_exchange(
                    writer2, reader2, protocol.request_frame("healthz", "h-2")
                )
            finally:
                writer2.close()

        response = self.run_with_server(scenario)
        assert response["ok"] is True

    def test_drain_rejects_new_work_with_shutting_down(self):
        async def scenario():
            service = AuthorizationService(make_engine(), n_shards=1)
            server = MSoDServer(service)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                service._accepting = False  # simulate drain mid-connection
                response = await tcp_exchange(
                    writer,
                    reader,
                    protocol.request_frame(
                        "decide",
                        "late",
                        request=protocol.request_to_wire(
                            make_request("alice", TELLER)
                        ),
                    ),
                )
            finally:
                writer.close()
                service._accepting = True
                await server.stop()
            return response

        response = asyncio.run(scenario())
        assert response["ok"] is False
        assert response["error"]["kind"] == "shutting-down"


class TestServerThread:
    def test_thread_harness_round_trip(self):
        import socket

        with ServerThread(AuthorizationService(make_engine(), n_shards=2)) as server:
            assert server.port != 0
            with socket.create_connection(
                (server.host, server.port), timeout=5
            ) as sock:
                sock.sendall(
                    protocol.encode_frame(protocol.request_frame("healthz", "t-1"))
                )
                line = sock.makefile("rb").readline()
            body = json.loads(line)
            assert body["ok"] is True

"""Integration tests: the full stack across both paper examples.

These tests wire every subsystem together exactly as Figure 4 describes:
privilege allocation → LDAP-like directory → CVS → PDP (RBAC + MSoD) →
secure audit trail, with retained-ADI recovery across PDP restarts.
"""

import pytest

from repro.audit import AuditTrailManager
from repro.core import ContextName, Privilege, Role, SQLiteRetainedADIStore
from repro.permis import (
    LdapDirectory,
    PermisPDP,
    PermisPolicyBuilder,
    PrivilegeAllocator,
    TrustStore,
)
from repro.xmlpolicy import combined_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")

HANDLE_CASH = Privilege("handleCash", "till://main")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://main")
COMMIT_AUDIT = Privilege("CommitAudit", "http://audit.location.com/audit")
PREPARE = Privilege("prepareCheck", "http://www.myTaxOffice.com/Check")
APPROVE = Privilege("approve/disapproveCheck", "http://www.myTaxOffice.com/Check")
COMBINE = Privilege("combineResults", "http://secret.location.com/results")
CONFIRM = Privilege("confirmCheck", "http://secret.location.com/audit")

BANK_SOA = "cn=BankSOA,o=bank,c=gb"
TAX_SOA = "cn=TaxSOA,o=tax,c=gb"
TRAIL_KEY = b"integration-trail-key"


@pytest.fixture
def world(tmp_path):
    """A two-domain world: a bank and a tax office, one PDP."""
    directory = LdapDirectory()
    bank_soa = PrivilegeAllocator(BANK_SOA, b"bank-key", directory)
    tax_soa = PrivilegeAllocator(TAX_SOA, b"tax-key", directory)
    trust = TrustStore()
    trust.trust(bank_soa.soa_dn, bank_soa.verification_key)
    trust.trust(tax_soa.soa_dn, tax_soa.verification_key)
    policy = (
        PermisPolicyBuilder()
        .allow_assignment(BANK_SOA, [TELLER, AUDITOR], "o=bank,c=gb")
        .allow_assignment(TAX_SOA, [CLERK, MANAGER], "o=tax,c=gb")
        .grant(TELLER, [HANDLE_CASH])
        .grant(AUDITOR, [AUDIT_BOOKS, COMMIT_AUDIT])
        .grant(CLERK, [PREPARE, CONFIRM])
        .grant(MANAGER, [APPROVE, COMBINE])
        .with_msod(combined_policy_set())
        .build()
    )
    audit = AuditTrailManager(str(tmp_path / "trails"), TRAIL_KEY, max_records=50)
    pdp = PermisPDP(policy, trust, directory, audit=audit)
    return {
        "directory": directory,
        "bank_soa": bank_soa,
        "tax_soa": tax_soa,
        "trust": trust,
        "policy": policy,
        "audit": audit,
        "pdp": pdp,
    }


class TestBankLifecycle:
    """Example 1, end to end, across a PDP restart."""

    CTX_2006 = ContextName.parse("Branch=York, Period=2006")
    CTX_LEEDS = ContextName.parse("Branch=Leeds, Period=2006")

    def test_promotion_conflict_survives_restart(self, world):
        alice = "cn=alice,o=bank,c=gb"
        world["bank_soa"].issue(alice, [TELLER], 0, 1000)
        pdp = world["pdp"]
        assert pdp.decision(
            alice, "handleCash", "till://main", self.CTX_2006, at=1.0
        ).granted

        # Alice is promoted to auditor; her old credential lapses but the
        # MSoD history persists for the audit period.
        world["bank_soa"].issue(alice, [AUDITOR], 0, 1000)

        # --- the PDP "crashes" and restarts, recovering from the trails.
        restarted = PermisPDP.startup(
            world["policy"],
            world["trust"],
            world["audit"],
            directory=world["directory"],
        )
        decision = restarted.decision(
            alice, "auditBooks", "ledger://main", self.CTX_LEEDS, at=2.0
        )
        assert decision.denied  # cross-branch, cross-session, post-restart

    def test_commit_audit_closes_the_period(self, world):
        alice = "cn=alice,o=bank,c=gb"
        victor = "cn=victor,o=bank,c=gb"
        world["bank_soa"].issue(alice, [TELLER], 0, 1000)
        world["bank_soa"].issue(victor, [AUDITOR], 0, 1000)
        pdp = world["pdp"]
        pdp.decision(alice, "handleCash", "till://main", self.CTX_2006, at=1.0)
        commit = pdp.decision(
            victor,
            "CommitAudit",
            "http://audit.location.com/audit",
            self.CTX_2006,
            at=2.0,
        )
        assert commit.granted
        assert pdp.retained_adi.count() == 0
        # After restart the purge must hold (it was audited).
        restarted = PermisPDP.startup(
            world["policy"],
            world["trust"],
            world["audit"],
            directory=world["directory"],
        )
        assert restarted.retained_adi.count() == 0

    def test_sqlite_store_needs_no_replay(self, world, tmp_path):
        """The Section 6 fix: a relational retained ADI persists without
        audit-trail replay."""
        alice = "cn=alice,o=bank,c=gb"
        world["bank_soa"].issue(alice, [TELLER], 0, 1000)
        db_path = str(tmp_path / "adi.db")
        store = SQLiteRetainedADIStore(db_path)
        pdp = PermisPDP(
            world["policy"], world["trust"], world["directory"], store=store
        )
        assert pdp.decision(
            alice, "handleCash", "till://main", self.CTX_2006, at=1.0
        ).granted
        store.close()

        world["bank_soa"].issue(alice, [AUDITOR], 0, 1000)
        fresh_store = SQLiteRetainedADIStore(db_path)
        fresh_pdp = PermisPDP(
            world["policy"], world["trust"], world["directory"], store=fresh_store
        )
        decision = fresh_pdp.decision(
            alice, "auditBooks", "ledger://main", self.CTX_2006, at=2.0
        )
        assert decision.denied
        fresh_store.close()


class TestTaxRefundLifecycle:
    """Example 2, end to end, through the PERMIS pipeline."""

    CTX = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=7001")

    def _staff(self, world):
        people = {
            "clerk1": "cn=clerk1,o=tax,c=gb",
            "clerk2": "cn=clerk2,o=tax,c=gb",
            "mgr1": "cn=mgr1,o=tax,c=gb",
            "mgr2": "cn=mgr2,o=tax,c=gb",
            "mgr3": "cn=mgr3,o=tax,c=gb",
        }
        for name, dn in people.items():
            role = CLERK if name.startswith("clerk") else MANAGER
            world["tax_soa"].issue(dn, [role], 0, 1000)
        return people

    def test_compliant_process(self, world):
        pdp = world["pdp"]
        staff = self._staff(world)
        steps = [
            (staff["clerk1"], PREPARE),
            (staff["mgr1"], APPROVE),
            (staff["mgr2"], APPROVE),
            (staff["mgr3"], COMBINE),
            (staff["clerk2"], CONFIRM),
        ]
        for at, (user, privilege) in enumerate(steps, start=1):
            decision = pdp.decision(
                user, privilege.operation, privilege.target, self.CTX, at=float(at)
            )
            assert decision.granted, (user, privilege)
        assert pdp.retained_adi.find(self.CTX) == []  # instance closed

    def test_violations_denied_mid_process(self, world):
        pdp = world["pdp"]
        staff = self._staff(world)
        pdp.decision(staff["clerk1"], PREPARE.operation, PREPARE.target, self.CTX, at=1.0)
        pdp.decision(staff["mgr1"], APPROVE.operation, APPROVE.target, self.CTX, at=2.0)
        # mgr1 approving again: denied.
        assert pdp.decision(
            staff["mgr1"], APPROVE.operation, APPROVE.target, self.CTX, at=3.0
        ).denied
        # mgr1 combining: denied.
        assert pdp.decision(
            staff["mgr1"], COMBINE.operation, COMBINE.target, self.CTX, at=4.0
        ).denied
        # clerk1 confirming their own check: denied.
        assert pdp.decision(
            staff["clerk1"], CONFIRM.operation, CONFIRM.target, self.CTX, at=5.0
        ).denied

    def test_restart_mid_process_preserves_constraints(self, world):
        pdp = world["pdp"]
        staff = self._staff(world)
        pdp.decision(staff["clerk1"], PREPARE.operation, PREPARE.target, self.CTX, at=1.0)
        pdp.decision(staff["mgr1"], APPROVE.operation, APPROVE.target, self.CTX, at=2.0)
        restarted = PermisPDP.startup(
            world["policy"],
            world["trust"],
            world["audit"],
            directory=world["directory"],
        )
        assert restarted.decision(
            staff["mgr1"], APPROVE.operation, APPROVE.target, self.CTX, at=3.0
        ).denied
        assert restarted.decision(
            staff["mgr2"], APPROVE.operation, APPROVE.target, self.CTX, at=4.0
        ).granted


class TestAuditTrailIntegrity:
    def test_every_decision_is_logged(self, world):
        alice = "cn=alice,o=bank,c=gb"
        world["bank_soa"].issue(alice, [TELLER], 0, 1000)
        pdp = world["pdp"]
        ctx = ContextName.parse("Branch=York, Period=2006")
        pdp.decision(alice, "handleCash", "till://main", ctx, at=1.0)
        pdp.decision(alice, "auditBooks", "ledger://main", ctx, at=2.0)  # deny
        events = list(world["audit"].events())
        assert len(events) == 2
        effects = [event.payload["effect"] for event in events]
        assert effects == ["grant", "deny"]

    def test_trails_rotate_and_recover(self, world):
        """More decisions than one trail holds: recovery reads them all."""
        pdp = world["pdp"]
        soa = world["bank_soa"]
        for index in range(120):  # max_records=50 → 3 trails
            dn = f"cn=user{index},o=bank,c=gb"
            soa.issue(dn, [TELLER], 0, 10_000)
            ctx = ContextName.parse(f"Branch=York, Period=P{index % 5}")
            pdp.decision(dn, "handleCash", "till://main", ctx, at=float(index))
        assert len(world["audit"].trail_paths()) >= 3
        restarted = PermisPDP.startup(
            world["policy"],
            world["trust"],
            world["audit"],
            directory=world["directory"],
        )
        assert restarted.retained_adi.count() == pdp.retained_adi.count()

    def test_bounded_recovery_window(self, world):
        """Recovery honours the last-n-trails administrative parameter."""
        pdp = world["pdp"]
        soa = world["bank_soa"]
        for index in range(120):
            dn = f"cn=user{index},o=bank,c=gb"
            soa.issue(dn, [TELLER], 0, 10_000)
            ctx = ContextName.parse(f"Branch=York, Period=P{index % 5}")
            pdp.decision(dn, "handleCash", "till://main", ctx, at=float(index))
        restarted = PermisPDP.startup(
            world["policy"],
            world["trust"],
            world["audit"],
            directory=world["directory"],
            last_n_trails=1,
        )
        assert 0 < restarted.retained_adi.count() < pdp.retained_adi.count()

"""Tests for the remote PDP clients and PEP transport-failure typing."""

import asyncio
import json
import random
import socket
import threading

import pytest

from repro.core import (
    MMER,
    ContextName,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
)
from repro.client import (
    AsyncRemotePDP,
    PDPOverloadedError,
    PDPUnavailableError,
    RemotePDP,
)
from repro.framework import (
    AccessDeniedError,
    PolicyEnforcementPoint,
    SimulatedClock,
)
from repro.server import AuthorizationService, MSoDServer, ServerThread, protocol

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
YORK_P1 = ContextName.parse("Branch=York, Period=P1")


def make_service(n_shards=2, **kwargs):
    policy_set = MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                policy_id="bank",
            )
        ]
    )
    engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
    return AuthorizationService(engine, n_shards=n_shards, **kwargs)


def free_port():
    """A port that was just free — nothing is listening on it."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ScriptedServer:
    """A TCP stub answering each received frame with the next scripted reply.

    Script entries are callables ``frame -> response_frame_dict`` (the
    received frame is decoded JSON), or ``None`` to close the connection
    without answering.  Used to exercise client retry discipline without
    a real engine behind the socket.
    """

    def __init__(self, script):
        self._script = list(script)
        self._lock = threading.Lock()
        self.requests = []
        self.connections = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._accepting = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while self._accepting:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with self._lock:
                self.connections += 1
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn):
        stream = conn.makefile("rb")
        try:
            while True:
                line = stream.readline()
                if not line:
                    return
                frame = json.loads(line)
                with self._lock:
                    self.requests.append(frame)
                    reply = self._script.pop(0) if self._script else None
                if reply is None:
                    return
                conn.sendall(json.dumps(reply(frame)).encode() + b"\n")
        except OSError:
            pass
        finally:
            conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._accepting = False
        try:
            self._sock.close()
        except OSError:
            pass


def overloaded_reply(frame):
    return protocol.error_frame(
        frame["id"], protocol.ERR_OVERLOADED, "shard full", retry_after=0.001
    )


def healthz_reply(frame):
    return protocol.response_frame(
        frame["id"], protocol.OP_HEALTHZ, "body", {"status": "ok"}
    )


def make_request(user, role, timestamp=1.0):
    from repro.core import DecisionRequest

    operation, target = (
        ("handleCash", "till://1") if role is TELLER else ("auditBooks", "l://1")
    )
    return DecisionRequest(
        user_id=user,
        roles=(role,),
        operation=operation,
        target=target,
        context_instance=YORK_P1,
        timestamp=timestamp,
    )


FAST = dict(timeout=2.0, backoff_base=0.001, backoff_cap=0.002)


class TestRemotePDP:
    def test_connect_failure_is_typed(self):
        pdp = RemotePDP("127.0.0.1", free_port(), max_retries=0, timeout=0.5)
        with pytest.raises(PDPUnavailableError):
            pdp.decide(make_request("alice", TELLER))

    def test_grant_and_deny_through_unchanged_pep(self):
        with ServerThread(make_service()) as server:
            with RemotePDP(server.host, server.port, **FAST) as pdp:
                pep = PolicyEnforcementPoint(pdp, SimulatedClock())
                grant = pep.enforce(
                    "alice", [TELLER], "handleCash", "till://1", YORK_P1
                )
                assert grant.granted and grant.records_added >= 1
                with pytest.raises(AccessDeniedError) as excinfo:
                    pep.enforce(
                        "alice", [AUDITOR], "auditBooks", "l://1", YORK_P1
                    )
                denial = excinfo.value.decision
                assert denial.violation is not None
                assert denial.violation.constraint_kind == "MMER"

    def test_healthz_and_metrics_verbs(self):
        with ServerThread(make_service(n_shards=3)) as server:
            with RemotePDP(server.host, server.port, **FAST) as pdp:
                pdp.decide(make_request("bob", TELLER))
                health = pdp.healthz()
                metrics = pdp.metrics()
        assert health["status"] == "ok"
        assert health["shards"] == 3
        assert sum(shard["completed"] for shard in metrics["shards"]) == 1

    def test_connections_are_pooled(self):
        script = [healthz_reply] * 5
        with ScriptedServer(script) as stub:
            with RemotePDP("127.0.0.1", stub.port, **FAST) as pdp:
                for _ in range(5):
                    assert pdp.healthz() == {"status": "ok"}
            assert stub.connections == 1  # sequential calls reuse one socket

    def test_overload_is_retried_then_succeeds(self):
        script = [overloaded_reply, overloaded_reply, healthz_reply]
        with ScriptedServer(script) as stub:
            pdp = RemotePDP(
                "127.0.0.1",
                stub.port,
                max_retries=2,
                rng=random.Random(1),
                **FAST,
            )
            with pdp:
                assert pdp.healthz() == {"status": "ok"}
            assert len(stub.requests) == 3

    def test_overload_raises_after_retry_budget(self):
        # ScriptedServer speaks scripted v1 JSON, so pin the v1 decide
        # path (v2 discipline is covered by the pipelined tests).
        script = [overloaded_reply] * 3
        with ScriptedServer(script) as stub:
            pdp = RemotePDP(
                "127.0.0.1",
                stub.port,
                max_retries=1,
                rng=random.Random(2),
                protocol_version="v1",
                **FAST,
            )
            with pdp, pytest.raises(PDPOverloadedError) as excinfo:
                pdp.decide(make_request("carol", TELLER))
            assert excinfo.value.retry_after == pytest.approx(0.001)
            assert len(stub.requests) == 2  # initial + exactly one retry

    def test_decide_is_never_retried_after_send(self):
        """A decide whose connection dies post-send must not be replayed:
        the server may already have committed the grant to history."""
        script = [None, None, None]  # close without answering, every time
        with ScriptedServer(script) as stub:
            pdp = RemotePDP(
                "127.0.0.1",
                stub.port,
                max_retries=2,
                protocol_version="v1",
                **FAST,
            )
            with pdp, pytest.raises(PDPUnavailableError):
                pdp.decide(make_request("dave", TELLER))
            assert len(stub.requests) == 1  # no replay despite retry budget

    def test_healthz_is_retried_on_transport_failure(self):
        script = [None, healthz_reply]
        with ScriptedServer(script) as stub:
            pdp = RemotePDP(
                "127.0.0.1",
                stub.port,
                max_retries=2,
                rng=random.Random(3),
                **FAST,
            )
            with pdp:
                assert pdp.healthz() == {"status": "ok"}
            assert len(stub.requests) == 2

    def test_mismatched_response_id_is_a_protocol_error(self):
        from repro.errors import ProtocolError

        script = [
            lambda frame: protocol.response_frame(
                "someone-else", protocol.OP_HEALTHZ, "body", {}
            )
        ]
        with ScriptedServer(script) as stub:
            pdp = RemotePDP("127.0.0.1", stub.port, max_retries=0, **FAST)
            with pdp, pytest.raises(ProtocolError):
                pdp.healthz()

    def test_healthz_uses_its_own_short_timeout(self):
        """A wedged node must fail a probe fast, not after ``timeout``.

        The cluster's failure detector calls ``healthz`` on every tick;
        with only the (generous) decide timeout, one stuck node would
        stall detection for seconds.  ``health_timeout`` caps the probe
        alone — decides keep the long deadline.
        """
        import time

        def slow_healthz(frame):
            time.sleep(1.5)
            return healthz_reply(frame)

        with ScriptedServer([slow_healthz]) as stub:
            pdp = RemotePDP(
                "127.0.0.1",
                stub.port,
                timeout=30.0,
                health_timeout=0.2,
                max_retries=0,
            )
            started = time.monotonic()
            with pdp, pytest.raises(PDPUnavailableError):
                pdp.healthz()
            assert time.monotonic() - started < 1.5

    def test_health_timeout_defaults_to_the_decide_timeout(self):
        with ScriptedServer([healthz_reply]) as stub:
            pdp = RemotePDP("127.0.0.1", stub.port, timeout=5.0)
            with pdp:
                assert pdp.healthz() == {"status": "ok"}


class TestAsyncRemotePDP:
    def test_grant_deny_and_control_verbs(self):
        async def scenario():
            server = MSoDServer(make_service())
            await server.start()
            try:
                async with AsyncRemotePDP(
                    "127.0.0.1", server.port, **FAST
                ) as pdp:
                    grant = await pdp.decide(make_request("erin", TELLER))
                    deny = await pdp.decide(
                        make_request("erin", AUDITOR, timestamp=2.0)
                    )
                    health = await pdp.healthz()
                    metrics = await pdp.metrics()
            finally:
                await server.stop()
            return grant, deny, health, metrics

        grant, deny, health, metrics = asyncio.run(scenario())
        assert grant.granted and deny.denied
        assert health["status"] == "ok"
        assert sum(shard["completed"] for shard in metrics["shards"]) == 2

    def test_connect_failure_is_typed(self):
        async def scenario():
            pdp = AsyncRemotePDP(
                "127.0.0.1", free_port(), max_retries=0, timeout=0.5
            )
            with pytest.raises(PDPUnavailableError):
                await pdp.decide(make_request("frank", TELLER))
            await pdp.close()

        asyncio.run(scenario())

    def test_concurrent_clients_share_the_pool(self):
        async def scenario():
            server = MSoDServer(make_service(n_shards=4))
            await server.start()
            try:
                async with AsyncRemotePDP(
                    "127.0.0.1", server.port, pool_size=3, **FAST
                ) as pdp:
                    decisions = await asyncio.gather(
                        *(
                            pdp.decide(
                                make_request(f"user-{i}", TELLER, float(i))
                            )
                            for i in range(12)
                        )
                    )
            finally:
                await server.stop()
            return decisions

        decisions = asyncio.run(scenario())
        assert len(decisions) == 12
        assert all(decision.granted for decision in decisions)


class TestPEPTransportTyping:
    def test_pep_wraps_raw_socket_errors(self):
        class BrokenPDP:
            def decide(self, request):
                raise ConnectionResetError("peer vanished")

        pep = PolicyEnforcementPoint(BrokenPDP(), SimulatedClock())
        with pytest.raises(PDPUnavailableError) as excinfo:
            pep.request_decision(
                "gina", [TELLER], "handleCash", "till://1", YORK_P1
            )
        assert "transport failure" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ConnectionResetError)

    def test_pep_wraps_timeouts(self):
        class SlowPDP:
            def decide(self, request):
                raise TimeoutError("decide timed out")

        pep = PolicyEnforcementPoint(SlowPDP(), SimulatedClock())
        with pytest.raises(PDPUnavailableError):
            pep.request_decision(
                "hana", [TELLER], "handleCash", "till://1", YORK_P1
            )

    def test_pep_passes_through_typed_pdp_errors(self):
        class OverloadedPDP:
            def decide(self, request):
                raise PDPOverloadedError("try later", retry_after=0.5)

        pep = PolicyEnforcementPoint(OverloadedPDP(), SimulatedClock())
        with pytest.raises(PDPOverloadedError) as excinfo:
            pep.request_decision(
                "ivan", [TELLER], "handleCash", "till://1", YORK_P1
            )
        assert excinfo.value.retry_after == 0.5

"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main
from repro.xmlpolicy import COMBINED_POLICY_XML


@pytest.fixture
def policy_file(tmp_path):
    path = tmp_path / "policy.xml"
    path.write_text(COMBINED_POLICY_XML)
    return str(path)


@pytest.fixture
def adi_file(tmp_path):
    return str(tmp_path / "adi.db")


def decide_args(policy_file, adi_file, user, role, operation, target, context):
    return [
        "decide",
        policy_file,
        "--adi",
        adi_file,
        "--user",
        user,
        "--role",
        role,
        "--operation",
        operation,
        "--target",
        target,
        "--context",
        context,
    ]


class TestValidate:
    def test_valid_document(self, policy_file, capsys):
        assert main(["validate", policy_file]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_document(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<MSoDPolicySet><MSoDPolicy/></MSoDPolicySet>")
        assert main(["validate", str(path)]) == 1
        assert "problem:" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["validate", "/no/such/file.xml"]) == 3
        assert "error:" in capsys.readouterr().err


class TestShow:
    def test_summary(self, policy_file, capsys):
        assert main(["show", policy_file]) == 0
        out = capsys.readouterr().out
        assert "2 MSoD policies" in out
        assert "Branch=*, Period=!" in out
        assert "MMER m=2" in out
        assert "MMEP m=2" in out


class TestCompileDecompile:
    DSL = (
        'policy bank within "Branch=*, Period=!":\n'
        "    mutually exclusive roles limit 2:\n"
        "        employee:Teller, employee:Auditor\n"
    )

    def test_compile_to_stdout(self, tmp_path, capsys):
        source = tmp_path / "policy.msod"
        source.write_text(self.DSL)
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "<MSoDPolicySet>" in out
        assert 'value="Teller"' in out

    def test_compile_to_file_then_decide(self, tmp_path, adi_file, capsys):
        source = tmp_path / "policy.msod"
        source.write_text(self.DSL)
        xml_path = tmp_path / "policy.xml"
        assert main(["compile", str(source), "-o", str(xml_path)]) == 0
        capsys.readouterr()
        code = main(
            decide_args(
                str(xml_path), adi_file, "alice", "employee:Teller",
                "handleCash", "till://1", "Branch=York, Period=2006",
            )
        )
        assert code == 0

    def test_decompile_round_trip(self, policy_file, tmp_path, capsys):
        assert main(["decompile", policy_file]) == 0
        dsl_text = capsys.readouterr().out
        assert "mutually exclusive roles limit 2:" in dsl_text
        source = tmp_path / "round.msod"
        source.write_text(dsl_text)
        assert main(["compile", str(source)]) == 0

    def test_compile_error_reported(self, tmp_path, capsys):
        source = tmp_path / "bad.msod"
        source.write_text("gibberish\n")
        assert main(["compile", str(source)]) == 3
        assert "error:" in capsys.readouterr().err


class TestLint:
    def _write_permis_policy(self, tmp_path, policy):
        from repro.permis import write_permis_policy

        path = tmp_path / "permis.xml"
        path.write_text(write_permis_policy(policy))
        return str(path)

    def test_lint_healthy_policy(self, tmp_path, capsys):
        from repro.core import Privilege, Role
        from repro.permis import PermisPolicyBuilder
        from repro.xmlpolicy import bank_policy_set

        policy = (
            PermisPolicyBuilder()
            .allow_assignment(
                "cn=soa,o=b,c=gb",
                [Role("employee", "Teller"), Role("employee", "Auditor")],
                "o=b,c=gb",
            )
            .grant(Role("employee", "Teller"), [Privilege("handleCash", "t")])
            .grant(
                Role("employee", "Auditor"),
                [
                    Privilege("auditBooks", "l"),
                    Privilege(
                        "CommitAudit", "http://audit.location.com/audit"
                    ),
                ],
            )
            .with_msod(bank_policy_set())
            .build()
        )
        path = self._write_permis_policy(tmp_path, policy)
        assert main(["lint", path]) == 0

    def test_lint_broken_policy_exits_nonzero(self, tmp_path, capsys):
        from repro.core import Privilege, Role
        from repro.permis import PermisPolicyBuilder
        from repro.xmlpolicy import bank_policy_set

        policy = (
            PermisPolicyBuilder()
            .allow_assignment(
                "cn=soa,o=b,c=gb", [Role("employee", "Teller")], "o=b,c=gb"
            )
            .grant(Role("employee", "Teller"), [Privilege("handleCash", "t")])
            .with_msod(bank_policy_set())  # auditor unassignable
            .build()
        )
        path = self._write_permis_policy(tmp_path, policy)
        assert main(["lint", path]) == 1
        assert "[error]" in capsys.readouterr().out


class TestDecide:
    def test_multi_session_deny_across_invocations(
        self, policy_file, adi_file, capsys
    ):
        """Each CLI invocation is a separate session; the SQLite retained
        ADI carries the history between them."""
        code = main(
            decide_args(
                policy_file, adi_file, "alice", "employee:Teller",
                "handleCash", "till://1", "Branch=York, Period=2006",
            )
        )
        assert code == 0
        assert "GRANT" in capsys.readouterr().out

        code = main(
            decide_args(
                policy_file, adi_file, "alice", "employee:Auditor",
                "auditBooks", "ledger://1", "Branch=Leeds, Period=2006",
            )
        )
        assert code == 2
        assert "DENY" in capsys.readouterr().out

    def test_unmatched_context_grants(self, policy_file, adi_file, capsys):
        code = main(
            decide_args(
                policy_file, adi_file, "alice", "employee:Teller",
                "anything", "t://x", "Unrelated=ctx",
            )
        )
        assert code == 0

    def test_literal_mode_flag(self, policy_file, adi_file, capsys):
        """--literal follows the published step order: a simultaneous
        co-activation on a context-starting request is granted."""
        args = decide_args(
            policy_file, adi_file, "alice", "employee:Teller",
            "auditBooks", "ledger://1", "Branch=York, Period=2006",
        ) + ["--role", "employee:Auditor", "--literal"]
        assert main(args) == 0
        assert "GRANT" in capsys.readouterr().out
        # Strict mode (the default) denies the same request on a fresh ADI.
        strict_args = decide_args(
            policy_file, str(adi_file) + ".strict", "alice",
            "employee:Teller", "auditBooks", "ledger://1",
            "Branch=York, Period=2006",
        ) + ["--role", "employee:Auditor"]
        assert main(strict_args) == 2

    def test_bad_role_syntax_rejected(self, policy_file, adi_file):
        with pytest.raises(SystemExit):
            main(
                decide_args(
                    policy_file, adi_file, "alice", "not-a-role",
                    "op", "t", "A=1",
                )
            )


class TestExplain:
    def test_explain_is_a_dry_run(self, policy_file, adi_file, capsys):
        main(
            decide_args(
                policy_file, adi_file, "alice", "employee:Teller",
                "handleCash", "till://1", "Branch=York, Period=2006",
            )
        )
        capsys.readouterr()
        explain_args = [
            "explain", policy_file, "--adi", adi_file, "--user", "alice",
            "--role", "employee:Auditor", "--operation", "auditBooks",
            "--target", "ledger://1", "--context", "Branch=Leeds, Period=2006",
        ]
        # Run twice: a dry run never changes the verdict or the store.
        assert main(explain_args) == 2
        first = capsys.readouterr().out
        assert "VIOLATION" in first
        assert "[step 5]" in first
        assert main(explain_args) == 2
        # The retained ADI still holds only the original grant.
        main(["history", "--adi", adi_file])
        history = capsys.readouterr().out.splitlines()[-2]
        assert "alice" in history


class TestHistoryAndPurge:
    def _grant_one(self, policy_file, adi_file):
        main(
            decide_args(
                policy_file, adi_file, "alice", "employee:Teller",
                "handleCash", "till://1", "Branch=York, Period=2006",
            )
        )

    def test_history_lists_records(self, policy_file, adi_file, capsys):
        self._grant_one(policy_file, adi_file)
        capsys.readouterr()
        assert main(["history", "--adi", adi_file]) == 0
        out = capsys.readouterr().out
        assert "alice" in out
        assert "Branch=York, Period=2006" in out

    def test_purge_context(self, policy_file, adi_file, capsys):
        self._grant_one(policy_file, adi_file)
        capsys.readouterr()
        assert main(
            ["purge", "--adi", adi_file, "--context", "Branch=*, Period=2006"]
        ) == 0
        assert main(["history", "--adi", adi_file]) == 0
        assert "0 retained record(s)" in capsys.readouterr().out

    def test_purge_user(self, policy_file, adi_file, capsys):
        self._grant_one(policy_file, adi_file)
        capsys.readouterr()
        main(["purge", "--adi", adi_file, "--user", "alice"])
        assert "removed" in capsys.readouterr().out

    def test_purge_all(self, policy_file, adi_file, capsys):
        self._grant_one(policy_file, adi_file)
        capsys.readouterr()
        main(["purge", "--adi", adi_file, "--all"])
        main(["history", "--adi", adi_file])
        assert "0 retained record(s)" in capsys.readouterr().out

"""Fault injection: kill a shard primary mid-workload.

The acceptance test for the cluster subsystem.  A 2-shard cluster runs
a hot-user + distinct-user workload through the routing client; the
hot user's primary is killed halfway through.  Afterwards we assert the
full failover story:

* the coordinator detected the death and promoted the warm standby
  under a bumped fencing epoch;
* the client rode the failover out — every request got a decision;
* every decision is bit-identical to a single-node oracle engine fed
  the same shard's substream (the per-user routing invariant);
* each surviving primary's retained ADI equals its oracle's store —
  no decision the dead primary acknowledged was lost (audit-log
  shipping + sealed catch-up), none was applied twice (the request
  journal);
* the MMER exclusivity invariant holds across the merged cluster
  state: no user ever held Teller and Auditor in one context;
* a client still claiming the dead primary's epoch is fenced.
"""

import itertools

import pytest

from repro.client import RemotePDP
from repro.cluster import ClusterPDP, LocalCluster
from repro.core import InMemoryRetainedADIStore, MSoDEngine
from repro.errors import PDPFencedError, PDPUnavailableError
from repro.workload import (
    AUDITOR,
    TELLER,
    bank_policy_set,
    decision_request_stream,
    hot_user_stream,
)


def store_digest(store):
    return sorted(
        (
            record.user_id,
            tuple(sorted((r.role_type, r.value) for r in record.roles)),
            record.operation,
            record.target,
            str(record.context_instance),
            record.granted_at,
            record.request_id,
        )
        for record in store.records()
    )


@pytest.fixture
def cluster(tmp_path):
    cluster = LocalCluster(
        bank_policy_set(),
        2,
        str(tmp_path / "cluster"),
        store="memory",
        health_interval=0.15,
        health_timeout=0.5,
        health_failures=2,
        catchup_interval=0.2,
        fsync=True,
    ).start()
    yield cluster
    cluster.stop()


def test_primary_killed_mid_workload(cluster):
    policy_set = bank_policy_set()
    requests = list(
        itertools.chain(
            hot_user_stream(80, user_id="hot-user"),
            decision_request_stream(80, n_users=30),
        )
    )
    half = len(requests) // 2
    hot_shard = cluster.ring.shard_for("hot-user")
    old_primary = cluster.shard(hot_shard).primary
    old_epoch = cluster.shard(hot_shard).epoch

    effects = []
    with ClusterPDP(
        (cluster.host, cluster.port), failover_wait=30.0
    ) as pdp:
        for index, request in enumerate(requests):
            if index == half:
                killed = cluster.kill_primary(hot_shard)
                assert killed == old_primary.name
            effects.append(pdp.decide(request).effect)
        status = pdp.cluster_status()

    # --- the coordinator promoted the standby under a new epoch -------
    state = cluster.shard(hot_shard)
    assert state.failovers >= 1
    assert state.epoch > old_epoch
    assert state.primary.name != old_primary.name
    assert status["shards"][hot_shard]["failovers"] >= 1

    # --- decisions are bit-identical to per-shard single-node oracles -
    oracles = {
        name: MSoDEngine(policy_set, InMemoryRetainedADIStore())
        for name in cluster.shard_names
    }
    oracle_effects = [
        oracles[cluster.ring.shard_for(r.user_id)].check(r).effect
        for r in requests
    ]
    assert effects == oracle_effects

    # --- no acknowledged decision lost, none applied twice ------------
    for name in cluster.shard_names:
        primary = cluster.shard(name).primary
        assert store_digest(primary.store) == store_digest(
            oracles[name].store
        ), f"{name} diverged from its oracle after failover"

    # --- the paper's invariant: exclusive roles never co-held ---------
    held = {}
    for name in cluster.shard_names:
        for record in cluster.shard(name).primary.store.records():
            key = (record.user_id, str(record.context_instance))
            held.setdefault(key, set()).update(record.roles)
    assert not [
        key
        for key, roles in held.items()
        if TELLER in roles and AUDITOR in roles
    ]

    # --- fencing: the dead primary's epoch is refused ------------------
    new_primary = cluster.shard(hot_shard).primary
    with RemotePDP(new_primary.host, new_primary.port) as raw:
        with pytest.raises(PDPFencedError):
            raw.decide(requests[0], epoch=old_epoch)


def test_static_route_client_cannot_fail_over(cluster):
    """Without a coordinator there is no fresh route: errors surface."""
    with ClusterPDP((cluster.host, cluster.port)) as pdp:
        route = pdp.route()
    hot_shard = cluster.ring.shard_for("hot-user")
    cluster.kill_primary(hot_shard)
    with ClusterPDP(static_route=route, timeout=1.0) as pdp:
        with pytest.raises(PDPUnavailableError):
            for request in hot_user_stream(5, user_id="hot-user"):
                pdp.decide(request)

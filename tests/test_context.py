"""Unit tests for business-context names and matching (Section 2.2)."""

import pytest

from repro.core.context import (
    ALL_INSTANCES,
    PER_INSTANCE,
    ContextComponent,
    ContextHierarchy,
    ContextName,
    common_supercontext,
)
from repro.errors import ContextNameError


class TestContextComponent:
    def test_concrete_component(self):
        comp = ContextComponent("Branch", "York")
        assert comp.ctx_type == "Branch"
        assert comp.value == "York"
        assert not comp.is_wildcard

    def test_all_instances_wildcard(self):
        comp = ContextComponent("Branch", ALL_INSTANCES)
        assert comp.is_wildcard
        assert comp.is_all_instances
        assert not comp.is_per_instance

    def test_per_instance_wildcard(self):
        comp = ContextComponent("Period", PER_INSTANCE)
        assert comp.is_wildcard
        assert comp.is_per_instance

    def test_invalid_type_rejected(self):
        with pytest.raises(ContextNameError):
            ContextComponent("", "York")

    def test_type_cannot_contain_equals(self):
        with pytest.raises(ContextNameError):
            ContextComponent("a=b", "York")

    def test_value_cannot_contain_comma(self):
        with pytest.raises(ContextNameError):
            ContextComponent("Branch", "a,b")

    def test_wildcard_covers_any_value(self):
        wild = ContextComponent("Branch", "*")
        assert wild.covers(ContextComponent("Branch", "York"))
        assert wild.covers(ContextComponent("Branch", "Leeds"))

    def test_concrete_covers_only_itself(self):
        york = ContextComponent("Branch", "York")
        assert york.covers(ContextComponent("Branch", "York"))
        assert not york.covers(ContextComponent("Branch", "Leeds"))

    def test_covers_requires_same_type(self):
        wild = ContextComponent("Branch", "*")
        assert not wild.covers(ContextComponent("Period", "York"))

    def test_str(self):
        assert str(ContextComponent("Branch", "York")) == "Branch=York"


class TestParsing:
    def test_parse_paper_example(self):
        name = ContextName.parse("Branch=*, Period=!")
        assert len(name) == 2
        assert name[0].is_all_instances
        assert name[1].is_per_instance

    def test_parse_concrete(self):
        name = ContextName.parse("Branch=York, Period=2006")
        assert name.is_concrete
        assert str(name) == "Branch=York, Period=2006"

    def test_parse_empty_is_root(self):
        assert ContextName.parse("").is_root
        assert ContextName.parse("   ").is_root

    def test_parse_none_rejected(self):
        with pytest.raises(ContextNameError):
            ContextName.parse(None)

    def test_parse_missing_equals_rejected(self):
        with pytest.raises(ContextNameError):
            ContextName.parse("BranchYork")

    def test_parse_empty_component_rejected(self):
        with pytest.raises(ContextNameError):
            ContextName.parse("Branch=York,, Period=2006")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ContextNameError):
            ContextName.parse("Branch=York, Branch=Leeds")

    def test_whitespace_tolerated(self):
        assert ContextName.parse(" Branch = York , Period = 2006 ") == (
            ContextName.parse("Branch=York, Period=2006")
        )

    def test_str_parse_round_trip(self):
        for text in ("", "A=1", "A=*, B=!", "Branch=York, Period=2006, Till=3"):
            assert str(ContextName.parse(text)) == text

    def test_repr_is_evaluable_form(self):
        name = ContextName.parse("A=1")
        assert repr(name) == "ContextName.parse('A=1')"


class TestStructure:
    def test_root_properties(self):
        root = ContextName.root()
        assert root.is_root
        assert root.is_concrete
        assert root.parent is root or root.parent == root

    def test_child_extends(self):
        name = ContextName.root().child("Branch", "York").child("Period", "2006")
        assert str(name) == "Branch=York, Period=2006"

    def test_parent(self):
        name = ContextName.parse("Branch=York, Period=2006")
        assert str(name.parent) == "Branch=York"

    def test_ancestors_nearest_first(self):
        name = ContextName.parse("A=1, B=2, C=3")
        ancestors = [str(a) for a in name.ancestors()]
        assert ancestors == ["A=1, B=2", "A=1", ""]

    def test_has_wildcards(self):
        assert ContextName.parse("A=*").has_wildcards
        assert ContextName.parse("A=!").has_wildcards
        assert not ContextName.parse("A=1").has_wildcards

    def test_equality_and_hash(self):
        a = ContextName.parse("A=1, B=2")
        b = ContextName.parse("A=1, B=2")
        assert a == b
        assert hash(a) == hash(b)
        assert a != ContextName.parse("A=1")

    def test_iteration(self):
        name = ContextName.parse("A=1, B=2")
        assert [str(c) for c in name] == ["A=1", "B=2"]


class TestMatching:
    """The step-1/step-3 matching rules of Section 4.2."""

    def test_everything_matches_universal_context(self):
        root = ContextName.root()
        for text in ("", "A=1", "A=1, B=2"):
            assert ContextName.parse(text).is_equal_or_subordinate_to(root)

    def test_equal_concrete_names_match(self):
        name = ContextName.parse("Branch=York, Period=2006")
        assert name.is_equal_or_subordinate_to(name)

    def test_subordinate_matches(self):
        policy = ContextName.parse("Branch=York")
        instance = ContextName.parse("Branch=York, Period=2006")
        assert instance.is_equal_or_subordinate_to(policy)
        assert instance.is_strictly_subordinate_to(policy)

    def test_superior_does_not_match(self):
        policy = ContextName.parse("Branch=York, Period=2006")
        instance = ContextName.parse("Branch=York")
        assert not instance.is_equal_or_subordinate_to(policy)

    def test_star_matches_all_instances(self):
        policy = ContextName.parse("Branch=*, Period=!")
        for branch in ("York", "Leeds"):
            instance = ContextName.parse(f"Branch={branch}, Period=2006")
            assert instance.is_equal_or_subordinate_to(policy)

    def test_concrete_policy_value_restricts(self):
        policy = ContextName.parse("Branch=York, Period=!")
        assert ContextName.parse(
            "Branch=York, Period=2006"
        ).is_equal_or_subordinate_to(policy)
        assert not ContextName.parse(
            "Branch=Leeds, Period=2006"
        ).is_equal_or_subordinate_to(policy)

    def test_type_mismatch_fails(self):
        policy = ContextName.parse("Branch=*")
        assert not ContextName.parse("Office=York").is_equal_or_subordinate_to(
            policy
        )

    def test_subordinate_of_wildcard_policy(self):
        policy = ContextName.parse("Branch=*, Period=!")
        deep = ContextName.parse("Branch=York, Period=2006, Till=3")
        assert deep.is_equal_or_subordinate_to(policy)

    def test_not_strictly_subordinate_to_self(self):
        name = ContextName.parse("A=1")
        assert not name.is_strictly_subordinate_to(name)


class TestInstantiate:
    def test_per_instance_rebinding(self):
        policy = ContextName.parse("Branch=*, Period=!")
        instance = ContextName.parse("Branch=York, Period=2006")
        effective = policy.instantiate(instance)
        assert str(effective) == "Branch=*, Period=2006"

    def test_all_instances_preserved(self):
        policy = ContextName.parse("Branch=*")
        instance = ContextName.parse("Branch=York, Period=2006")
        assert str(policy.instantiate(instance)) == "Branch=*"

    def test_concrete_policy_unchanged(self):
        policy = ContextName.parse("Branch=York")
        instance = ContextName.parse("Branch=York, Period=2006")
        assert policy.instantiate(instance) == policy

    def test_all_per_instance(self):
        policy = ContextName.parse("TaxOffice=!, taxRefundProcess=!")
        instance = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=42")
        assert policy.instantiate(instance) == instance

    def test_non_matching_instance_rejected(self):
        policy = ContextName.parse("Branch=York, Period=!")
        with pytest.raises(ContextNameError):
            policy.instantiate(ContextName.parse("Branch=Leeds, Period=2006"))

    def test_effective_context_scopes_adi_matching(self):
        """After instantiation, other instances no longer match (DSD-like)."""
        policy = ContextName.parse("Branch=*, Period=!")
        effective = policy.instantiate(
            ContextName.parse("Branch=York, Period=2006")
        )
        same_period_other_branch = ContextName.parse("Branch=Leeds, Period=2006")
        other_period = ContextName.parse("Branch=York, Period=2007")
        assert same_period_other_branch.is_equal_or_subordinate_to(effective)
        assert not other_period.is_equal_or_subordinate_to(effective)


class TestCommonSupercontext:
    def test_empty_input_is_root(self):
        assert common_supercontext([]).is_root

    def test_single_name(self):
        name = ContextName.parse("A=1, B=2")
        assert common_supercontext([name]) == name

    def test_diverging_names(self):
        a = ContextName.parse("Branch=York, Period=2006")
        b = ContextName.parse("Branch=York, Period=2007")
        assert str(common_supercontext([a, b])) == "Branch=York"

    def test_totally_different_names(self):
        a = ContextName.parse("Branch=York")
        b = ContextName.parse("TaxOffice=Leeds")
        assert common_supercontext([a, b]).is_root

    def test_prefix_relationship(self):
        a = ContextName.parse("A=1")
        b = ContextName.parse("A=1, B=2, C=3")
        assert common_supercontext([a, b]) == a


class TestContextHierarchy:
    def test_start_and_is_active(self):
        hierarchy = ContextHierarchy()
        instance = ContextName.parse("Branch=York, Period=2006")
        hierarchy.start(instance)
        assert hierarchy.is_active(instance)

    def test_cannot_start_wildcard_context(self):
        hierarchy = ContextHierarchy()
        with pytest.raises(ContextNameError):
            hierarchy.start(ContextName.parse("Branch=*"))

    def test_containing_context_inferred_active(self):
        hierarchy = ContextHierarchy()
        hierarchy.start(ContextName.parse("Branch=York, Period=2006"))
        assert hierarchy.is_active(ContextName.parse("Branch=York"))

    def test_finish_terminates_subordinates(self):
        hierarchy = ContextHierarchy()
        child_a = ContextName.parse("Branch=York, Period=2006")
        child_b = ContextName.parse("Branch=York, Period=2007")
        other = ContextName.parse("Branch=Leeds, Period=2006")
        for instance in (child_a, child_b, other):
            hierarchy.start(instance)
        terminated = hierarchy.finish(ContextName.parse("Branch=York"))
        assert terminated == {child_a, child_b}
        assert not hierarchy.is_active(child_a)
        assert hierarchy.is_active(other)

    def test_finish_returns_empty_when_nothing_matches(self):
        hierarchy = ContextHierarchy()
        assert hierarchy.finish(ContextName.parse("Branch=York")) == frozenset()

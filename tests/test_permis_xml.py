"""Unit tests for the PERMIS XML policy format and signed policy store."""

import pytest

from repro.core import Privilege, Role
from repro.errors import CredentialError, PolicyParseError
from repro.permis import (
    AllOf,
    AnyOf,
    EnvEquals,
    EnvOneOf,
    LdapDirectory,
    Negation,
    PermisPolicyBuilder,
    TimeWindow,
    TrustStore,
    load_policy,
    parse_permis_policy,
    publish_policy,
    sign_policy_xml,
    verify_signed_policy,
    write_permis_policy,
)
from repro.xmlpolicy import combined_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
MANAGER = Role("employee", "Manager")
HANDLE_CASH = Privilege("handleCash", "till://main")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://main")
SOA_DN = "cn=SOA,o=bank,c=gb"


def full_policy():
    return (
        PermisPolicyBuilder()
        .senior_to(MANAGER, TELLER)
        .allow_assignment(
            SOA_DN, [TELLER, AUDITOR], "o=bank,c=gb", max_delegation_depth=2
        )
        .grant(
            TELLER,
            [HANDLE_CASH],
            condition=AllOf(
                TimeWindow(9 * 3600, 17 * 3600),
                AnyOf(
                    EnvEquals("terminal", "till-3"),
                    EnvOneOf("override", ["on", "forced"]),
                ),
                Negation(EnvEquals("maintenance", "yes")),
            ),
        )
        .grant(AUDITOR, [AUDIT_BOOKS])
        .with_msod(combined_policy_set())
        .build()
    )


def assert_equivalent(a, b):
    assert set(a.assignment_rules) == set(b.assignment_rules)
    assert a.hierarchy_edges() == b.hierarchy_edges()
    assert len(a.msod_policy_set) == len(b.msod_policy_set)
    # Behavioural equivalence of conditioned access rules.
    probes = [
        ({}, 10 * 3600.0),
        ({"terminal": "till-3"}, 10 * 3600.0),
        ({"terminal": "till-3"}, 20 * 3600.0),
        ({"override": "on"}, 10 * 3600.0),
        ({"terminal": "till-3", "maintenance": "yes"}, 10 * 3600.0),
    ]
    for roles in ([TELLER], [MANAGER], [AUDITOR]):
        for privilege in (HANDLE_CASH, AUDIT_BOOKS):
            for environment, at in probes:
                assert a.permits(roles, privilege, environment, at) == b.permits(
                    roles, privilege, environment, at
                ), (roles, privilege, environment, at)


class TestRoundTrip:
    def test_full_policy_round_trips(self):
        original = full_policy()
        xml = write_permis_policy(original)
        restored = parse_permis_policy(xml)
        assert_equivalent(original, restored)

    def test_round_trip_is_idempotent(self):
        xml = write_permis_policy(full_policy())
        assert write_permis_policy(parse_permis_policy(xml)) == xml

    def test_msod_component_embedded(self):
        xml = write_permis_policy(full_policy())
        assert "<MSoDPolicySet>" in xml
        restored = parse_permis_policy(xml)
        assert restored.msod_policy_set.is_relevant(
            __import__("repro.core", fromlist=["ContextName"]).ContextName.parse(
                "Branch=York, Period=2006"
            )
        )

    def test_policy_without_msod(self):
        policy = (
            PermisPolicyBuilder().grant(TELLER, [HANDLE_CASH]).build()
        )
        restored = parse_permis_policy(write_permis_policy(policy))
        assert len(restored.msod_policy_set) == 0
        assert restored.permits([TELLER], HANDLE_CASH)


class TestParserErrors:
    def test_wrong_root(self):
        with pytest.raises(PolicyParseError, match="root element"):
            parse_permis_policy("<Wrong/>")

    def test_unknown_soa_reference(self):
        xml = (
            "<PermisRBACPolicy><RoleAssignmentPolicy>"
            "<RoleAssignment SOA='ghost' SubjectDomain='o=x'>"
            "<Role type='t' value='v'/></RoleAssignment>"
            "</RoleAssignmentPolicy></PermisRBACPolicy>"
        )
        with pytest.raises(PolicyParseError, match="unknown SOA"):
            parse_permis_policy(xml)

    def test_target_access_needs_role_and_privilege(self):
        xml = (
            "<PermisRBACPolicy><TargetAccessPolicy>"
            "<TargetAccess><Role type='t' value='v'/></TargetAccess>"
            "</TargetAccessPolicy></PermisRBACPolicy>"
        )
        with pytest.raises(PolicyParseError, match="at least one"):
            parse_permis_policy(xml)

    def test_unknown_condition_element(self):
        xml = (
            "<PermisRBACPolicy><TargetAccessPolicy><TargetAccess>"
            "<Role type='t' value='v'/>"
            "<Privilege operation='o' target='u'/>"
            "<Condition><Mystery/></Condition>"
            "</TargetAccess></TargetAccessPolicy></PermisRBACPolicy>"
        )
        with pytest.raises(PolicyParseError, match="unknown condition"):
            parse_permis_policy(xml)

    def test_bad_delegate_depth(self):
        xml = (
            "<PermisRBACPolicy>"
            "<SOAPolicy><SOA ID='s' LDAPDN='cn=a,o=b'/></SOAPolicy>"
            "<RoleAssignmentPolicy>"
            "<RoleAssignment SOA='s' SubjectDomain='o=b' DelegateDepth='two'>"
            "<Role type='t' value='v'/></RoleAssignment>"
            "</RoleAssignmentPolicy></PermisRBACPolicy>"
        )
        with pytest.raises(PolicyParseError, match="integer"):
            parse_permis_policy(xml)


class TestSignedPolicyStore:
    def test_publish_and_load(self):
        directory = LdapDirectory()
        trust = TrustStore()
        trust.trust(SOA_DN, b"soa-key")
        publish_policy(directory, SOA_DN, full_policy(), b"soa-key")
        loaded = load_policy(directory, trust, SOA_DN)
        assert_equivalent(full_policy(), loaded)

    def test_republish_replaces(self):
        directory = LdapDirectory()
        trust = TrustStore()
        trust.trust(SOA_DN, b"soa-key")
        publish_policy(directory, SOA_DN, full_policy(), b"soa-key")
        small = PermisPolicyBuilder().grant(TELLER, [HANDLE_CASH]).build()
        publish_policy(directory, SOA_DN, small, b"soa-key")
        loaded = load_policy(directory, trust, SOA_DN)
        assert not loaded.permits([AUDITOR], AUDIT_BOOKS)

    def test_tampered_policy_rejected(self):
        directory = LdapDirectory()
        trust = TrustStore()
        trust.trust(SOA_DN, b"soa-key")
        signed = publish_policy(directory, SOA_DN, full_policy(), b"soa-key")
        from repro.permis.policy_store import POLICY_ATTRIBUTE, SignedPolicy

        entry = directory.get_entry(SOA_DN)
        entry.remove_value(POLICY_ATTRIBUTE, signed)
        forged = SignedPolicy(
            issuer=signed.issuer,
            xml=signed.xml.replace("Teller", "Mallory"),
            signature=signed.signature,
        )
        entry.add_value(POLICY_ATTRIBUTE, forged)
        with pytest.raises(CredentialError, match="signature verification"):
            load_policy(directory, trust, SOA_DN)

    def test_untrusted_issuer_rejected(self):
        directory = LdapDirectory()
        publish_policy(directory, SOA_DN, full_policy(), b"soa-key")
        with pytest.raises(CredentialError):
            load_policy(directory, TrustStore(), SOA_DN)

    def test_missing_policy_rejected(self):
        directory = LdapDirectory()
        directory.add_entry(SOA_DN)
        with pytest.raises(CredentialError, match="no signed policy"):
            load_policy(directory, TrustStore(), SOA_DN)

    def test_pdp_bootstraps_from_directory_policy(self):
        """Figure 4, end to end: the PDP reads its own signed policy."""
        from repro.core import ContextName
        from repro.permis import PermisPDP, PrivilegeAllocator

        directory = LdapDirectory()
        trust = TrustStore()
        trust.trust(SOA_DN, b"soa-key")
        publish_policy(directory, SOA_DN, full_policy(), b"soa-key")
        soa = PrivilegeAllocator(SOA_DN, b"soa-key", directory)
        soa.issue("cn=alice,o=bank,c=gb", [TELLER], 0, 1e9)
        pdp = PermisPDP.from_directory(SOA_DN, trust, directory)
        decision = pdp.decision(
            "cn=alice,o=bank,c=gb",
            "handleCash",
            "till://main",
            ContextName.parse("Branch=York, Period=2006"),
            environment={"terminal": "till-3"},
            at=10 * 3600.0,
        )
        assert decision.granted

    def test_pdp_refuses_tampered_directory_policy(self):
        from repro.permis import PermisPDP
        from repro.permis.policy_store import POLICY_ATTRIBUTE, SignedPolicy

        directory = LdapDirectory()
        trust = TrustStore()
        trust.trust(SOA_DN, b"soa-key")
        signed = publish_policy(directory, SOA_DN, full_policy(), b"soa-key")
        entry = directory.get_entry(SOA_DN)
        entry.remove_value(POLICY_ATTRIBUTE, signed)
        entry.add_value(
            POLICY_ATTRIBUTE,
            SignedPolicy(signed.issuer, signed.xml + " ", signed.signature),
        )
        with pytest.raises(CredentialError):
            PermisPDP.from_directory(SOA_DN, trust, directory)

    def test_signature_primitives(self):
        signed = sign_policy_xml(SOA_DN, "<PermisRBACPolicy/>", b"k")
        trust = TrustStore()
        trust.trust(SOA_DN, b"k")
        assert verify_signed_policy(signed, trust)
        trust.trust(SOA_DN, b"other")
        assert not verify_signed_policy(signed, trust)

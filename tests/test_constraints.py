"""Unit tests for MMER/MMEP constraints (Sections 2.3-2.4)."""

from collections import Counter

import pytest

from repro.core.constraints import (
    MMEP,
    MMER,
    Privilege,
    Role,
    count_history_matches,
)
from repro.errors import ConstraintError

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
MANAGER = Role("employee", "Manager")

P1 = Privilege("approve", "http://tax/check")
P2 = Privilege("combine", "http://tax/results")
P3 = Privilege("prepare", "http://tax/check")


class TestRole:
    def test_fields(self):
        assert TELLER.role_type == "employee"
        assert TELLER.value == "Teller"

    def test_empty_type_rejected(self):
        with pytest.raises(ConstraintError):
            Role("", "Teller")

    def test_empty_value_rejected(self):
        with pytest.raises(ConstraintError):
            Role("employee", "")

    def test_equality_and_hash(self):
        assert Role("employee", "Teller") == TELLER
        assert hash(Role("employee", "Teller")) == hash(TELLER)

    def test_str(self):
        assert str(TELLER) == "employee:Teller"


class TestPrivilege:
    def test_fields(self):
        assert P1.operation == "approve"
        assert P1.target == "http://tax/check"

    def test_empty_operation_rejected(self):
        with pytest.raises(ConstraintError):
            Privilege("", "target")

    def test_empty_target_rejected(self):
        with pytest.raises(ConstraintError):
            Privilege("op", "")

    def test_str(self):
        assert str(P1) == "approve@http://tax/check"


class TestMMER:
    def test_paper_example(self):
        mmer = MMER([TELLER, AUDITOR], 2)
        assert mmer.forbidden_cardinality == 2
        assert set(mmer.roles) == {TELLER, AUDITOR}

    def test_duplicate_roles_rejected(self):
        with pytest.raises(ConstraintError):
            MMER([TELLER, TELLER], 2)

    def test_single_role_rejected(self):
        with pytest.raises(ConstraintError):
            MMER([TELLER], 1)

    def test_cardinality_one_rejected(self):
        with pytest.raises(ConstraintError):
            MMER([TELLER, AUDITOR], 1)

    def test_cardinality_above_n_rejected(self):
        with pytest.raises(ConstraintError):
            MMER([TELLER, AUDITOR], 3)

    def test_m_out_of_n(self):
        mmer = MMER([TELLER, AUDITOR, MANAGER], 2)
        assert mmer.forbidden_cardinality == 2

    def test_matched_roles(self):
        mmer = MMER([TELLER, AUDITOR], 2)
        assert mmer.matched_roles([TELLER, MANAGER]) == {TELLER}
        assert mmer.matched_roles([MANAGER]) == frozenset()
        assert mmer.matched_roles([TELLER, AUDITOR]) == {TELLER, AUDITOR}

    def test_remaining_roles(self):
        mmer = MMER([TELLER, AUDITOR, MANAGER], 3)
        assert mmer.remaining_roles([TELLER]) == {AUDITOR, MANAGER}
        assert mmer.remaining_roles([TELLER, AUDITOR]) == {MANAGER}

    def test_equality_is_order_insensitive(self):
        assert MMER([TELLER, AUDITOR], 2) == MMER([AUDITOR, TELLER], 2)
        assert hash(MMER([TELLER, AUDITOR], 2)) == hash(MMER([AUDITOR, TELLER], 2))

    def test_inequality_on_cardinality(self):
        assert MMER([TELLER, AUDITOR, MANAGER], 2) != MMER(
            [TELLER, AUDITOR, MANAGER], 3
        )


class TestMMEP:
    def test_paper_example(self):
        mmep = MMEP([P1, P2], 2)
        assert mmep.matches(P1)
        assert mmep.matches(P2)
        assert not mmep.matches(P3)

    def test_duplicate_privilege_allowed(self):
        """The paper's MMEP({p1, p1}, 2) at-most-once idiom."""
        mmep = MMEP([P1, P1], 2)
        assert Counter(mmep.privileges)[P1] == 2

    def test_too_few_entries_rejected(self):
        with pytest.raises(ConstraintError):
            MMEP([P1], 1)

    def test_cardinality_bounds(self):
        with pytest.raises(ConstraintError):
            MMEP([P1, P2], 1)
        with pytest.raises(ConstraintError):
            MMEP([P1, P2], 3)

    def test_remaining_removes_one_occurrence(self):
        mmep = MMEP([P1, P1, P2], 2)
        remaining = mmep.remaining_privileges(P1)
        assert remaining[P1] == 1
        assert remaining[P2] == 1

    def test_remaining_drops_exhausted_privilege(self):
        mmep = MMEP([P1, P2], 2)
        remaining = mmep.remaining_privileges(P1)
        assert P1 not in remaining
        assert remaining[P2] == 1

    def test_equality_is_multiset(self):
        assert MMEP([P1, P1, P2], 2) == MMEP([P1, P2, P1], 2)
        assert MMEP([P1, P1, P2], 2) != MMEP([P1, P2], 2)


class TestCountHistoryMatches:
    def test_no_history(self):
        remaining = Counter({P2: 1})
        assert count_history_matches(remaining, []) == 0

    def test_distinct_privilege_counts_once(self):
        remaining = Counter({P2: 1})
        assert count_history_matches(remaining, [P2, P2, P2]) == 1

    def test_duplicate_entry_needs_multiple_exercises(self):
        remaining = Counter({P1: 2})
        assert count_history_matches(remaining, [P1]) == 1
        assert count_history_matches(remaining, [P1, P1]) == 2
        assert count_history_matches(remaining, [P1, P1, P1]) == 2

    def test_mixed_multiset(self):
        remaining = Counter({P1: 1, P2: 1})
        assert count_history_matches(remaining, [P1]) == 1
        assert count_history_matches(remaining, [P1, P2]) == 2

    def test_unrelated_history_ignored(self):
        remaining = Counter({P1: 1})
        assert count_history_matches(remaining, [P3]) == 0

"""Tests for the server-side observability surface.

Covers the ``metrics`` verb's Prometheus format, the ``slowlog`` verb,
trace pass-through over the wire, and the CLI scrape commands — the
full path a Prometheus scrape job or an on-call engineer would take.
"""

import pytest

from repro.api import open_pdp, open_server
from repro.core import (
    MMER,
    ContextName,
    DecisionRequest,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
)
from repro.errors import ProtocolError
from repro.obs import parse_exposition
from repro.perf import PerfRecorder
from repro.server import protocol

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def bank_policy_set():
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                policy_id="bank",
            )
        ]
    )


def make_request(user, role, index=0):
    operation, target = (
        ("handleCash", "till://1") if role is TELLER else ("auditBooks", "l://1")
    )
    return DecisionRequest(
        user_id=user,
        roles=(role,),
        operation=operation,
        target=target,
        context_instance=ContextName.parse("Branch=York, Period=P1"),
        timestamp=float(index),
        request_id=f"req-{user}-{index}",
    )


@pytest.fixture
def traced_server():
    perf = PerfRecorder()
    with open_server(
        bank_policy_set(), n_shards=2, perf=perf, trace=True
    ) as server:
        yield server


class TestMetricsVerb:
    def test_prometheus_exposition_parses_and_names_shards(self, traced_server):
        with traced_server.client() as pdp:
            for index in range(6):
                pdp.decide(make_request(f"user-{index}", TELLER, index))
            text = pdp.metrics_text()
        samples = parse_exposition(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        # Per-shard queue gauges, one sample per shard.
        depth = by_name["repro_shard_queue_depth"]
        assert {labels["shard"] for labels, _ in depth} == {"0", "1"}
        assert "repro_shard_queue_depth_limit" in by_name
        assert "repro_shard_rejected_total" in by_name
        completed = sum(v for _, v in by_name["repro_shard_completed_total"])
        assert completed == 6.0
        # Engine/service perf counters surface as counters too.
        assert by_name["repro_engine_requests_total"][0][1] == 6.0
        assert by_name["repro_server_decided_total"][0][1] == 6.0
        # Stage histograms carry cumulative buckets.
        stages = {
            labels["stage"]
            for labels, _ in by_name["repro_stage_duration_seconds_bucket"]
        }
        assert "server.decide" in stages

    def test_json_metrics_still_default(self, traced_server):
        with traced_server.client() as pdp:
            body = pdp.metrics()
        assert isinstance(body, dict)
        assert "shards" in body and "perf" in body

    def test_unknown_format_is_protocol_error(self, traced_server):
        with traced_server.client() as pdp:
            with pytest.raises(ProtocolError):
                pdp._call(protocol.OP_METRICS, retriable=True, format="xml")

    def test_cli_metrics_scrape(self, traced_server, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(
            [
                "metrics",
                "--host",
                traced_server.host,
                "--port",
                str(traced_server.port),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        samples = parse_exposition(out)
        assert any(name == "repro_shard_queue_depth" for name, _, _ in samples)


class TestPolicyMetrics:
    def test_policy_epoch_gauge_tracks_reloads(self, traced_server):
        from repro.core import MSoDPolicySet
        from repro.xmlpolicy import write_policy_set

        extended = MSoDPolicySet(
            list(bank_policy_set())
            + [
                MSoDPolicy(
                    ContextName.parse("Region=*, Quarter=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="regional",
                )
            ]
        )
        with traced_server.client() as pdp:
            before = dict(
                (name, value)
                for name, _, value in parse_exposition(pdp.metrics_text())
            )
            assert before["repro_policy_epoch"] == 1.0
            assert before["repro_policy_reloads_total"] == 0.0
            report = pdp.reload_policy(write_policy_set(extended))
            assert report.changed
            after = dict(
                (name, value)
                for name, _, value in parse_exposition(pdp.metrics_text())
            )
        assert after["repro_policy_epoch"] == 2.0
        assert after["repro_policy_reloads_total"] == 1.0


class TestSlowlogVerb:
    def test_slowlog_returns_retained_traces(self, traced_server):
        with traced_server.client() as pdp:
            pdp.decide(make_request("alice", TELLER, 0))
            denied = pdp.decide(make_request("alice", AUDITOR, 1))
            assert not denied.granted
            body = pdp.slowlog()
        assert body["enabled"] is True
        assert body["offered"] == 2
        traces = body["traces"]
        assert len(traces) == 2
        denied_traces = [t for t in traces if t["effect"] == "deny"]
        assert denied_traces[0]["violation"]["policy_id"] == "bank"

    def test_slowlog_disabled_without_tracing(self):
        with open_server(bank_policy_set()) as server:
            with server.client() as pdp:
                pdp.decide(make_request("alice", TELLER))
                body = pdp.slowlog()
        assert body == {
            "enabled": False,
            "capacity": 0,
            "offered": 0,
            "traces": [],
        }

    def test_cli_remote_status_slowlog(self, traced_server, capsys):
        import json

        from repro.cli import main as cli_main

        with traced_server.client() as pdp:
            pdp.decide(make_request("alice", TELLER))
        rc = cli_main(
            [
                "remote-status",
                "--host",
                traced_server.host,
                "--port",
                str(traced_server.port),
                "--slowlog",
            ]
        )
        assert rc == 0
        body = json.loads(capsys.readouterr().out)
        assert body["enabled"] is True
        assert body["traces"]


class TestTraceOverTheWire:
    def test_traced_decisions_round_trip(self, traced_server):
        with traced_server.client() as pdp:
            granted = pdp.decide(make_request("alice", TELLER, 0))
            denied = pdp.decide(make_request("alice", AUDITOR, 1))
        assert granted.trace is not None
        assert granted.trace.stage_durations()
        assert denied.trace is not None
        assert denied.trace.violation.policy_id == "bank"
        assert denied.trace.violation.constraint_kind == "MMER"

    def test_untraced_server_sends_no_trace(self):
        with open_server(bank_policy_set()) as server:
            with server.client() as pdp:
                decision = pdp.decide(make_request("alice", TELLER))
        assert decision.trace is None

    def test_remote_decisions_match_local(self):
        script = [
            ("alice", TELLER),
            ("alice", AUDITOR),
            ("bob", AUDITOR),
            ("bob", TELLER),
        ]
        local = open_pdp(bank_policy_set())
        local_decisions = [
            local.decide(make_request(user, role, index))
            for index, (user, role) in enumerate(script)
        ]
        local.close()
        with open_server(bank_policy_set(), trace=True) as server:
            with server.client() as pdp:
                remote_decisions = [
                    pdp.decide(make_request(user, role, index))
                    for index, (user, role) in enumerate(script)
                ]
        # Decision equality ignores the attached trace, so a traced
        # server must be decision-for-decision identical to a plain
        # local engine.
        assert remote_decisions == local_decisions

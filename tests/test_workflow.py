"""Unit tests for the workflow engine and Example 2 end-to-end."""

import pytest

from repro.core import (
    ContextName,
    InMemoryRetainedADIStore,
    MSoDEngine,
    Privilege,
    Role,
)
from repro.errors import WorkflowError
from repro.framework import (
    PolicyEnforcementPoint,
    ReferenceRBACMSoDPDP,
    RoleTargetAccessPolicy,
    SimulatedClock,
)
from repro.workflow import (
    ProcessDefinition,
    ProcessInstance,
    TaskDef,
    tax_refund_process,
)
from repro.xmlpolicy import tax_refund_policy_set

CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")

PREPARE = Privilege("prepareCheck", "http://www.myTaxOffice.com/Check")
APPROVE = Privilege("approve/disapproveCheck", "http://www.myTaxOffice.com/Check")
COMBINE = Privilege("combineResults", "http://secret.location.com/results")
CONFIRM = Privilege("confirmCheck", "http://secret.location.com/audit")


def tax_pep():
    access = RoleTargetAccessPolicy(
        {CLERK: [PREPARE, CONFIRM], MANAGER: [APPROVE, COMBINE]}
    )
    engine = MSoDEngine(tax_refund_policy_set(), InMemoryRetainedADIStore())
    return PolicyEnforcementPoint(
        ReferenceRBACMSoDPDP(access, engine), SimulatedClock()
    )


def tax_instance(instance_id="42", pep=None):
    return ProcessInstance(
        tax_refund_process(),
        instance_id,
        ContextName.parse("TaxOffice=Leeds"),
        pep if pep is not None else tax_pep(),
    )


class TestDefinitionValidation:
    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(WorkflowError):
            ProcessDefinition(
                "p", "ctx", [TaskDef("T1", "op", "t"), TaskDef("T1", "op2", "t")]
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(WorkflowError):
            ProcessDefinition(
                "p", "ctx", [TaskDef("T1", "op", "t", depends_on=("T9",))]
            )

    def test_cycle_rejected(self):
        with pytest.raises(WorkflowError, match="cyclic"):
            ProcessDefinition(
                "p",
                "ctx",
                [
                    TaskDef("T1", "a", "t", depends_on=("T2",)),
                    TaskDef("T2", "b", "t", depends_on=("T1",)),
                ],
            )

    def test_empty_process_rejected(self):
        with pytest.raises(WorkflowError):
            ProcessDefinition("p", "ctx", [])

    def test_bad_multiplicity(self):
        with pytest.raises(WorkflowError):
            TaskDef("T1", "op", "t", multiplicity=0)

    def test_tax_refund_shape(self):
        process = tax_refund_process()
        assert process.task_ids() == ("T1", "T2", "T3", "T4")
        assert process.task("T2").multiplicity == 2
        assert process.task("T4").depends_on == ("T3",)


class TestRouting:
    def test_context_instance_name(self):
        instance = tax_instance("42")
        assert str(instance.context) == "TaxOffice=Leeds, taxRefundProcess=42"

    def test_initial_availability(self):
        instance = tax_instance()
        assert [task.task_id for task in instance.available_tasks()] == ["T1"]

    def test_out_of_order_task_rejected(self):
        instance = tax_instance()
        with pytest.raises(WorkflowError):
            instance.attempt("T2", "mgr1", [MANAGER])

    def test_multiplicity_gates_t3(self):
        instance = tax_instance()
        instance.attempt("T1", "clerk1", [CLERK])
        instance.attempt("T2", "mgr1", [MANAGER])
        # One approval is not enough: T3 not yet available.
        assert "T3" not in [task.task_id for task in instance.available_tasks()]
        instance.attempt("T2", "mgr2", [MANAGER])
        assert "T3" in [task.task_id for task in instance.available_tasks()]

    def test_exhausted_task_rejected(self):
        instance = tax_instance()
        instance.attempt("T1", "clerk1", [CLERK])
        with pytest.raises(WorkflowError):
            instance.attempt("T1", "clerk2", [CLERK])

    def test_unknown_task_rejected(self):
        with pytest.raises(WorkflowError):
            tax_instance().attempt("T9", "x", [CLERK])


class TestExample2EndToEnd:
    def run_happy_path(self, instance):
        assert instance.attempt("T1", "clerk1", [CLERK]).granted
        assert instance.attempt("T2", "mgr1", [MANAGER]).granted
        assert instance.attempt("T2", "mgr2", [MANAGER]).granted
        assert instance.attempt("T3", "mgr3", [MANAGER]).granted
        assert instance.attempt("T4", "clerk2", [CLERK]).granted

    def test_compliant_run_completes(self):
        instance = tax_instance()
        self.run_happy_path(instance)
        assert instance.is_complete()
        assert instance.executors_of("T2") == ("mgr1", "mgr2")

    def test_same_manager_cannot_approve_twice(self):
        instance = tax_instance()
        instance.attempt("T1", "clerk1", [CLERK])
        assert instance.attempt("T2", "mgr1", [MANAGER]).granted
        decision = instance.attempt("T2", "mgr1", [MANAGER])
        assert decision.denied
        assert instance.completed_count("T2") == 1

    def test_approver_cannot_combine(self):
        instance = tax_instance()
        instance.attempt("T1", "clerk1", [CLERK])
        instance.attempt("T2", "mgr1", [MANAGER])
        instance.attempt("T2", "mgr2", [MANAGER])
        assert instance.attempt("T3", "mgr1", [MANAGER]).denied
        assert instance.attempt("T3", "mgr3", [MANAGER]).granted

    def test_preparing_clerk_cannot_confirm(self):
        instance = tax_instance()
        instance.attempt("T1", "clerk1", [CLERK])
        instance.attempt("T2", "mgr1", [MANAGER])
        instance.attempt("T2", "mgr2", [MANAGER])
        instance.attempt("T3", "mgr3", [MANAGER])
        assert instance.attempt("T4", "clerk1", [CLERK]).denied
        assert instance.attempt("T4", "clerk2", [CLERK]).granted

    def test_instances_are_isolated(self):
        """The same people may run a *different* process instance."""
        pep = tax_pep()
        first = tax_instance("1", pep)
        self.run_happy_path(first)
        second = tax_instance("2", pep)
        self.run_happy_path(second)  # same users, fresh instance: all granted

    def test_completed_instance_leaves_no_history(self):
        """T4 (confirmCheck) is the policy's last step: retained ADI for
        the instance is flushed when the process completes."""
        pep = tax_pep()
        instance = tax_instance("9", pep)
        self.run_happy_path(instance)
        store = pep.pdp.msod_engine.store
        assert store.find(instance.context) == []

    def test_cancelled_instance_releases_history(self):
        """Cancellation reports the implied termination (Section 2.2),
        so an abandoned refund does not pin retained-ADI records."""
        pep = tax_pep()
        instance = tax_instance("77", pep)
        instance.attempt("T1", "clerk1", [CLERK])
        instance.attempt("T2", "mgr1", [MANAGER])
        engine = pep.pdp.msod_engine
        assert engine.store.find(instance.context) != []
        purged = instance.cancel(msod_engine=engine)
        assert purged > 0
        assert engine.store.find(instance.context) == []
        assert instance.cancelled

    def test_cancelled_instance_rejects_attempts(self):
        instance = tax_instance("78")
        instance.cancel()
        with pytest.raises(WorkflowError, match="cancelled"):
            instance.attempt("T1", "clerk1", [CLERK])
        with pytest.raises(WorkflowError, match="already cancelled"):
            instance.cancel()

    def test_denied_attempt_can_be_retried_by_another_user(self):
        instance = tax_instance()
        instance.attempt("T1", "clerk1", [CLERK])
        instance.attempt("T2", "mgr1", [MANAGER])
        assert instance.attempt("T2", "mgr1", [MANAGER]).denied
        assert instance.attempt("T2", "mgr2", [MANAGER]).granted
        assert instance.completed_count("T2") == 2

"""Unit tests for the Appendix-A XML policy language."""

import pytest

from repro.core.constraints import Privilege, Role
from repro.core.context import ContextName
from repro.errors import PolicyParseError
from repro.xmlpolicy import (
    BANK_POLICY_XML,
    COMBINED_POLICY_XML,
    TAX_REFUND_POLICY_XML,
    bank_policy_set,
    combined_policy_set,
    parse_policy_set,
    tax_refund_policy_set,
    validate_policy_document,
    write_policy_set,
    write_policy_set_file,
    parse_policy_set_file,
)


class TestParsePaperPolicies:
    def test_bank_policy(self):
        policy_set = bank_policy_set()
        assert len(policy_set) == 1
        policy = policy_set.policies[0]
        assert policy.business_context == ContextName.parse("Branch=*, Period=!")
        assert policy.first_step is None
        assert policy.last_step.operation == "CommitAudit"
        assert len(policy.mmers) == 1
        mmer = policy.mmers[0]
        assert mmer.forbidden_cardinality == 2
        assert set(mmer.roles) == {
            Role("employee", "Teller"),
            Role("employee", "Auditor"),
        }

    def test_tax_refund_policy(self):
        policy_set = tax_refund_policy_set()
        policy = policy_set.policies[0]
        assert policy.business_context == ContextName.parse(
            "TaxOffice=!, taxRefundProcess=!"
        )
        assert policy.first_step.operation == "prepareCheck"
        assert policy.last_step.operation == "confirmCheck"
        assert len(policy.mmeps) == 2
        duplicate = policy.mmeps[1]
        approve = Privilege(
            "approve/disapproveCheck", "http://www.myTaxOffice.com/Check"
        )
        assert list(duplicate.privileges).count(approve) == 2

    def test_combined_policy_set(self):
        assert len(combined_policy_set()) == 2

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "policy.xml")
        write_policy_set_file(combined_policy_set(), path)
        restored = parse_policy_set_file(path)
        assert len(restored) == 2


class TestParserErrors:
    def test_malformed_xml(self):
        with pytest.raises(PolicyParseError, match="not well-formed"):
            parse_policy_set("<MSoDPolicySet>")

    def test_wrong_root(self):
        with pytest.raises(PolicyParseError, match="root element"):
            parse_policy_set("<Wrong/>")

    def test_empty_policy_set(self):
        with pytest.raises(PolicyParseError, match="at least one"):
            parse_policy_set("<MSoDPolicySet></MSoDPolicySet>")

    def test_missing_business_context(self):
        xml = (
            "<MSoDPolicySet><MSoDPolicy>"
            "<MMER ForbiddenCardinality='2'>"
            "<Role type='t' value='a'/><Role type='t' value='b'/>"
            "</MMER></MSoDPolicy></MSoDPolicySet>"
        )
        with pytest.raises(PolicyParseError, match="BusinessContext"):
            parse_policy_set(xml)

    def test_bad_cardinality(self):
        xml = (
            "<MSoDPolicySet><MSoDPolicy BusinessContext='A=!'>"
            "<MMER ForbiddenCardinality='two'>"
            "<Role type='t' value='a'/><Role type='t' value='b'/>"
            "</MMER></MSoDPolicy></MSoDPolicySet>"
        )
        with pytest.raises(PolicyParseError, match="not an integer"):
            parse_policy_set(xml)

    def test_single_role_mmer(self):
        xml = (
            "<MSoDPolicySet><MSoDPolicy BusinessContext='A=!'>"
            "<MMER ForbiddenCardinality='2'><Role type='t' value='a'/>"
            "</MMER></MSoDPolicy></MSoDPolicySet>"
        )
        with pytest.raises(PolicyParseError, match="at least 2"):
            parse_policy_set(xml)

    def test_unknown_element_in_policy(self):
        xml = (
            "<MSoDPolicySet><MSoDPolicy BusinessContext='A=!'>"
            "<Surprise/></MSoDPolicy></MSoDPolicySet>"
        )
        with pytest.raises(PolicyParseError, match="unexpected element"):
            parse_policy_set(xml)

    def test_multiple_first_steps(self):
        xml = (
            "<MSoDPolicySet><MSoDPolicy BusinessContext='A=!'>"
            "<FirstStep operation='a' targetURI='t'/>"
            "<FirstStep operation='b' targetURI='t'/>"
            "<MMER ForbiddenCardinality='2'>"
            "<Role type='t' value='a'/><Role type='t' value='b'/>"
            "</MMER></MSoDPolicy></MSoDPolicySet>"
        )
        with pytest.raises(PolicyParseError, match="multiple <FirstStep>"):
            parse_policy_set(xml)

    def test_strict_rejects_mixed_constraints(self):
        xml = (
            "<MSoDPolicySet><MSoDPolicy BusinessContext='A=!'>"
            "<MMER ForbiddenCardinality='2'>"
            "<Role type='t' value='a'/><Role type='t' value='b'/></MMER>"
            "<MMEP ForbiddenCardinality='2'>"
            "<Privilege operation='x' target='u'/>"
            "<Privilege operation='y' target='u'/></MMEP>"
            "</MSoDPolicy></MSoDPolicySet>"
        )
        with pytest.raises(PolicyParseError, match="either MMER or MMEP"):
            parse_policy_set(xml)
        relaxed = parse_policy_set(xml, strict=False)
        assert len(relaxed.policies[0].mmers) == 1
        assert len(relaxed.policies[0].mmeps) == 1

    def test_both_privilege_spellings_accepted(self):
        xml = (
            "<MSoDPolicySet><MSoDPolicy BusinessContext='A=!'>"
            "<MMEP ForbiddenCardinality='2'>"
            "<Privilege operation='x' target='u'/>"
            "<Operation value='y' target='u'/></MMEP>"
            "</MSoDPolicy></MSoDPolicySet>"
        )
        policy_set = parse_policy_set(xml)
        privileges = set(policy_set.policies[0].mmeps[0].privileges)
        assert privileges == {Privilege("x", "u"), Privilege("y", "u")}

    def test_bad_context_name(self):
        xml = (
            "<MSoDPolicySet><MSoDPolicy BusinessContext='not-a-context'>"
            "<MMER ForbiddenCardinality='2'>"
            "<Role type='t' value='a'/><Role type='t' value='b'/>"
            "</MMER></MSoDPolicy></MSoDPolicySet>"
        )
        with pytest.raises(PolicyParseError, match="bad BusinessContext"):
            parse_policy_set(xml)


class TestWriter:
    def test_round_trip_preserves_semantics(self):
        original = combined_policy_set()
        xml = write_policy_set(original)
        restored = parse_policy_set(xml)
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a.business_context == b.business_context
            assert list(a.mmers) == list(b.mmers)
            assert list(a.mmeps) == list(b.mmeps)
            assert a.first_step == b.first_step
            assert a.last_step == b.last_step
            assert a.policy_id == b.policy_id

    def test_compact_output_parses(self):
        xml = write_policy_set(bank_policy_set(), pretty=False)
        assert "\n" not in xml
        assert len(parse_policy_set(xml)) == 1


class TestValidator:
    def test_paper_documents_valid(self):
        for xml in (BANK_POLICY_XML, TAX_REFUND_POLICY_XML, COMBINED_POLICY_XML):
            assert validate_policy_document(xml) == []

    def test_reports_all_problems_in_one_pass(self):
        xml = (
            "<MSoDPolicySet>"
            "<MSoDPolicy>"
            "<MMER ForbiddenCardinality='9'>"
            "<Role type='t' value='a'/><Role value='b'/>"
            "</MMER></MSoDPolicy>"
            "<MSoDPolicy BusinessContext='B=!'/>"
            "</MSoDPolicySet>"
        )
        problems = validate_policy_document(xml)
        assert len(problems) >= 3
        assert any("BusinessContext" in p for p in problems)
        assert any("ForbiddenCardinality" in p for p in problems)
        assert any("missing attribute" in p for p in problems)

    def test_not_xml(self):
        assert validate_policy_document("{json: true}") != []

    def test_empty_set(self):
        assert any(
            "no policies" in problem
            for problem in validate_policy_document("<MSoDPolicySet/>")
        )

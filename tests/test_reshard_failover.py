"""Fault injection for online resharding.

The worst cases ISSUE 9 names: the coordinator dies mid-migration, and
a *source* shard's primary dies while its users' history is still being
imported.  The migration must resume from the persisted state file,
walk the promoted standby's fresh trail lineage as well as the dead
primary's sealed one, and finish with placement and history intact —
no lost decisions, no MMER leaks.

These tests freeze the migration by crashing the coordinator *first*,
so the primary kill is guaranteed to land mid-migration rather than
racing a fast catch-up.
"""

import time

import pytest

from repro.cluster import LocalCluster
from repro.cluster.client import ClusterPDP
from repro.core import ContextName, DecisionRequest, Role
from repro.workload import bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")

USERS = [f"fault-user-{i}" for i in range(24)]


def teller_request(user, serial):
    return DecisionRequest(
        user_id=user,
        roles=(TELLER,),
        operation="handleCash",
        target="till://cash",
        context_instance=ContextName.parse(
            f"Branch={user}, Period={user}-S{serial}"
        ),
        timestamp=float(serial),
    )


def auditor_probe(user, serial, timestamp):
    return DecisionRequest(
        user_id=user,
        roles=(AUDITOR,),
        operation="auditBooks",
        target="ledger://books",
        context_instance=ContextName.parse(
            f"Branch={user}, Period={user}-S{serial}"
        ),
        timestamp=timestamp,
    )


@pytest.fixture(scope="class")
def fault_cluster(tmp_path_factory):
    """Default (fast) health/catch-up loops: kills must fail over."""
    cluster = LocalCluster(
        bank_policy_set(),
        2,
        str(tmp_path_factory.mktemp("reshard-faults")),
        store="memory",
        fsync=False,
    ).start()
    yield cluster
    cluster.stop()


@pytest.mark.usefixtures("fault_cluster")
class TestReshardUnderFaults:
    def test_split_survives_coordinator_and_source_primary_death(
        self, fault_cluster
    ):
        cluster = fault_cluster
        with ClusterPDP(
            (cluster.host, cluster.port), failover_wait=30.0
        ) as pdp:
            for serial, user in enumerate(USERS):
                assert pdp.decide(teller_request(user, serial)).granted

        added = cluster.add_shard()
        status = cluster.reshard_status()
        assert status["active"]

        # Freeze the migration, then kill a source primary while it is
        # frozen: the death is unambiguously mid-migration, and only
        # the restarted coordinator can promote the standby.
        cluster.crash_coordinator()
        source = status["migration"]["old_shards"][0]
        killed = cluster.kill_primary(source)
        time.sleep(0.3)
        cluster.restart_coordinator()

        final = cluster.wait_reshard(timeout=60.0)
        split = final["last_migration"]
        assert split["phase"] == "done"
        assert split["kind"] == "split"
        # With no live load the catch-up converges on its first tick,
        # so the import may finish entirely from the dead primary's
        # sealed lineage; the promotion races behind it.  (The resize
        # smoke's sustained load exercises the two-lineage import.)
        assert split["trail_dirs"][source]
        deadline = time.monotonic() + 15.0
        while cluster.shard(source).failovers < 1:
            assert time.monotonic() < deadline, (
                "killed source primary never failed over"
            )
            time.sleep(0.05)
        assert cluster.shard(source).primary.name != killed

        ring = cluster.ring
        assert added in ring.shard_names
        for shard_name in cluster.shard_names:
            resident = {
                r.user_id
                for r in cluster.shard(shard_name).primary.store.records()
            }
            expected = {
                u for u in USERS if ring.shard_for(u) == shard_name
            }
            assert resident == expected

        # Post-split decides land for moved users, and imported history
        # still drives MMER denials on the new owner.
        moved = [u for u in USERS if ring.shard_for(u) == added]
        assert moved
        with ClusterPDP(
            (cluster.host, cluster.port), failover_wait=30.0
        ) as pdp:
            for serial, user in enumerate(moved):
                assert pdp.decide(
                    teller_request(user, 200 + serial)
                ).granted
            denied = pdp.decide(auditor_probe(moved[0], 0, 500.0))
            assert not denied.granted

    def test_drain_survives_subject_primary_death(self, fault_cluster):
        cluster = fault_cluster
        subject = next(
            name
            for name in cluster.shard_names
            if name not in ("shard-0", "shard-1")
        )
        moved_before = {
            r.user_id
            for r in cluster.shard(subject).primary.store.records()
        }
        assert moved_before

        cluster.drain_shard(subject)
        cluster.crash_coordinator()
        cluster.kill_primary(subject)
        time.sleep(0.3)
        cluster.restart_coordinator()

        final = cluster.wait_reshard(timeout=60.0)
        drain = final["last_migration"]
        assert drain["phase"] == "done"
        assert drain["kind"] == "drain"
        assert subject not in cluster.shard_names
        assert sorted(cluster.shard_names) == ["shard-0", "shard-1"]

        # Every drained user landed on a survivor with history intact.
        ring = cluster.ring
        for user in moved_before:
            owner = ring.shard_for(user)
            resident = {
                r.user_id
                for r in cluster.shard(owner).primary.store.records()
            }
            assert user in resident

        with ClusterPDP(
            (cluster.host, cluster.port), failover_wait=30.0
        ) as pdp:
            probe_user = sorted(moved_before)[0]
            denied = pdp.decide(auditor_probe(probe_user, 0, 600.0))
            assert not denied.granted
            serial = 300
            for user in sorted(moved_before):
                serial += 1
                assert pdp.decide(teller_request(user, serial)).granted

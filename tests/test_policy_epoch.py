"""Live policy hot-reload: epochs, digests, atomic swaps, replay.

Covers the policy-versioning layer end to end: digest canonicalisation,
:class:`PolicyVersion`/:class:`PolicySwapReport` wire round-trips, the
engine's atomic ``swap_policy`` (no-op detection, memo invalidation,
epoch stamping), concurrency (every in-flight decision lands wholly
under one policy version), the uniform ``reload_policy`` on local,
server and remote handles, and epoch-aware audit-trail recovery across
a reload.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import load_policy_source, open_pdp, open_server
from repro.audit import (
    EVENT_DECISION,
    AuditTrailManager,
    decision_event_payload,
    recover_retained_adi,
)
from repro.core import (
    INITIAL_EPOCH,
    MMER,
    ContextName,
    Decision,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    PolicyEpochLog,
    PolicySwapReport,
    PolicyVersion,
    Role,
    SQLiteRetainedADIStore,
    policy_set_digest,
    store_digest,
)
from repro.errors import PolicyError
from repro.perf import PerfRecorder
from repro.workload import decision_request_stream
from repro.xmlpolicy import bank_policy_set, parse_policy_set, write_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def bank_set() -> MSoDPolicySet:
    return bank_policy_set()


def regional_policy() -> MSoDPolicy:
    """A policy over a context the bank workload never touches."""
    return MSoDPolicy(
        ContextName.parse("Region=*, Quarter=!"),
        mmers=[MMER([TELLER, AUDITOR], 2)],
        policy_id="regional",
    )


def extended_set() -> MSoDPolicySet:
    return MSoDPolicySet(list(bank_set()) + [regional_policy()])


def request(user: str, role: Role, index: int = 0) -> DecisionRequest:
    return DecisionRequest(
        user_id=user,
        roles=(role,),
        operation="handleCash" if role == TELLER else "auditBooks",
        target="till://cash" if role == TELLER else "ledger://books",
        context_instance=ContextName.parse("Branch=B1, Period=P1"),
        timestamp=float(index),
    )


# ---------------------------------------------------------------------------
# Digest canonicalisation
# ---------------------------------------------------------------------------
class TestPolicySetDigest:
    def test_deterministic(self):
        assert policy_set_digest(bank_set()) == policy_set_digest(bank_set())

    def test_role_order_within_constraint_is_canonical(self):
        a = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Branch=*, Period=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="bank",
                )
            ]
        )
        b = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Branch=*, Period=!"),
                    mmers=[MMER([AUDITOR, TELLER], 2)],
                    policy_id="bank",
                )
            ]
        )
        assert policy_set_digest(a) == policy_set_digest(b)

    def test_semantic_change_changes_digest(self):
        assert policy_set_digest(bank_set()) != policy_set_digest(
            extended_set()
        )

    def test_xml_round_trip_is_digest_stable(self):
        original = extended_set()
        round_tripped = parse_policy_set(write_policy_set(original))
        assert policy_set_digest(original) == policy_set_digest(round_tripped)


# ---------------------------------------------------------------------------
# Version / report wire shapes
# ---------------------------------------------------------------------------
class TestVersionRoundTrip:
    def test_policy_version_round_trip(self):
        version = PolicyVersion(epoch=3, digest="ab" * 32, policies=2)
        assert PolicyVersion.from_dict(version.to_dict()) == version

    def test_policy_version_rejects_garbage(self):
        with pytest.raises(PolicyError):
            PolicyVersion.from_dict({"epoch": "three", "digest": "", "policies": 0})
        with pytest.raises(PolicyError):
            PolicyVersion.from_dict({"epoch": True, "digest": "x", "policies": 1})

    def test_swap_report_round_trip(self):
        previous = PolicyVersion(epoch=1, digest="a" * 64, policies=1)
        version = PolicyVersion(epoch=2, digest="b" * 64, policies=2)
        report = PolicySwapReport(
            version=version,
            previous=previous,
            changed=True,
            findings=("note one",),
        )
        assert PolicySwapReport.from_dict(report.to_dict()) == report

    def test_epoch_log_resolves_and_evicts(self):
        log = PolicyEpochLog(limit=2)
        sets = [bank_set(), extended_set(), bank_set()]
        for epoch, policy_set in enumerate(sets, start=1):
            log.record(epoch, policy_set, policy_set_digest(policy_set))
        assert len(log) == 2
        assert log.resolve(1) is None  # evicted
        assert log.resolve(2) is sets[1]
        assert log.resolve(3) is sets[2]


# ---------------------------------------------------------------------------
# Engine swap semantics
# ---------------------------------------------------------------------------
class TestEngineSwap:
    def test_initial_version(self):
        engine = MSoDEngine(bank_set(), InMemoryRetainedADIStore())
        version = engine.policy_version()
        assert version.epoch == INITIAL_EPOCH
        assert version.digest == policy_set_digest(bank_set())

    def test_decisions_stamp_the_active_version(self):
        engine = MSoDEngine(bank_set(), InMemoryRetainedADIStore())
        decision = engine.check(request("alice", TELLER, 1))
        assert decision.policy_epoch == INITIAL_EPOCH
        assert decision.policy_digest == engine.policy_digest
        engine.swap_policy(extended_set())
        decision = engine.check(request("alice", TELLER, 2))
        assert decision.policy_epoch == INITIAL_EPOCH + 1
        assert decision.policy_digest == policy_set_digest(extended_set())

    def test_identical_reload_is_a_noop(self):
        perf = PerfRecorder()
        engine = MSoDEngine(
            bank_set(), InMemoryRetainedADIStore(), perf=perf
        )
        report = engine.swap_policy(
            parse_policy_set(write_policy_set(bank_set()))
        )
        assert not report.changed
        assert engine.policy_epoch == INITIAL_EPOCH
        assert perf.counter("engine.policy_reload_noops") == 1
        assert perf.counter("engine.policy_reloads") == 0

    def test_force_advances_epoch_on_identical_digest(self):
        engine = MSoDEngine(bank_set(), InMemoryRetainedADIStore())
        report = engine.swap_policy(bank_set(), force=True)
        assert report.changed
        assert engine.policy_epoch == INITIAL_EPOCH + 1
        assert report.version.digest == report.previous.digest

    def test_swap_takes_effect_semantically(self):
        """A constraint added by the reload denies what it must."""
        engine = MSoDEngine(bank_set(), InMemoryRetainedADIStore())
        regional_context = ContextName.parse("Region=R1, Quarter=Q1")

        def regional_request(role, index):
            return DecisionRequest(
                user_id="carol",
                roles=(role,),
                operation="handleCash" if role == TELLER else "auditBooks",
                target="till://cash" if role == TELLER else "ledger://books",
                context_instance=regional_context,
                timestamp=float(index),
            )

        # Before the reload the regional context is unconstrained.
        assert engine.check(regional_request(TELLER, 1)).granted
        assert engine.check(regional_request(AUDITOR, 2)).granted
        engine.swap_policy(extended_set())
        # After it, exercising the second exclusive role is an MSoD deny
        # (the teller grant was re-recorded under the new index).
        assert engine.check(regional_request(TELLER, 3)).granted
        assert engine.check(regional_request(AUDITOR, 4)).denied

    def test_epoch_log_remembers_superseded_sets(self):
        engine = MSoDEngine(bank_set(), InMemoryRetainedADIStore())
        first = engine.policy_set
        engine.swap_policy(extended_set())
        assert engine.policy_set_for_epoch(INITIAL_EPOCH) is first
        assert engine.policy_set_for_epoch(INITIAL_EPOCH + 1) is engine.policy_set
        assert engine.policy_set_for_epoch(99) is None

    def test_concurrent_decisions_land_under_one_version(self):
        """No decision may mix two policy versions mid-evaluation.

        Uses the SQLite store — the backend whose single-lock
        discipline supports genuinely concurrent callers — with one
        user population per thread, so the only shared mutable state
        under test is the engine's active-policy tuple.
        """
        engine = MSoDEngine(bank_set(), SQLiteRetainedADIStore(":memory:"))
        digests = {
            INITIAL_EPOCH + offset: policy_set_digest(policy_set)
            for offset, policy_set in enumerate(
                [bank_set(), extended_set(), bank_set()]
            )
        }
        stop = threading.Event()
        torn: list[Decision] = []
        errors: list[BaseException] = []

        def decider(worker: int) -> None:
            index = 0
            try:
                while not stop.is_set():
                    index += 1
                    decision = engine.check(
                        request(f"user-{worker}-{index % 7}", TELLER, index)
                    )
                    if digests[decision.policy_epoch] != decision.policy_digest:
                        torn.append(decision)
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=decider, args=(worker,))
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            engine.swap_policy(extended_set())
            engine.swap_policy(bank_set())
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert not torn
        assert engine.policy_epoch == INITIAL_EPOCH + 2


# ---------------------------------------------------------------------------
# Uniform reload across the PDP handles + differential equivalence
# ---------------------------------------------------------------------------
class TestUniformReload:
    def test_load_policy_source_accepts_xml_text(self):
        loaded = load_policy_source(write_policy_set(bank_set()))
        assert policy_set_digest(loaded) == policy_set_digest(bank_set())

    def test_load_policy_source_rejects_none(self):
        with pytest.raises(PolicyError):
            load_policy_source(None)

    def test_local_pdp_reload(self):
        with open_pdp(bank_set()) as pdp:
            assert pdp.policy_version().epoch == INITIAL_EPOCH
            report = pdp.reload_policy(write_policy_set(extended_set()))
            assert report.changed
            assert pdp.policy_version().epoch == INITIAL_EPOCH + 1

    def test_remote_reload_and_status(self):
        with open_server(bank_set()) as server:
            with server.client() as pdp:
                status = pdp.policy_status()
                assert status["version"]["epoch"] == INITIAL_EPOCH
                assert status["reloads"] == 0
                noop = pdp.reload_policy(write_policy_set(bank_set()))
                assert not noop.changed
                report = pdp.reload_policy(extended_set())
                assert report.changed
                assert pdp.policy_version().epoch == INITIAL_EPOCH + 1
                assert pdp.policy_status()["reloads"] == 1
                decision = pdp.decide(request("dora", TELLER, 9))
                assert decision.policy_epoch == INITIAL_EPOCH + 1

    def test_remote_reload_rejects_bad_xml(self):
        with open_server(bank_set()) as server:
            with server.client() as pdp:
                with pytest.raises(PolicyError):
                    pdp.reload_policy("<MSoDPolicySet><oops/")
                # The active policy is untouched by the rejection.
                assert pdp.policy_version().epoch == INITIAL_EPOCH

    def test_identical_reload_is_differentially_invisible(self):
        """Memory, SQLite and remote decide bit-identically across a
        digest no-op reload injected mid-stream."""
        requests = list(decision_request_stream(120, n_users=12, seed=3))
        reload_at = len(requests) // 2

        def run_local(store) -> list:
            with open_pdp(bank_set(), store=store) as pdp:
                decisions = []
                for index, req in enumerate(requests):
                    if index == reload_at:
                        assert not pdp.reload_policy(
                            write_policy_set(bank_set())
                        ).changed
                    decisions.append(pdp.decide(req))
                digest = store_digest(pdp.store)
                return decisions, digest

        memory_decisions, memory_digest = run_local("memory")
        sqlite_decisions, sqlite_digest = run_local(
            SQLiteRetainedADIStore(":memory:")
        )
        with open_server(bank_set()) as server:
            with server.client() as pdp:
                remote_decisions = []
                for index, req in enumerate(requests):
                    if index == reload_at:
                        assert not pdp.reload_policy(bank_set()).changed
                    remote_decisions.append(pdp.decide(req))

        assert memory_decisions == sqlite_decisions
        assert memory_digest == sqlite_digest
        for local, remote in zip(memory_decisions, remote_decisions):
            assert local.effect == remote.effect
            assert local.policy_epoch == remote.policy_epoch
            assert local.policy_digest == remote.policy_digest
            assert local.reason == remote.reason


# ---------------------------------------------------------------------------
# Epoch-aware recovery
# ---------------------------------------------------------------------------
class TestEpochAwareRecovery:
    def _trail_spanning_a_reload(self, tmp_path):
        """Grant under the bank policy, then narrow to regional-only."""
        trails = AuditTrailManager(str(tmp_path), b"reload-key")
        engine = MSoDEngine(bank_set(), InMemoryRetainedADIStore())
        for index in range(1, 9):
            decision = engine.check(request(f"user-{index}", TELLER, index))
            assert decision.granted
            trails.append(
                EVENT_DECISION,
                decision.request.timestamp,
                decision_event_payload(decision),
            )
        narrowed = MSoDPolicySet([regional_policy()])
        engine.swap_policy(narrowed)
        return trails, engine

    def test_payload_carries_policy_version(self, tmp_path):
        trails, engine = self._trail_spanning_a_reload(tmp_path)
        events = list(trails.events())
        assert events
        for event in events:
            assert event.payload["policy_epoch"] == INITIAL_EPOCH
            assert len(event.payload["policy_digest"]) == 64

    def test_resolver_replays_under_the_producing_policy(self, tmp_path):
        trails, engine = self._trail_spanning_a_reload(tmp_path)
        # Without the resolver the narrowed current set drops the bank
        # records ("according to its current set of MSoD policies").
        plain = InMemoryRetainedADIStore()
        report = recover_retained_adi(trails, engine.policy_set, plain)
        assert report.records_replayed == 0
        assert report.records_skipped >= 8
        dropped = report.records_skipped
        # With the resolver each event replays under epoch 1's set.
        aware = InMemoryRetainedADIStore()
        report = recover_retained_adi(
            trails,
            engine.policy_set,
            aware,
            policy_resolver=engine.policy_set_for_epoch,
        )
        assert report.records_replayed == dropped
        assert report.records_skipped == 0
        assert aware.count() == dropped

    def test_unresolvable_epoch_falls_back_to_current_set(self, tmp_path):
        trails, engine = self._trail_spanning_a_reload(tmp_path)
        target = InMemoryRetainedADIStore()
        report = recover_retained_adi(
            trails,
            engine.policy_set,
            target,
            policy_resolver=lambda epoch: None,
        )
        assert report.records_replayed == 0
        assert report.records_skipped >= 8

"""Unit tests for PERMIS delegation-of-authority chain validation."""

import pytest

from repro.core import Role
from repro.permis import (
    AttributeCredential,
    CredentialValidationService,
    LdapDirectory,
    PermisPolicyBuilder,
    PrivilegeAllocator,
    TrustStore,
    sign_credential,
)

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
SOA_DN = "cn=SOA,o=bank,c=gb"
MANAGER_DN = "cn=branch-manager,o=bank,c=gb"
CLERK_DN = "cn=clerk,o=bank,c=gb"

SOA_KEY = b"soa-key"
MANAGER_KEY = b"manager-key"


@pytest.fixture
def directory():
    d = LdapDirectory()
    # The delegator's verification key is published in the directory
    # (standing in for the user's PKI certificate).
    entry = d.ensure_entry(MANAGER_DN)
    entry.add_value(
        CredentialValidationService.SUBJECT_KEY_ATTRIBUTE, MANAGER_KEY
    )
    return d


@pytest.fixture
def policy():
    return (
        PermisPolicyBuilder()
        .allow_assignment(
            SOA_DN, [TELLER, AUDITOR], "o=bank,c=gb", max_delegation_depth=1
        )
        .build()
    )


@pytest.fixture
def cvs(policy, directory):
    trust = TrustStore()
    trust.trust(SOA_DN, SOA_KEY)
    return CredentialValidationService(policy, trust, directory)


def soa_credential(roles=(TELLER, AUDITOR), not_before=0.0, not_after=100.0):
    credential = AttributeCredential(
        MANAGER_DN, SOA_DN, tuple(roles), not_before, not_after
    )
    return sign_credential(credential, SOA_KEY)


def delegated_credential(
    roles=(TELLER,), not_before=10.0, not_after=90.0, holder=CLERK_DN,
    key=MANAGER_KEY,
):
    credential = AttributeCredential(
        holder, MANAGER_DN, tuple(roles), not_before, not_after
    )
    return sign_credential(credential, key)


class TestValidChains:
    def test_depth_zero_chain_equals_direct_assignment(self, cvs):
        result = cvs.validate_delegation_chain(
            MANAGER_DN, [soa_credential()], at=50.0
        )
        assert result.valid_roles == {TELLER, AUDITOR}

    def test_one_step_delegation(self, cvs):
        chain = [soa_credential(), delegated_credential()]
        result = cvs.validate_delegation_chain(CLERK_DN, chain, at=50.0)
        assert result.valid_roles == {TELLER}
        assert result.all_valid

    def test_empty_chain_yields_nothing(self, cvs):
        result = cvs.validate_delegation_chain(CLERK_DN, [], at=50.0)
        assert result.valid_roles == frozenset()


class TestChainRejections:
    def test_untrusted_root(self, cvs):
        rogue = PrivilegeAllocator("cn=rogue,o=bank,c=gb", b"rogue-key")
        root = rogue.issue(MANAGER_DN, [TELLER], 0, 100, publish=False)
        result = cvs.validate_delegation_chain(MANAGER_DN, [root], at=50.0)
        assert not result.valid_roles
        assert "not a trusted SOA" in result.rejections[0].reason

    def test_broken_issuer_link(self, cvs):
        outsider = AttributeCredential(
            CLERK_DN, "cn=other,o=bank,c=gb", (TELLER,), 10, 90
        )
        outsider = sign_credential(outsider, MANAGER_KEY)
        result = cvs.validate_delegation_chain(
            CLERK_DN, [soa_credential(), outsider], at=50.0
        )
        assert "delegation break" in result.rejections[0].reason

    def test_unpublished_delegator_key(self, policy):
        trust = TrustStore()
        trust.trust(SOA_DN, SOA_KEY)
        cvs = CredentialValidationService(policy, trust, LdapDirectory())
        chain = [soa_credential(), delegated_credential()]
        result = cvs.validate_delegation_chain(CLERK_DN, chain, at=50.0)
        assert "no published key" in result.rejections[0].reason

    def test_forged_delegated_signature(self, cvs):
        chain = [soa_credential(), delegated_credential(key=b"wrong-key")]
        result = cvs.validate_delegation_chain(CLERK_DN, chain, at=50.0)
        assert "signature does not verify" in result.rejections[0].reason

    def test_role_escalation_rejected(self, cvs):
        chain = [
            soa_credential(roles=(TELLER,)),
            delegated_credential(roles=(TELLER, AUDITOR)),
        ]
        result = cvs.validate_delegation_chain(CLERK_DN, chain, at=50.0)
        assert "escalates roles" in result.rejections[0].reason

    def test_validity_widening_rejected(self, cvs):
        chain = [
            soa_credential(not_before=10, not_after=90),
            delegated_credential(not_before=0, not_after=100),
        ]
        result = cvs.validate_delegation_chain(CLERK_DN, chain, at=50.0)
        assert "exceeds the parent" in result.rejections[0].reason

    def test_expired_link_rejected(self, cvs):
        chain = [soa_credential(), delegated_credential(not_after=40)]
        result = cvs.validate_delegation_chain(CLERK_DN, chain, at=50.0)
        assert "not valid at" in result.rejections[0].reason

    def test_wrong_final_holder(self, cvs):
        chain = [soa_credential(), delegated_credential()]
        result = cvs.validate_delegation_chain(
            "cn=somebody-else,o=bank,c=gb", chain, at=50.0
        )
        assert "does not terminate" in result.rejections[0].reason

    def test_depth_beyond_policy_rejected(self, cvs, directory):
        # Publish the clerk's key so a depth-2 chain verifies
        # cryptographically; policy allows only depth 1.
        clerk_key = b"clerk-key"
        directory.ensure_entry(CLERK_DN).add_value(
            CredentialValidationService.SUBJECT_KEY_ATTRIBUTE, clerk_key
        )
        sub_delegate = AttributeCredential(
            "cn=intern,o=bank,c=gb", CLERK_DN, (TELLER,), 20, 80
        )
        sub_delegate = sign_credential(sub_delegate, clerk_key)
        chain = [soa_credential(), delegated_credential(), sub_delegate]
        result = cvs.validate_delegation_chain(
            "cn=intern,o=bank,c=gb", chain, at=50.0
        )
        assert not result.valid_roles
        assert "depth 2 not permitted" in result.rejections[0].reason

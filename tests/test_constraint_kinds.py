"""Tests for the pluggable constraint-kind API (MMCD + admin boundaries).

Covers the registry, the two new families end to end (XML -> engine ->
wire -> audit -> epoch-aware replay), the self-protecting policy-reload
guard across every handle flavour, the new static-verifier findings and
the bank-scale combination-of-duty workloads.
"""

import pytest

from repro.api import open_pdp
from repro.audit import (
    AuditTrailManager,
    EVENT_DECISION,
    decision_event_payload,
    recover_retained_adi,
)
from repro.core import (
    MMEP,
    MMER,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Privilege,
    Role,
    store_digest,
)
from repro.core.constraints import (
    CONSTRAINT_KINDS,
    MMCD,
    POLICY_EXPORT_PRIVILEGE,
    POLICY_RELOAD_PRIVILEGE,
    AdminBoundary,
    MultiSessionConstraint,
    policy_store_boundary,
    register_constraint_kind,
)
from repro.core.explain import explain
from repro.core.policy_epoch import policy_set_digest
from repro.errors import ConstraintError, PolicyError, ProtocolError
from repro.permis import PermisPolicyBuilder
from repro.server import AuthorizationService, ServerThread, protocol
from repro.client import RemotePDP
from repro.verify import SEVERITY_ERROR, SEVERITY_WARNING, analyze_policy_set
from repro.verify.static import (
    ADMIN_BOUNDARY_UNGUARDED,
    MMCD_CONFLICTS_MMER,
    MMCD_UNSATISFIABLE,
)
from repro.xmlpolicy import parse_policy_set, write_policy_set
from repro.xmlpolicy.dsl import (
    compile_policy_set,
    decompile_policy_set,
    parse_constraint_repr,
)

AUDITOR = Role("employee", "Auditor")
TELLER = Role("employee", "Teller")

REVIEW = Privilege("review", "filing://annual")
SIGNOFF = Privilege("signoff", "filing://annual")
AMEND = Privilege("amend", "filing://annual")

FILING_CTX = ContextName.parse("Filing=Annual, Case=C1")
OTHER_CTX = ContextName.parse("Filing=Annual, Case=C2")


def duty_policy_set(extra=()):
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Filing=*, Case=!"),
                constraints=[MMCD([REVIEW, SIGNOFF, AMEND])],
                policy_id="filing-binding",
            ),
            *extra,
        ]
    )


def duty_request(user, privilege, at, context=FILING_CTX):
    return DecisionRequest(
        user_id=user,
        roles=(AUDITOR,),
        operation=privilege.operation,
        target=privilege.target,
        context_instance=context,
        timestamp=at,
    )


class TestRegistry:
    def test_builtin_kinds_registered(self):
        for kind, cls in (
            ("MMER", MMER),
            ("MMEP", MMEP),
            ("MMCD", MMCD),
            ("ADMIN_BOUNDARY", AdminBoundary),
        ):
            assert CONSTRAINT_KINDS[kind] is cls

    def test_register_requires_kind(self):
        class Anonymous(MultiSessionConstraint):
            kind = ""

        with pytest.raises(ConstraintError, match="non-empty kind"):
            register_constraint_kind(Anonymous)

    def test_register_rejects_duplicate_kind(self):
        class Impostor(MultiSessionConstraint):
            kind = "MMCD"

        with pytest.raises(ConstraintError, match="already registered"):
            register_constraint_kind(Impostor)
        assert CONSTRAINT_KINDS["MMCD"] is MMCD

    def test_reregistering_same_class_is_idempotent(self):
        assert register_constraint_kind(MMCD) is MMCD


class TestMMCDUnit:
    def test_rejects_duplicates_and_singletons(self):
        with pytest.raises(ConstraintError, match="duplicates"):
            MMCD([REVIEW, REVIEW])
        with pytest.raises(ConstraintError, match="at least 2"):
            MMCD([REVIEW])

    def test_equality_is_set_based(self):
        assert MMCD([REVIEW, SIGNOFF]) == MMCD([SIGNOFF, REVIEW])
        assert hash(MMCD([REVIEW, SIGNOFF])) == hash(MMCD([SIGNOFF, REVIEW]))
        assert MMCD([REVIEW, SIGNOFF]) != MMCD([REVIEW, AMEND])

    def test_canonical_is_order_stable(self):
        assert (
            MMCD([REVIEW, SIGNOFF]).canonical()
            == MMCD([SIGNOFF, REVIEW]).canonical()
        )
        assert MMCD([REVIEW, SIGNOFF]).canonical()["kind"] == "MMCD"


class TestAdminBoundaryUnit:
    def test_validation(self):
        with pytest.raises(ConstraintError, match="non-empty"):
            AdminBoundary("", [POLICY_RELOAD_PRIVILEGE])
        with pytest.raises(ConstraintError, match="at least 1"):
            AdminBoundary("b", [])
        with pytest.raises(ConstraintError, match="duplicates"):
            AdminBoundary(
                "b", [POLICY_RELOAD_PRIVILEGE, POLICY_RELOAD_PRIVILEGE]
            )

    def test_standard_boundary_guards_both_privileges(self):
        boundary = policy_store_boundary()
        assert set(boundary.privileges) == {
            POLICY_RELOAD_PRIVILEGE,
            POLICY_EXPORT_PRIVILEGE,
        }
        assert boundary.boundary == "policy-store"


class TestMMCDEngine:
    def test_first_user_binds_the_set(self):
        engine = MSoDEngine(duty_policy_set(), InMemoryRetainedADIStore())
        assert engine.check(duty_request("alice", REVIEW, 1.0)).granted
        denied = engine.check(duty_request("bob", SIGNOFF, 2.0))
        assert denied.denied
        assert denied.violation.constraint_kind == "MMCD"
        assert "already bound" in denied.violation.detail
        # The owner completes the bound set; repetition is fine too.
        assert engine.check(duty_request("alice", SIGNOFF, 3.0)).granted
        assert engine.check(duty_request("alice", AMEND, 4.0)).granted
        assert engine.check(duty_request("alice", REVIEW, 5.0)).granted

    def test_binding_is_per_context_instance(self):
        engine = MSoDEngine(duty_policy_set(), InMemoryRetainedADIStore())
        assert engine.check(duty_request("alice", REVIEW, 1.0)).granted
        # A different case (the `!` component differs) binds separately.
        assert engine.check(
            duty_request("bob", REVIEW, 2.0, context=OTHER_CTX)
        ).granted
        assert engine.check(
            duty_request("alice", SIGNOFF, 3.0, context=OTHER_CTX)
        ).denied

    def test_denied_attempt_leaves_no_ownership(self):
        engine = MSoDEngine(duty_policy_set(), InMemoryRetainedADIStore())
        assert engine.check(duty_request("alice", REVIEW, 1.0)).granted
        assert engine.check(duty_request("bob", SIGNOFF, 2.0)).denied
        # bob's denied attempt must not have stolen or shared ownership.
        assert engine.check(duty_request("alice", SIGNOFF, 3.0)).granted

    def test_mmcd_composes_with_mmep_four_eyes(self):
        approve = Privilege("approve", "filing://annual")
        four_eyes = MSoDPolicy(
            ContextName.parse("Filing=*, Case=!"),
            mmeps=[MMEP([SIGNOFF, approve], 2)],
            policy_id="filing-four-eyes",
        )
        engine = MSoDEngine(
            duty_policy_set(extra=[four_eyes]), InMemoryRetainedADIStore()
        )
        for privilege, at in ((REVIEW, 1.0), (SIGNOFF, 2.0), (AMEND, 3.0)):
            assert engine.check(duty_request("alice", privilege, at)).granted
        # The owner may not also approve their own filing...
        own = engine.check(duty_request("alice", approve, 4.0))
        assert own.denied
        assert own.violation.constraint_kind == "MMEP"
        # ...but fresh eyes may (approve is outside the bound set).
        assert engine.check(duty_request("carol", approve, 5.0)).granted


MMCD_XML = """\
<MSoDPolicySet>
  <MSoDPolicy BusinessContext="Filing=*, Case=!" PolicyId="filing-binding">
    <MMCD>
      <Privilege operation="review" target="filing://annual"/>
      <Privilege operation="signoff" target="filing://annual"/>
    </MMCD>
  </MSoDPolicy>
  <MSoDPolicy BusinessContext="Admin=!" PolicyId="admin-guard">
    <AdminBoundary Boundary="policy-store">
      <Privilege operation="policy-reload"
                 target="pdp://management/policyStore"/>
      <Privilege operation="policy-export"
                 target="pdp://management/policyStore"/>
    </AdminBoundary>
  </MSoDPolicy>
</MSoDPolicySet>
"""


class TestSerialization:
    def test_xml_round_trip(self):
        parsed = parse_policy_set(MMCD_XML)
        policies = list(parsed)
        assert policies[0].extra_constraints == (MMCD([REVIEW, SIGNOFF]),)
        assert policies[1].extra_constraints == (
            AdminBoundary(
                "policy-store",
                [POLICY_RELOAD_PRIVILEGE, POLICY_EXPORT_PRIVILEGE],
            ),
        )
        again = parse_policy_set(write_policy_set(parsed))
        assert policy_set_digest(again) == policy_set_digest(parsed)

    def test_dsl_round_trip(self):
        parsed = parse_policy_set(MMCD_XML)
        text = decompile_policy_set(parsed)
        assert "combination of duty:" in text
        assert 'admin boundary "policy-store":' in text
        again = compile_policy_set(text)
        assert policy_set_digest(again) == policy_set_digest(parsed)

    def test_repr_round_trip_all_kinds(self):
        constraints = [
            MMER([TELLER, AUDITOR], 2),
            MMEP([REVIEW, REVIEW, SIGNOFF], 2),
            MMCD([REVIEW, SIGNOFF, AMEND]),
            policy_store_boundary(),
            AdminBoundary("a, odd {label}", [POLICY_RELOAD_PRIVILEGE]),
        ]
        for constraint in constraints:
            assert parse_constraint_repr(repr(constraint)) == constraint


class TestExplain:
    def test_mmcd_narration_grant_and_deny(self):
        engine = MSoDEngine(duty_policy_set(), InMemoryRetainedADIStore())
        engine.check(duty_request("alice", REVIEW, 1.0))

        ok = explain(engine, duty_request("alice", SIGNOFF, 2.0))
        assert ok.granted
        assert any("no conflict" in line.message for line in ok.lines)

        denied = explain(engine, duty_request("bob", SIGNOFF, 2.0))
        assert not denied.granted
        assert any("VIOLATION" in line.message for line in denied.lines)
        assert any("already bound" in line.message for line in denied.lines)
        # explain is a dry run: bob must still be denied for real...
        assert engine.check(duty_request("bob", SIGNOFF, 3.0)).denied
        # ...and the verdict matches what check() returns.
        assert explain(
            engine, duty_request("alice", AMEND, 4.0)
        ).granted


def admin_guard_policy_set():
    return MSoDPolicySet(
        list(duty_policy_set())
        + [
            MSoDPolicy(
                ContextName.parse("Filing=*, Case=*"),
                constraints=[policy_store_boundary()],
                policy_id="store-guard",
            )
        ]
    )


class TestReloadGuardLocal:
    def test_operational_principal_refused(self):
        pdp = open_pdp(admin_guard_policy_set())
        assert pdp.decide(duty_request("alice", REVIEW, 1.0)).granted
        with pytest.raises(PolicyError, match="admin boundary"):
            pdp.reload_policy(admin_guard_policy_set(), principal="alice")
        # force does NOT override a boundary refusal.
        with pytest.raises(PolicyError, match="admin boundary"):
            pdp.reload_policy(
                admin_guard_policy_set(), principal="alice", force=True
            )
        # A clean principal (and the anonymous legacy path) still swap.
        pdp.reload_policy(admin_guard_policy_set(), principal="bob")
        pdp.reload_policy(admin_guard_policy_set())

    def test_engine_denial_probe(self):
        pdp = open_pdp(admin_guard_policy_set())
        pdp.decide(duty_request("alice", REVIEW, 1.0))
        denial = pdp.engine.admin_boundary_denial(
            "alice", POLICY_RELOAD_PRIVILEGE
        )
        assert denial is not None and "admin boundary" in denial
        assert (
            pdp.engine.admin_boundary_denial("bob", POLICY_RELOAD_PRIVILEGE)
            is None
        )


class TestReloadGuardWire:
    def make_service(self):
        engine = MSoDEngine(
            admin_guard_policy_set(), InMemoryRetainedADIStore()
        )
        return AuthorizationService(engine, n_shards=2)

    def test_remote_reload_guard(self):
        with ServerThread(self.make_service()) as server:
            with RemotePDP(
                server.host, server.port, timeout=5.0, max_retries=0
            ) as pdp:
                assert pdp.decide(duty_request("carol", REVIEW, 1.0)).granted
                with pytest.raises(PolicyError, match="admin boundary"):
                    pdp.reload_policy(
                        admin_guard_policy_set(), principal="carol"
                    )
                report = pdp.reload_policy(
                    admin_guard_policy_set(), principal="dave"
                )
                assert report is not None
                status = pdp.policy_status()
                kinds = status["constraint_kinds"]
                assert kinds["MMCD"] == 1
                assert kinds["ADMIN_BOUNDARY"] == 1

    def test_protocol_principal_validation(self):
        assert protocol.reload_principal_of({}) is None
        assert protocol.reload_principal_of({"principal": "ops"}) == "ops"
        with pytest.raises(ProtocolError, match="principal"):
            protocol.reload_principal_of({"principal": ""})
        with pytest.raises(ProtocolError, match="principal"):
            protocol.reload_principal_of({"principal": 7})


class TestAuditReplay:
    def test_mmcd_decisions_replay_epoch_aware(self, tmp_path):
        manager = AuditTrailManager(str(tmp_path), b"trail-key")
        engine = MSoDEngine(duty_policy_set(), InMemoryRetainedADIStore())
        stream = [
            duty_request("alice", REVIEW, 1.0),
            duty_request("bob", SIGNOFF, 2.0),  # denied: not the owner
            duty_request("alice", SIGNOFF, 3.0),
        ]
        for request in stream:
            decision = engine.check(request)
            manager.append(
                EVENT_DECISION,
                request.timestamp,
                decision_event_payload(decision),
            )
        assert engine.store.count() > 0

        recovered = InMemoryRetainedADIStore()
        report = recover_retained_adi(manager, duty_policy_set(), recovered)
        assert report.records_replayed == engine.store.count()
        assert store_digest(recovered) == store_digest(engine.store)
        # The rebuilt store enforces the same binding.
        replayed = MSoDEngine(duty_policy_set(), recovered)
        assert replayed.check(duty_request("bob", AMEND, 4.0)).denied
        assert replayed.check(duty_request("alice", AMEND, 4.0)).granted

    def test_replay_resolves_outgoing_epoch(self, tmp_path):
        """Decisions made before a reload replay under their own epoch."""
        manager = AuditTrailManager(str(tmp_path), b"trail-key")
        engine = MSoDEngine(duty_policy_set(), InMemoryRetainedADIStore())
        first = engine.check(duty_request("alice", REVIEW, 1.0))
        manager.append(EVENT_DECISION, 1.0, decision_event_payload(first))
        # Hot-swap to a set that no longer matches the filing context.
        unrelated = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Branch=*, Period=!"),
                    mmers=[MMER([TELLER, AUDITOR], 2)],
                    policy_id="bank",
                )
            ]
        )
        engine.replace_policy_set(unrelated)
        recovered = InMemoryRetainedADIStore()
        report = recover_retained_adi(
            manager,
            unrelated,
            recovered,
            policy_resolver=engine.policy_set_for_epoch,
        )
        assert report.records_replayed == engine.store.count()
        assert recovered.count() == engine.store.count()


class TestVerifyFindings:
    def test_mmcd_vs_mmep_unsatisfiable(self):
        conflicted = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Filing=*, Case=!"),
                    constraints=[MMCD([REVIEW, SIGNOFF])],
                    policy_id="binding",
                ),
                MSoDPolicy(
                    ContextName.parse("Filing=*, Case=!"),
                    mmeps=[MMEP([REVIEW, SIGNOFF], 2)],
                    policy_id="exclusion",
                ),
            ]
        )
        report = analyze_policy_set(conflicted)
        findings = [
            f for f in report.findings if f.code == MMCD_UNSATISFIABLE
        ]
        assert findings and findings[0].severity == SEVERITY_ERROR

    def test_admin_boundary_partially_guarded_warns(self):
        half = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Admin=!"),
                    constraints=[
                        AdminBoundary("half", [POLICY_RELOAD_PRIVILEGE])
                    ],
                    policy_id="half-guard",
                )
            ]
        )
        report = analyze_policy_set(half)
        findings = [
            f for f in report.findings if f.code == ADMIN_BOUNDARY_UNGUARDED
        ]
        assert findings and findings[0].severity == SEVERITY_WARNING
        # The full canonical pair (or no boundary at all) stays silent.
        assert not [
            f
            for f in analyze_policy_set(admin_guard_policy_set()).findings
            if f.code == ADMIN_BOUNDARY_UNGUARDED
        ]
        assert not [
            f
            for f in analyze_policy_set(duty_policy_set()).findings
            if f.code == ADMIN_BOUNDARY_UNGUARDED
        ]

    def test_mmcd_conflicts_mmer_via_permis(self):
        reviewer = Role("employee", "Reviewer")
        signer = Role("employee", "Signer")
        permis = (
            PermisPolicyBuilder()
            .allow_assignment(
                "cn=soa,o=bank,c=gb", [reviewer, signer], "o=bank,c=gb"
            )
            .grant(reviewer, [REVIEW])
            .grant(signer, [SIGNOFF])
            .build()
        )
        conflicted = MSoDPolicySet(
            [
                MSoDPolicy(
                    ContextName.parse("Filing=*, Case=!"),
                    constraints=[MMCD([REVIEW, SIGNOFF])],
                    mmers=[MMER([reviewer, signer], 2)],
                    policy_id="binding",
                ),
            ]
        )
        report = analyze_policy_set(conflicted, permis=permis)
        findings = [
            f for f in report.findings if f.code == MMCD_CONFLICTS_MMER
        ]
        assert findings and findings[0].severity == SEVERITY_ERROR


class TestBankScaleWorkload:
    def test_stream_deterministic_and_exercises_denies(self):
        from repro.workload import (
            BankScaleConfig,
            bank_scale_duty_binding_policy_set,
            bank_scale_mmcd_stream,
        )

        cfg = BankScaleConfig(
            n_users=2_000, n_divisions=3, branches_per_division=4
        )

        def key(request):
            return (
                request.user_id,
                request.operation,
                request.target,
                str(request.context_instance),
                request.timestamp,
            )

        first = [key(r) for r in bank_scale_mmcd_stream(cfg, 300)]
        second = [key(r) for r in bank_scale_mmcd_stream(cfg, 300)]
        assert first == second

        pdp = open_pdp(bank_scale_duty_binding_policy_set(cfg))
        effects = [
            pdp.decide(r).effect for r in bank_scale_mmcd_stream(cfg, 300)
        ]
        assert "deny" in effects and "grant" in effects

    def test_four_eyes_denies_owner_signoff(self):
        from repro.workload import (
            BankScaleConfig,
            bank_scale_mmcd_stream,
            four_eyes_filing_policy_set,
        )

        cfg = BankScaleConfig(
            n_users=2_000, n_divisions=3, branches_per_division=4
        )
        pdp = open_pdp(four_eyes_filing_policy_set(cfg))
        signoff_effects = set()
        for request in bank_scale_mmcd_stream(cfg, 500, four_eyes=True):
            decision = pdp.decide(request)
            if request.operation == "approveFiling":
                signoff_effects.add(decision.effect)
        assert signoff_effects == {"grant", "deny"}

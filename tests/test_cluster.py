"""Tests for :mod:`repro.cluster`: ring, fencing, journal, routing.

The failover fault-injection test lives in
``tests/test_cluster_failover.py``; this module covers the building
blocks — the consistent-hash ring, a single node's role/epoch gate and
exactly-once journal, audit-log-shipped standby replication and the
routing client against a healthy cluster.
"""

import time

import pytest

from repro.audit.trail import AuditTrailManager
from repro.client import RemotePDP
from repro.cluster import (
    ROLE_PRIMARY,
    ROLE_STANDBY,
    ClusterNode,
    ClusterPDP,
    HashRing,
    LocalCluster,
)
from repro.cluster.node import _BoundedJournal
from repro.core import (
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    Role,
)
from repro.errors import (
    AuditTrailError,
    ClusterError,
    PDPFencedError,
    PDPNotPrimaryError,
    PDPUnavailableError,
    ProtocolError,
)
from repro.workload import AUDITOR, TELLER, bank_policy_set

YORK_P1 = ContextName.parse("Branch=York, Period=P1")


def make_request(user_id, role=TELLER, context=YORK_P1, timestamp=1.0,
                 request_id=None):
    operation, target = (
        ("handleCash", "till://1")
        if role == TELLER
        else ("auditBooks", "ledger://1")
    )
    kwargs = {} if request_id is None else {"request_id": request_id}
    return DecisionRequest(
        user_id=user_id,
        roles=(role,),
        operation=operation,
        target=target,
        context_instance=context,
        timestamp=timestamp,
        **kwargs,
    )


def store_digest(store):
    return sorted(
        (
            record.user_id,
            tuple(sorted((r.role_type, r.value) for r in record.roles)),
            record.operation,
            record.target,
            str(record.context_instance),
            record.granted_at,
            record.request_id,
        )
        for record in store.records()
    )


# ----------------------------------------------------------------------
class TestHashRing:
    def test_same_inputs_same_mapping(self):
        users = [f"u{i}" for i in range(200)]
        ring_a = HashRing(["s0", "s1", "s2"])
        ring_b = HashRing(["s0", "s1", "s2"])
        assert [ring_a.shard_for(u) for u in users] == [
            ring_b.shard_for(u) for u in users
        ]

    def test_shard_order_is_irrelevant(self):
        users = [f"u{i}" for i in range(200)]
        ring_a = HashRing(["s0", "s1", "s2"])
        ring_b = HashRing(["s2", "s0", "s1"])
        assert [ring_a.shard_for(u) for u in users] == [
            ring_b.shard_for(u) for u in users
        ]

    def test_every_shard_gets_users(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        counts = ring.distribution(f"u{i:04d}" for i in range(1000))
        assert set(counts) == set(ring.shard_names)
        assert all(count > 0 for count in counts.values())
        assert sum(counts.values()) == 1000

    def test_rejects_bad_shard_lists(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing([""])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_single_shard_takes_everything(self):
        ring = HashRing(["only"])
        assert ring.shard_for("anyone") == "only"


# ----------------------------------------------------------------------
@pytest.fixture
def primary_node(tmp_path):
    node = ClusterNode(
        "n1",
        "s0",
        bank_policy_set(),
        InMemoryRetainedADIStore(),
        str(tmp_path / "trails"),
        b"test-key",
        role=ROLE_PRIMARY,
        epoch=1,
        fsync=False,
    )
    node.start()
    yield node
    node.stop()


class TestClusterNodeGate:
    def test_primary_decides(self, primary_node):
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            decision = pdp.decide(make_request("alice"), epoch=1)
        assert decision.granted

    def test_standby_refuses_decides(self, primary_node):
        primary_node.demote()
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            with pytest.raises(PDPNotPrimaryError):
                pdp.decide(make_request("alice"))

    def test_stale_epoch_is_fenced(self, primary_node):
        primary_node.promote(epoch=3)
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            with pytest.raises(PDPFencedError):
                pdp.decide(make_request("alice"), epoch=2)
            # Claiming no epoch at all is allowed (plain RemotePDP use).
            assert pdp.decide(make_request("alice"), epoch=None).granted

    def test_health_reports_cluster_identity(self, primary_node):
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            body = pdp.healthz()
        cluster = dict(body["cluster"])
        policy_digest = cluster.pop("policy_digest")
        assert len(policy_digest) == 64
        assert cluster == {
            "node": "n1",
            "shard": "s0",
            "role": ROLE_PRIMARY,
            "epoch": 1,
            "policy_epoch": 1,
        }


class TestExactlyOnceJournal:
    def test_duplicate_request_id_returns_recorded_outcome(
        self, primary_node
    ):
        request = make_request("alice", request_id="req-dup-1")
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            first = pdp.decide(request)
            again = pdp.decide(request)
        assert first.effect == again.effect == "grant"
        # The retry was answered from the journal, not re-evaluated:
        # the store holds the records exactly once.
        records = [
            r
            for r in primary_node.store.records()
            if r.request_id == "req-dup-1"
        ]
        assert len(records) == len(first.adi_adds)

    def test_denies_are_journaled_too(self, primary_node):
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            pdp.decide(make_request("bob", TELLER, timestamp=1.0))
            denied = make_request(
                "bob", AUDITOR, timestamp=2.0, request_id="req-deny-1"
            )
            first = pdp.decide(denied)
            again = pdp.decide(denied)
        assert first.effect == again.effect == "deny"

    def test_request_id_collision_is_rejected(self, primary_node):
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            pdp.decide(make_request("alice", request_id="req-shared"))
            with pytest.raises(ProtocolError, match="already used"):
                pdp.decide(make_request("carol", request_id="req-shared"))


# ----------------------------------------------------------------------
class TestStandbyReplication:
    def test_catch_up_replays_the_primary_trail(self, tmp_path):
        policy_set = bank_policy_set()
        primary = ClusterNode(
            "p",
            "s0",
            policy_set,
            InMemoryRetainedADIStore(),
            str(tmp_path / "p-trails"),
            b"k",
            role=ROLE_PRIMARY,
            epoch=1,
            fsync=False,
        )
        standby = ClusterNode(
            "b",
            "s0",
            policy_set,
            InMemoryRetainedADIStore(),
            str(tmp_path / "b-trails"),
            b"k",
            role=ROLE_STANDBY,
        )
        primary.start()
        try:
            with RemotePDP(primary.host, primary.port) as pdp:
                for i in range(20):
                    role = TELLER if i % 3 else AUDITOR
                    pdp.decide(
                        make_request(f"u{i % 5}", role, timestamp=float(i))
                    )
        finally:
            primary.stop()
        standby.catch_up(primary.trail_dir)
        assert store_digest(standby.store) == store_digest(primary.store)
        assert standby.journal_size == primary.journal_size

        # Replay is idempotent: a second (and third) tick changes nothing.
        standby.catch_up(primary.trail_dir)
        standby.catch_up(primary.trail_dir)
        assert store_digest(standby.store) == store_digest(primary.store)

    def test_max_events_seals_the_lineage(self, tmp_path):
        policy_set = bank_policy_set()
        primary = ClusterNode(
            "p",
            "s0",
            policy_set,
            InMemoryRetainedADIStore(),
            str(tmp_path / "p-trails"),
            b"k",
            role=ROLE_PRIMARY,
            epoch=1,
            fsync=False,
        )
        primary.start()
        try:
            with RemotePDP(primary.host, primary.port) as pdp:
                for i in range(10):
                    pdp.decide(
                        make_request(
                            f"u{i}",
                            TELLER,
                            context=ContextName.parse(
                                f"Branch=B{i}, Period=P1"
                            ),
                            timestamp=float(i),
                        )
                    )
        finally:
            primary.stop()
        total = len(
            list(AuditTrailManager(primary.trail_dir, b"k").events())
        )
        standby = ClusterNode(
            "b",
            "s0",
            policy_set,
            InMemoryRetainedADIStore(),
            str(tmp_path / "b-trails"),
            b"k",
        )
        standby.catch_up(primary.trail_dir, max_events=total - 4)
        assert standby.journal_size == primary.journal_size - 4


# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def quiet_cluster(tmp_path_factory):
    """A healthy 2-shard cluster with background loops slowed to a crawl."""
    cluster = LocalCluster(
        bank_policy_set(),
        2,
        str(tmp_path_factory.mktemp("cluster")),
        store="memory",
        health_interval=30.0,
        catchup_interval=30.0,
        fsync=False,
    ).start()
    yield cluster
    cluster.stop()


class TestLocalClusterRouting:
    def test_decides_land_on_the_ring_shard(self, quiet_cluster):
        users = [f"user-{i}" for i in range(24)]
        with ClusterPDP((quiet_cluster.host, quiet_cluster.port)) as pdp:
            for i, user in enumerate(users):
                decision = pdp.decide(
                    make_request(user, timestamp=float(i))
                )
                assert decision.granted
        for shard_name in quiet_cluster.shard_names:
            primary = quiet_cluster.shard(shard_name).primary
            stored_users = {r.user_id for r in primary.store.records()}
            expected = {
                u
                for u in users
                if quiet_cluster.ring.shard_for(u) == shard_name
            }
            assert stored_users == expected

    def test_status_and_route_shapes(self, quiet_cluster):
        with ClusterPDP((quiet_cluster.host, quiet_cluster.port)) as pdp:
            route = pdp.route()
            status = pdp.cluster_status()
        assert set(route["shards"]) == set(quiet_cluster.shard_names)
        for entry in route["shards"].values():
            host, port = entry["address"]
            assert isinstance(host, str) and port > 0
            assert entry["epoch"] >= 1
        for shard in status["shards"].values():
            roles = {node["role"] for node in shard["nodes"]}
            assert roles == {ROLE_PRIMARY, ROLE_STANDBY}
            assert shard["failovers"] == 0

    def test_coordinator_metrics_expose_per_node_gauges(self, quiet_cluster):
        with ClusterPDP((quiet_cluster.host, quiet_cluster.port)) as pdp:
            text = pdp.cluster_metrics_text()
        for family in (
            "repro_cluster_node_up",
            "repro_cluster_node_primary",
            "repro_cluster_node_epoch",
            "repro_cluster_route_version",
            "repro_cluster_failovers_total",
        ):
            assert family in text
        with ClusterPDP((quiet_cluster.host, quiet_cluster.port)) as pdp:
            node_text = pdp.node_metrics_text("user-1")
        assert "repro_shard_queue_depth" in node_text

    def test_healthz_passthrough_names_the_owning_node(self, quiet_cluster):
        with ClusterPDP((quiet_cluster.host, quiet_cluster.port)) as pdp:
            body = pdp.healthz("user-1")
        shard = quiet_cluster.ring.shard_for("user-1")
        assert body["cluster"]["shard"] == shard
        assert body["cluster"]["role"] == ROLE_PRIMARY


class TestClusterPDPConstruction:
    def test_needs_exactly_one_of_coordinator_and_static_route(self):
        with pytest.raises(ClusterError):
            ClusterPDP()
        with pytest.raises(ClusterError):
            ClusterPDP(
                ("127.0.0.1", 1), static_route={"shards": {"s": {}}}
            )

    def test_static_route_works_without_a_coordinator(self, quiet_cluster):
        route = LocalClusterRouteProbe(quiet_cluster).route()
        with ClusterPDP(static_route=route) as pdp:
            assert pdp.decide(
                make_request("static-user", timestamp=99.0)
            ).granted

    def test_static_route_errors_surface_immediately(self):
        route = {
            "version": 1,
            "vnodes": 8,
            "shards": {
                "s0": {"address": ["127.0.0.1", 1], "epoch": 1},
            },
        }
        with ClusterPDP(static_route=route, timeout=0.5) as pdp:
            with pytest.raises(PDPUnavailableError):
                pdp.decide(make_request("anyone"))

    def test_malformed_route_is_rejected(self):
        with pytest.raises(ClusterError):
            ClusterPDP(static_route={"shards": {}})


class LocalClusterRouteProbe:
    """Fetch a cluster's route the way an operator would (one request)."""

    def __init__(self, cluster):
        self._cluster = cluster

    def route(self):
        with ClusterPDP(
            (self._cluster.host, self._cluster.port)
        ) as pdp:
            return pdp.route()


# ----------------------------------------------------------------------
class TestOpenClusterFacade:
    def test_open_cluster_round_trip(self, tmp_path):
        from repro.api import open_cluster

        with open_cluster(
            bank_policy_set(),
            str(tmp_path / "cluster"),
            n_shards=2,
            store="memory",
            health_interval=30.0,
            fsync=False,
        ) as handle:
            assert len(handle.shard_names) == 2
            with handle.client() as pdp:
                assert pdp.decide(make_request("facade-user")).granted
            status = handle.status()
            assert set(status["shards"]) == set(handle.shard_names)

    def test_open_cluster_rejects_unknown_store(self, tmp_path):
        from repro.api import open_cluster
        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            open_cluster(
                bank_policy_set(), str(tmp_path / "x"), store="bogus"
            )


# ----------------------------------------------------------------------
class TestBoundedJournal:
    def test_fifo_eviction_beyond_cap(self):
        journal = _BoundedJournal(3)
        for n in range(5):
            journal[f"req-{n}"] = {"n": n}
        assert len(journal) == 3
        assert list(journal) == ["req-2", "req-3", "req-4"]

    def test_reinsert_moves_to_back(self):
        journal = _BoundedJournal(2)
        journal["a"] = {"n": 0}
        journal["b"] = {"n": 1}
        journal["a"] = {"n": 2}  # hot id refreshed, now newest
        journal["c"] = {"n": 3}  # evicts b, the oldest
        assert list(journal) == ["a", "c"]

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ClusterError):
            _BoundedJournal(0)

    def test_node_journal_respects_cap_and_still_dedupes(self, tmp_path):
        node = ClusterNode(
            "n1",
            "s0",
            bank_policy_set(),
            InMemoryRetainedADIStore(),
            str(tmp_path / "trails"),
            b"test-key",
            role=ROLE_PRIMARY,
            epoch=1,
            fsync=False,
            journal_max=5,
        )
        node.start()
        try:
            with RemotePDP(node.host, node.port) as pdp:
                for i in range(8):
                    pdp.decide(
                        make_request(
                            f"u{i}",
                            timestamp=float(i),
                            request_id=f"req-{i}",
                        )
                    )
                assert node.journal_size == 5
                # A recent request_id still short-circuits to the
                # recorded outcome instead of a second evaluation.
                first = pdp.decide(
                    make_request("u7", timestamp=7.0, request_id="req-7")
                )
                assert first.records_added == 1
                assert node.journal_size == 5
        finally:
            node.stop()


# ----------------------------------------------------------------------
class TestCoordinatorLoopResilience:
    def _one_shard_cluster(self, tmp_path, **overrides):
        options = dict(
            store="memory",
            health_interval=30.0,
            catchup_interval=30.0,
            fsync=False,
        )
        options.update(overrides)
        return LocalCluster(
            bank_policy_set(), 1, str(tmp_path / "cluster"), **options
        ).start()

    def test_catchup_loop_survives_tick_errors(self, tmp_path):
        cluster = self._one_shard_cluster(tmp_path, catchup_interval=0.05)
        try:
            state = cluster.shard("shard-0")
            original = state.standby.catch_up
            calls = []

            def flaky(*args, **kwargs):
                calls.append(len(calls))
                if len(calls) <= 2:
                    raise AuditTrailError("simulated replay failure")
                return original(*args, **kwargs)

            state.standby.catch_up = flaky
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and len(calls) < 4:
                time.sleep(0.05)
            # The loop outlived the failing ticks and kept replaying.
            assert len(calls) >= 4
            assert cluster.status()["loop_errors"]["catchup"] >= 2
        finally:
            cluster.stop()

    def test_health_loop_survives_promote_failure(self, tmp_path):
        cluster = self._one_shard_cluster(
            tmp_path,
            health_interval=0.05,
            health_timeout=0.2,
            health_failures=1,
        )
        try:
            state = cluster.shard("shard-0")
            standby = state.standby
            original = standby.catch_up
            failing = {"on": True}

            def flaky(*args, **kwargs):
                if failing["on"]:
                    raise AuditTrailError("simulated standby glitch")
                return original(*args, **kwargs)

            standby.catch_up = flaky
            cluster.kill_primary("shard-0")
            deadline = time.monotonic() + 10.0
            while (
                time.monotonic() < deadline
                and cluster.status()["loop_errors"]["health"] < 2
            ):
                time.sleep(0.05)
            # Promotion failed repeatedly but the loop is still alive
            # and still trying...
            assert cluster.status()["loop_errors"]["health"] >= 2
            assert state.failovers == 0
            # ...so once the fault clears, failover completes.
            failing["on"] = False
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and state.failovers < 1:
                time.sleep(0.05)
            assert state.failovers >= 1
            assert state.primary is standby
            assert state.primary.role == ROLE_PRIMARY
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
class TestClientRetryDiscipline:
    def test_post_send_failure_is_not_resent_into_the_same_lineage(
        self, tmp_path
    ):
        cluster = LocalCluster(
            bank_policy_set(),
            1,
            str(tmp_path / "cluster"),
            store="memory",
            health_interval=30.0,
            catchup_interval=30.0,
            fsync=False,
        ).start()
        try:
            with ClusterPDP(
                (cluster.host, cluster.port),
                failover_wait=0.6,
                retry_interval=0.05,
            ) as pdp:
                sent = []

                class PostSendFailing:
                    def decide(self, request, *, epoch=None):
                        sent.append(request.request_id)
                        raise PDPUnavailableError(
                            "PDP transport failure: timed out"
                        )

                pdp.route()  # install the routing table first
                pdp._pdp_for = lambda address: PostSendFailing()
                with pytest.raises(PDPUnavailableError):
                    pdp.decide(make_request("stuck-user"))
                # The epoch never advanced, so the request went out
                # exactly once: a resend could double-evaluate on a
                # live-but-slow primary.
                assert len(sent) == 1
        finally:
            cluster.stop()

    def test_post_send_failure_is_resent_after_epoch_bump(self, tmp_path):
        cluster = LocalCluster(
            bank_policy_set(),
            1,
            str(tmp_path / "cluster"),
            store="memory",
            health_interval=30.0,
            catchup_interval=0.05,
            fsync=False,
        ).start()
        try:
            with ClusterPDP(
                (cluster.host, cluster.port),
                failover_wait=10.0,
                retry_interval=0.05,
            ) as pdp:
                real_pdp_for = pdp._pdp_for
                first_send = {"pending": True}

                class FailsOnceAfterFailover:
                    def decide(self, request, *, epoch=None):
                        # Simulate: the frame went out, the primary
                        # stalled, and the operator forced failover.
                        cluster.promote("shard-0")
                        raise PDPUnavailableError(
                            "PDP transport failure: timed out"
                        )

                def patched(address):
                    if first_send["pending"]:
                        first_send["pending"] = False
                        return FailsOnceAfterFailover()
                    return real_pdp_for(address)

                pdp.route()
                pdp._pdp_for = patched
                decision = pdp.decide(make_request("bumped-user"))
                assert decision.granted
                assert cluster.shard("shard-0").epoch == 2
        finally:
            cluster.stop()


# ----------------------------------------------------------------------
class TestForcedFailoverOfLivePrimary:
    def test_no_acknowledged_decision_is_dropped(self, tmp_path):
        """Operator-forced failover of a *live* primary (the documented
        public use of ``promote``): every decision acknowledged before
        the promote call must survive into the new primary, which only
        holds if the old primary is demoted before the seal is counted.
        """
        policy_set = bank_policy_set()
        cluster = LocalCluster(
            policy_set,
            1,
            str(tmp_path / "cluster"),
            store="memory",
            health_interval=30.0,
            catchup_interval=0.05,
            fsync=False,
        ).start()
        try:
            requests = [
                make_request(
                    f"user-{i % 7}",
                    TELLER if i % 3 else AUDITOR,
                    context=ContextName.parse(f"Branch=B{i % 4}, Period=P1"),
                    timestamp=float(i),
                )
                for i in range(30)
            ]
            from repro.core import MSoDEngine

            engine = MSoDEngine(policy_set, InMemoryRetainedADIStore())
            effects = []
            with ClusterPDP(
                (cluster.host, cluster.port), failover_wait=15.0
            ) as pdp:
                for index, request in enumerate(requests):
                    if index == len(requests) // 2:
                        cluster.promote("shard-0")
                    effects.append(pdp.decide(request).effect)
            assert effects == [engine.check(r).effect for r in requests]
            state = cluster.shard("shard-0")
            assert state.epoch == 2
            assert store_digest(state.primary.store) == store_digest(
                engine.store
            )
        finally:
            cluster.stop()

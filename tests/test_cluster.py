"""Tests for :mod:`repro.cluster`: ring, fencing, journal, routing.

The failover fault-injection test lives in
``tests/test_cluster_failover.py``; this module covers the building
blocks — the consistent-hash ring, a single node's role/epoch gate and
exactly-once journal, audit-log-shipped standby replication and the
routing client against a healthy cluster.
"""

import pytest

from repro.audit.trail import AuditTrailManager
from repro.client import RemotePDP
from repro.cluster import (
    ROLE_PRIMARY,
    ROLE_STANDBY,
    ClusterNode,
    ClusterPDP,
    HashRing,
    LocalCluster,
)
from repro.core import (
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    Role,
)
from repro.errors import (
    ClusterError,
    PDPFencedError,
    PDPNotPrimaryError,
    PDPUnavailableError,
    ProtocolError,
)
from repro.workload import AUDITOR, TELLER, bank_policy_set

YORK_P1 = ContextName.parse("Branch=York, Period=P1")


def make_request(user_id, role=TELLER, context=YORK_P1, timestamp=1.0,
                 request_id=None):
    operation, target = (
        ("handleCash", "till://1")
        if role == TELLER
        else ("auditBooks", "ledger://1")
    )
    kwargs = {} if request_id is None else {"request_id": request_id}
    return DecisionRequest(
        user_id=user_id,
        roles=(role,),
        operation=operation,
        target=target,
        context_instance=context,
        timestamp=timestamp,
        **kwargs,
    )


def store_digest(store):
    return sorted(
        (
            record.user_id,
            tuple(sorted((r.role_type, r.value) for r in record.roles)),
            record.operation,
            record.target,
            str(record.context_instance),
            record.granted_at,
            record.request_id,
        )
        for record in store.records()
    )


# ----------------------------------------------------------------------
class TestHashRing:
    def test_same_inputs_same_mapping(self):
        users = [f"u{i}" for i in range(200)]
        ring_a = HashRing(["s0", "s1", "s2"])
        ring_b = HashRing(["s0", "s1", "s2"])
        assert [ring_a.shard_for(u) for u in users] == [
            ring_b.shard_for(u) for u in users
        ]

    def test_shard_order_is_irrelevant(self):
        users = [f"u{i}" for i in range(200)]
        ring_a = HashRing(["s0", "s1", "s2"])
        ring_b = HashRing(["s2", "s0", "s1"])
        assert [ring_a.shard_for(u) for u in users] == [
            ring_b.shard_for(u) for u in users
        ]

    def test_every_shard_gets_users(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        counts = ring.distribution(f"u{i:04d}" for i in range(1000))
        assert set(counts) == set(ring.shard_names)
        assert all(count > 0 for count in counts.values())
        assert sum(counts.values()) == 1000

    def test_rejects_bad_shard_lists(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing([""])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_single_shard_takes_everything(self):
        ring = HashRing(["only"])
        assert ring.shard_for("anyone") == "only"


# ----------------------------------------------------------------------
@pytest.fixture
def primary_node(tmp_path):
    node = ClusterNode(
        "n1",
        "s0",
        bank_policy_set(),
        InMemoryRetainedADIStore(),
        str(tmp_path / "trails"),
        b"test-key",
        role=ROLE_PRIMARY,
        epoch=1,
        fsync=False,
    )
    node.start()
    yield node
    node.stop()


class TestClusterNodeGate:
    def test_primary_decides(self, primary_node):
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            decision = pdp.decide(make_request("alice"), epoch=1)
        assert decision.granted

    def test_standby_refuses_decides(self, primary_node):
        primary_node.demote()
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            with pytest.raises(PDPNotPrimaryError):
                pdp.decide(make_request("alice"))

    def test_stale_epoch_is_fenced(self, primary_node):
        primary_node.promote(epoch=3)
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            with pytest.raises(PDPFencedError):
                pdp.decide(make_request("alice"), epoch=2)
            # Claiming no epoch at all is allowed (plain RemotePDP use).
            assert pdp.decide(make_request("alice"), epoch=None).granted

    def test_health_reports_cluster_identity(self, primary_node):
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            body = pdp.healthz()
        assert body["cluster"] == {
            "node": "n1",
            "shard": "s0",
            "role": ROLE_PRIMARY,
            "epoch": 1,
        }


class TestExactlyOnceJournal:
    def test_duplicate_request_id_returns_recorded_outcome(
        self, primary_node
    ):
        request = make_request("alice", request_id="req-dup-1")
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            first = pdp.decide(request)
            again = pdp.decide(request)
        assert first.effect == again.effect == "grant"
        # The retry was answered from the journal, not re-evaluated:
        # the store holds the records exactly once.
        records = [
            r
            for r in primary_node.store.records()
            if r.request_id == "req-dup-1"
        ]
        assert len(records) == len(first.adi_adds)

    def test_denies_are_journaled_too(self, primary_node):
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            pdp.decide(make_request("bob", TELLER, timestamp=1.0))
            denied = make_request(
                "bob", AUDITOR, timestamp=2.0, request_id="req-deny-1"
            )
            first = pdp.decide(denied)
            again = pdp.decide(denied)
        assert first.effect == again.effect == "deny"

    def test_request_id_collision_is_rejected(self, primary_node):
        with RemotePDP(primary_node.host, primary_node.port) as pdp:
            pdp.decide(make_request("alice", request_id="req-shared"))
            with pytest.raises(ProtocolError, match="already used"):
                pdp.decide(make_request("carol", request_id="req-shared"))


# ----------------------------------------------------------------------
class TestStandbyReplication:
    def test_catch_up_replays_the_primary_trail(self, tmp_path):
        policy_set = bank_policy_set()
        primary = ClusterNode(
            "p",
            "s0",
            policy_set,
            InMemoryRetainedADIStore(),
            str(tmp_path / "p-trails"),
            b"k",
            role=ROLE_PRIMARY,
            epoch=1,
            fsync=False,
        )
        standby = ClusterNode(
            "b",
            "s0",
            policy_set,
            InMemoryRetainedADIStore(),
            str(tmp_path / "b-trails"),
            b"k",
            role=ROLE_STANDBY,
        )
        primary.start()
        try:
            with RemotePDP(primary.host, primary.port) as pdp:
                for i in range(20):
                    role = TELLER if i % 3 else AUDITOR
                    pdp.decide(
                        make_request(f"u{i % 5}", role, timestamp=float(i))
                    )
        finally:
            primary.stop()
        standby.catch_up(primary.trail_dir)
        assert store_digest(standby.store) == store_digest(primary.store)
        assert standby.journal_size == primary.journal_size

        # Replay is idempotent: a second (and third) tick changes nothing.
        standby.catch_up(primary.trail_dir)
        standby.catch_up(primary.trail_dir)
        assert store_digest(standby.store) == store_digest(primary.store)

    def test_max_events_seals_the_lineage(self, tmp_path):
        policy_set = bank_policy_set()
        primary = ClusterNode(
            "p",
            "s0",
            policy_set,
            InMemoryRetainedADIStore(),
            str(tmp_path / "p-trails"),
            b"k",
            role=ROLE_PRIMARY,
            epoch=1,
            fsync=False,
        )
        primary.start()
        try:
            with RemotePDP(primary.host, primary.port) as pdp:
                for i in range(10):
                    pdp.decide(
                        make_request(
                            f"u{i}",
                            TELLER,
                            context=ContextName.parse(
                                f"Branch=B{i}, Period=P1"
                            ),
                            timestamp=float(i),
                        )
                    )
        finally:
            primary.stop()
        total = len(
            list(AuditTrailManager(primary.trail_dir, b"k").events())
        )
        standby = ClusterNode(
            "b",
            "s0",
            policy_set,
            InMemoryRetainedADIStore(),
            str(tmp_path / "b-trails"),
            b"k",
        )
        standby.catch_up(primary.trail_dir, max_events=total - 4)
        assert standby.journal_size == primary.journal_size - 4


# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def quiet_cluster(tmp_path_factory):
    """A healthy 2-shard cluster with background loops slowed to a crawl."""
    cluster = LocalCluster(
        bank_policy_set(),
        2,
        str(tmp_path_factory.mktemp("cluster")),
        store="memory",
        health_interval=30.0,
        catchup_interval=30.0,
        fsync=False,
    ).start()
    yield cluster
    cluster.stop()


class TestLocalClusterRouting:
    def test_decides_land_on_the_ring_shard(self, quiet_cluster):
        users = [f"user-{i}" for i in range(24)]
        with ClusterPDP((quiet_cluster.host, quiet_cluster.port)) as pdp:
            for i, user in enumerate(users):
                decision = pdp.decide(
                    make_request(user, timestamp=float(i))
                )
                assert decision.granted
        for shard_name in quiet_cluster.shard_names:
            primary = quiet_cluster.shard(shard_name).primary
            stored_users = {r.user_id for r in primary.store.records()}
            expected = {
                u
                for u in users
                if quiet_cluster.ring.shard_for(u) == shard_name
            }
            assert stored_users == expected

    def test_status_and_route_shapes(self, quiet_cluster):
        with ClusterPDP((quiet_cluster.host, quiet_cluster.port)) as pdp:
            route = pdp.route()
            status = pdp.cluster_status()
        assert set(route["shards"]) == set(quiet_cluster.shard_names)
        for entry in route["shards"].values():
            host, port = entry["address"]
            assert isinstance(host, str) and port > 0
            assert entry["epoch"] >= 1
        for shard in status["shards"].values():
            roles = {node["role"] for node in shard["nodes"]}
            assert roles == {ROLE_PRIMARY, ROLE_STANDBY}
            assert shard["failovers"] == 0

    def test_coordinator_metrics_expose_per_node_gauges(self, quiet_cluster):
        with ClusterPDP((quiet_cluster.host, quiet_cluster.port)) as pdp:
            text = pdp.cluster_metrics_text()
        for family in (
            "repro_cluster_node_up",
            "repro_cluster_node_primary",
            "repro_cluster_node_epoch",
            "repro_cluster_route_version",
            "repro_cluster_failovers_total",
        ):
            assert family in text
        with ClusterPDP((quiet_cluster.host, quiet_cluster.port)) as pdp:
            node_text = pdp.node_metrics_text("user-1")
        assert "repro_shard_queue_depth" in node_text

    def test_healthz_passthrough_names_the_owning_node(self, quiet_cluster):
        with ClusterPDP((quiet_cluster.host, quiet_cluster.port)) as pdp:
            body = pdp.healthz("user-1")
        shard = quiet_cluster.ring.shard_for("user-1")
        assert body["cluster"]["shard"] == shard
        assert body["cluster"]["role"] == ROLE_PRIMARY


class TestClusterPDPConstruction:
    def test_needs_exactly_one_of_coordinator_and_static_route(self):
        with pytest.raises(ClusterError):
            ClusterPDP()
        with pytest.raises(ClusterError):
            ClusterPDP(
                ("127.0.0.1", 1), static_route={"shards": {"s": {}}}
            )

    def test_static_route_works_without_a_coordinator(self, quiet_cluster):
        route = LocalClusterRouteProbe(quiet_cluster).route()
        with ClusterPDP(static_route=route) as pdp:
            assert pdp.decide(
                make_request("static-user", timestamp=99.0)
            ).granted

    def test_static_route_errors_surface_immediately(self):
        route = {
            "version": 1,
            "vnodes": 8,
            "shards": {
                "s0": {"address": ["127.0.0.1", 1], "epoch": 1},
            },
        }
        with ClusterPDP(static_route=route, timeout=0.5) as pdp:
            with pytest.raises(PDPUnavailableError):
                pdp.decide(make_request("anyone"))

    def test_malformed_route_is_rejected(self):
        with pytest.raises(ClusterError):
            ClusterPDP(static_route={"shards": {}})


class LocalClusterRouteProbe:
    """Fetch a cluster's route the way an operator would (one request)."""

    def __init__(self, cluster):
        self._cluster = cluster

    def route(self):
        with ClusterPDP(
            (self._cluster.host, self._cluster.port)
        ) as pdp:
            return pdp.route()


# ----------------------------------------------------------------------
class TestOpenClusterFacade:
    def test_open_cluster_round_trip(self, tmp_path):
        from repro.api import open_cluster

        with open_cluster(
            bank_policy_set(),
            str(tmp_path / "cluster"),
            n_shards=2,
            store="memory",
            health_interval=30.0,
            fsync=False,
        ) as handle:
            assert len(handle.shard_names) == 2
            with handle.client() as pdp:
                assert pdp.decide(make_request("facade-user")).granted
            status = handle.status()
            assert set(status["shards"]) == set(handle.shard_names)

    def test_open_cluster_rejects_unknown_store(self, tmp_path):
        from repro.api import open_cluster
        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            open_cluster(
                bank_policy_set(), str(tmp_path / "x"), store="bogus"
            )

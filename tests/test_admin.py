"""Unit tests for the retained-ADI management port (Section 4.3)."""

import pytest

from repro.core import (
    CONTROLLER_ROLE,
    ContextName,
    InMemoryRetainedADIStore,
    RetainedADIRecord,
    RetainedADIManagementPort,
    Role,
)
from repro.core.admin import (
    ALL_OPERATIONS,
    OP_COUNT_RECORDS,
    OP_LIST_RECORDS,
    OP_PURGE_ALL,
    OP_PURGE_CONTEXT,
    READ_OPERATIONS,
)
from repro.errors import AdminError

AUDITOR_ROLE = Role("permisRole", "ADIAuditor")
NOBODY_ROLE = Role("permisRole", "Nobody")


def record(user="alice", context="Branch=York, Period=2006", at=1.0, rid="r1"):
    return RetainedADIRecord(
        user_id=user,
        roles=(Role("employee", "Teller"),),
        operation="op",
        target="t",
        context_instance=ContextName.parse(context),
        granted_at=at,
        request_id=rid,
    )


@pytest.fixture
def store():
    s = InMemoryRetainedADIStore()
    s.add(record(at=1.0, rid="r1"))
    s.add(record(user="bob", context="Branch=Leeds, Period=2006", at=5.0, rid="r2"))
    return s


@pytest.fixture
def port(store):
    return RetainedADIManagementPort(store)


class TestAuthorization:
    def test_controller_role_may_do_everything(self, port):
        assert port.count_records([CONTROLLER_ROLE]) == 2

    def test_unknown_role_denied(self, port):
        with pytest.raises(AdminError):
            port.count_records([NOBODY_ROLE])

    def test_no_roles_denied(self, port):
        with pytest.raises(AdminError):
            port.purge_all([])

    def test_read_only_role(self, store):
        port = RetainedADIManagementPort(
            store,
            role_operations={
                CONTROLLER_ROLE: ALL_OPERATIONS,
                AUDITOR_ROLE: READ_OPERATIONS,
            },
        )
        assert port.count_records([AUDITOR_ROLE]) == 2
        assert len(port.list_records([AUDITOR_ROLE])) == 2
        with pytest.raises(AdminError):
            port.purge_all([AUDITOR_ROLE])

    def test_unknown_operation_in_policy_rejected(self, store):
        with pytest.raises(AdminError):
            RetainedADIManagementPort(
                store, role_operations={AUDITOR_ROLE: frozenset({"badOp"})}
            )

    def test_any_authorized_presented_role_suffices(self, store):
        port = RetainedADIManagementPort(
            store,
            role_operations={AUDITOR_ROLE: frozenset({OP_COUNT_RECORDS})},
        )
        assert port.count_records([NOBODY_ROLE, AUDITOR_ROLE]) == 2


class TestOperations:
    def test_purge_context(self, port, store):
        outcome = port.purge_context(
            [CONTROLLER_ROLE], ContextName.parse("Branch=York, Period=2006")
        )
        assert outcome.operation == OP_PURGE_CONTEXT
        assert outcome.affected == 1
        assert store.count() == 1

    def test_purge_user(self, port, store):
        assert port.purge_user([CONTROLLER_ROLE], "alice").affected == 1
        assert {rec.user_id for rec in store.records()} == {"bob"}

    def test_purge_older_than(self, port, store):
        assert port.purge_older_than([CONTROLLER_ROLE], 3.0).affected == 1
        assert store.count() == 1

    def test_purge_all(self, port, store):
        assert port.purge_all([CONTROLLER_ROLE]).operation == OP_PURGE_ALL
        assert store.count() == 0

    def test_remove_record(self, port, store):
        target = list(store.records())[0]
        outcome = port.remove_record([CONTROLLER_ROLE], target.record_id)
        assert outcome.affected == 1
        assert store.count() == 1

    def test_remove_missing_record(self, port):
        assert port.remove_record([CONTROLLER_ROLE], 999).affected == 0

    def test_list_records(self, port):
        records = port.list_records([CONTROLLER_ROLE])
        assert {rec.user_id for rec in records} == {"alice", "bob"}
        assert OP_LIST_RECORDS in ALL_OPERATIONS

    def test_retention_sweep(self, port, store):
        outcome = port.scheduled_retention_sweep(
            [CONTROLLER_ROLE], max_age_seconds=2.0, now=6.0
        )
        assert outcome.affected == 1
        assert store.count() == 1

"""Property tests: the two retained-ADI backends are interchangeable.

The SQLite store narrows candidate rows with a SQL LIKE prefilter built
from the effective context.  ``%`` and ``_`` are legal characters in
context values, so the pattern must escape them — these properties drive
the two stores with adversarial context names (including LIKE
metacharacters and backslashes) and require identical answers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ContextName,
    InMemoryRetainedADIStore,
    RetainedADIRecord,
    Role,
    SQLiteRetainedADIStore,
    store_digest,
)
from repro.core.context import ContextComponent

# Values deliberately rich in LIKE metacharacters.
_value = st.text(
    alphabet=st.sampled_from(list("abc%_\\012")),
    min_size=1,
    max_size=6,
).filter(lambda text: text not in ("*", "!") and "=" not in text)

_types = st.sampled_from(["T0", "T1", "T2"])


@st.composite
def concrete_contexts(draw, max_depth=3):
    depth = draw(st.integers(min_value=1, max_value=max_depth))
    components = []
    for index in range(depth):
        components.append(ContextComponent(f"L{index}", draw(_value)))
    return ContextName(components)


@st.composite
def policy_contexts(draw, max_depth=3):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    components = []
    for index in range(depth):
        value = draw(st.one_of(_value, st.just("*")))
        components.append(ContextComponent(f"L{index}", value))
    return ContextName(components)


def _record(index, context):
    return RetainedADIRecord(
        user_id=f"u{index % 3}",
        roles=(Role("employee", "Teller"),),
        operation="op",
        target="t",
        context_instance=context,
        granted_at=float(index),
        request_id=f"r{index}",
    )


@given(
    st.lists(concrete_contexts(), min_size=1, max_size=10),
    policy_contexts(),
)
@settings(max_examples=120, deadline=None)
def test_find_agrees_across_backends(instance_contexts, query):
    memory = InMemoryRetainedADIStore()
    sqlite_store = SQLiteRetainedADIStore(":memory:")
    try:
        for index, context in enumerate(instance_contexts):
            memory.add(_record(index, context))
            sqlite_store.add(_record(index, context))
        memory_hits = {
            record.request_id for record in memory.find(query)
        }
        sqlite_hits = {
            record.request_id for record in sqlite_store.find(query)
        }
        assert memory_hits == sqlite_hits
        assert memory.has_context(query) == sqlite_store.has_context(query)
    finally:
        sqlite_store.close()


@given(
    st.lists(concrete_contexts(), min_size=1, max_size=10),
    policy_contexts(),
)
@settings(max_examples=80, deadline=None)
def test_purge_agrees_across_backends(instance_contexts, query):
    memory = InMemoryRetainedADIStore()
    sqlite_store = SQLiteRetainedADIStore(":memory:")
    try:
        for index, context in enumerate(instance_contexts):
            memory.add(_record(index, context))
            sqlite_store.add(_record(index, context))
        assert memory.purge_context(query) == sqlite_store.purge_context(query)
        assert store_digest(memory) == store_digest(sqlite_store)
    finally:
        sqlite_store.close()


@given(
    st.lists(concrete_contexts(), min_size=1, max_size=8),
    st.sampled_from(["u0", "u1", "u2"]),
    policy_contexts(),
)
@settings(max_examples=80, deadline=None)
def test_find_user_agrees_across_backends(instance_contexts, user, query):
    memory = InMemoryRetainedADIStore()
    sqlite_store = SQLiteRetainedADIStore(":memory:")
    try:
        for index, context in enumerate(instance_contexts):
            memory.add(_record(index, context))
            sqlite_store.add(_record(index, context))
        memory_hits = [
            record.request_id for record in memory.find_user(user, query)
        ]
        sqlite_hits = [
            record.request_id for record in sqlite_store.find_user(user, query)
        ]
        assert memory_hits == sqlite_hits
    finally:
        sqlite_store.close()

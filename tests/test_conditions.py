"""Unit tests for PERMIS environmental conditions on access rules."""

import pytest

from repro.core import ContextName, Privilege, Role
from repro.errors import PolicyError
from repro.permis import (
    AllOf,
    Always,
    AnyOf,
    EnvEquals,
    EnvOneOf,
    Negation,
    PermisPDP,
    PermisPolicyBuilder,
    TimeWindow,
    TrustStore,
)

TELLER = Role("employee", "Teller")
HANDLE_CASH = Privilege("handleCash", "till://1")
CTX = ContextName.parse("Branch=York, Period=2006")

NINE_AM = 9 * 3600.0
FIVE_PM = 17 * 3600.0


class TestLeafConditions:
    def test_always(self):
        assert Always().evaluate({}, 0.0)

    def test_env_equals(self):
        condition = EnvEquals("terminal", "till-3")
        assert condition.evaluate({"terminal": "till-3"}, 0.0)
        assert not condition.evaluate({"terminal": "till-4"}, 0.0)
        assert not condition.evaluate({}, 0.0)

    def test_env_one_of(self):
        condition = EnvOneOf("branch", ["York", "Leeds"])
        assert condition.evaluate({"branch": "Leeds"}, 0.0)
        assert not condition.evaluate({"branch": "Bath"}, 0.0)

    def test_time_window_within_day(self):
        condition = TimeWindow(NINE_AM, FIVE_PM)
        assert condition.evaluate({}, NINE_AM)
        assert condition.evaluate({}, NINE_AM + 3600)
        assert not condition.evaluate({}, FIVE_PM)
        assert not condition.evaluate({}, 2 * 3600.0)

    def test_time_window_wraps_midnight(self):
        night = TimeWindow(FIVE_PM, NINE_AM)
        assert night.evaluate({}, 23 * 3600.0)
        assert night.evaluate({}, 3 * 3600.0)
        assert not night.evaluate({}, 12 * 3600.0)

    def test_time_window_uses_modulo_day(self):
        condition = TimeWindow(NINE_AM, FIVE_PM)
        three_days_in = 3 * 86_400.0 + NINE_AM + 60
        assert condition.evaluate({}, three_days_in)

    def test_validation(self):
        with pytest.raises(PolicyError):
            TimeWindow(-1, 10)
        with pytest.raises(PolicyError):
            TimeWindow(0, 90_000)
        with pytest.raises(PolicyError):
            EnvEquals("", "x")
        with pytest.raises(PolicyError):
            EnvOneOf("k", [])


class TestCombinators:
    def test_operators(self):
        yes, no = Always(), Negation(Always())
        assert (yes & yes).evaluate({}, 0)
        assert not (yes & no).evaluate({}, 0)
        assert (yes | no).evaluate({}, 0)
        assert not (~yes).evaluate({}, 0)

    def test_nary_forms(self):
        assert AllOf(Always(), Always()).evaluate({}, 0)
        assert AnyOf(Negation(Always()), Always()).evaluate({}, 0)
        with pytest.raises(PolicyError):
            AllOf()
        with pytest.raises(PolicyError):
            AnyOf()


class TestConditionedPolicy:
    def _policy(self, condition):
        return (
            PermisPolicyBuilder()
            .grant(TELLER, [HANDLE_CASH], condition=condition)
            .build()
        )

    def test_condition_gates_permits(self):
        policy = self._policy(TimeWindow(NINE_AM, FIVE_PM))
        assert policy.permits([TELLER], HANDLE_CASH, {}, at=NINE_AM + 60)
        assert not policy.permits([TELLER], HANDLE_CASH, {}, at=FIVE_PM + 60)

    def test_unconditioned_rule_always_grants(self):
        policy = self._policy(None)
        assert policy.permits([TELLER], HANDLE_CASH, {}, at=0.0)

    def test_any_satisfied_rule_grants(self):
        policy = (
            PermisPolicyBuilder()
            .grant(TELLER, [HANDLE_CASH], condition=TimeWindow(NINE_AM, FIVE_PM))
            .grant(TELLER, [HANDLE_CASH], condition=EnvEquals("override", "on"))
            .build()
        )
        late = FIVE_PM + 3600
        assert not policy.permits([TELLER], HANDLE_CASH, {}, at=late)
        assert policy.permits(
            [TELLER], HANDLE_CASH, {"override": "on"}, at=late
        )

    def test_privileges_of_ignores_conditions(self):
        policy = self._policy(Negation(Always()))
        assert HANDLE_CASH in policy.privileges_of([TELLER])

    def test_pdp_passes_environment_and_time(self):
        policy = self._policy(
            AllOf(TimeWindow(NINE_AM, FIVE_PM), EnvEquals("terminal", "till-3"))
        )
        pdp = PermisPDP(policy, TrustStore())
        working_hours = NINE_AM + 600
        grant = pdp.decision(
            "cn=alice,o=bank,c=gb",
            "handleCash",
            "till://1",
            CTX,
            roles=[TELLER],
            environment={"terminal": "till-3"},
            at=working_hours,
        )
        assert grant.granted
        wrong_terminal = pdp.decision(
            "cn=alice,o=bank,c=gb",
            "handleCash",
            "till://1",
            CTX,
            roles=[TELLER],
            environment={"terminal": "till-9"},
            at=working_hours,
        )
        assert wrong_terminal.denied
        assert wrong_terminal.reason.startswith("RBAC")
        after_hours = pdp.decision(
            "cn=alice,o=bank,c=gb",
            "handleCash",
            "till://1",
            CTX,
            roles=[TELLER],
            environment={"terminal": "till-3"},
            at=FIVE_PM + 3600,
        )
        assert after_hours.denied

"""Property test: audit-trail recovery is lossless for any request stream.

For every generated decision stream, a PDP that logs each decision and
then restarts — replaying the trails per Section 5.2 — must hold exactly
the retained ADI it held before the restart, and must therefore make the
same decision on any follow-up request.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import (
    AuditTrailManager,
    EVENT_DECISION,
    decision_event_payload,
    recover_retained_adi,
)
from repro.core import (
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    Privilege,
    Role,
    store_digest,
)
from repro.xmlpolicy import combined_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")

PRIVILEGES = {
    TELLER: Privilege("handleCash", "till://cash"),
    AUDITOR: Privilege("auditBooks", "ledger://books"),
    CLERK: Privilege("prepareCheck", "http://www.myTaxOffice.com/Check"),
    MANAGER: Privilege(
        "approve/disapproveCheck", "http://www.myTaxOffice.com/Check"
    ),
}
#: Including each policy's last step exercises purge replay.
LAST_STEPS = {
    AUDITOR: Privilege("CommitAudit", "http://audit.location.com/audit"),
    CLERK: Privilege("confirmCheck", "http://secret.location.com/audit"),
}


@st.composite
def streams(draw):
    size = draw(st.integers(min_value=1, max_value=30))
    requests = []
    for index in range(size):
        user = draw(st.sampled_from(["u1", "u2", "u3"]))
        role = draw(st.sampled_from([TELLER, AUDITOR, CLERK, MANAGER]))
        use_last_step = role in LAST_STEPS and draw(
            st.booleans()
        )
        privilege = LAST_STEPS[role] if use_last_step else PRIVILEGES[role]
        if role in (CLERK, MANAGER):
            context = ContextName.parse(
                f"TaxOffice=Leeds, taxRefundProcess=I{draw(st.integers(1, 2))}"
            )
        else:
            context = ContextName.parse(
                f"Branch={draw(st.sampled_from(['York', 'Leeds']))}, "
                f"Period=P{draw(st.integers(1, 2))}"
            )
        requests.append(
            DecisionRequest(
                user_id=user,
                roles=(role,),
                operation=privilege.operation,
                target=privilege.target,
                context_instance=context,
                timestamp=float(index),
            )
        )
    return requests


@given(streams())
@settings(max_examples=40, deadline=None)
def test_recovery_is_lossless(stream):
    with tempfile.TemporaryDirectory() as trail_dir:
        audit = AuditTrailManager(
            os.path.join(trail_dir, "trails"), b"prop-key", max_records=7
        )
        engine = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
        for request in stream:
            decision = engine.check(request)
            audit.append(
                EVENT_DECISION,
                request.timestamp,
                decision_event_payload(decision),
            )

        recovered = InMemoryRetainedADIStore()
        recover_retained_adi(audit, combined_policy_set(), recovered)
        assert store_digest(recovered) == store_digest(engine.store)

        # The recovered PDP decides the same way on a follow-up probe.
        probe = DecisionRequest(
            user_id="u1",
            roles=(AUDITOR,),
            operation="auditBooks",
            target="ledger://books",
            context_instance=ContextName.parse("Branch=York, Period=P1"),
            timestamp=1e6,
        )
        live = MSoDEngine(combined_policy_set(), engine.store).check(probe)
        replayed = MSoDEngine(combined_policy_set(), recovered).check(probe)
        assert live.effect == replayed.effect


@given(streams())
@settings(max_examples=40, deadline=None)
def test_recovery_is_idempotent(stream):
    """Replaying the same trails N times equals replaying them once.

    This is the property the cluster's log-shipping replication stands
    on: a standby re-runs recovery over its primary's trails on every
    catch-up tick, so a second (or tenth) pass must leave the store
    digest exactly where the first pass put it.
    """
    with tempfile.TemporaryDirectory() as trail_dir:
        audit = AuditTrailManager(
            os.path.join(trail_dir, "trails"), b"prop-key", max_records=7
        )
        engine = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
        for request in stream:
            decision = engine.check(request)
            audit.append(
                EVENT_DECISION,
                request.timestamp,
                decision_event_payload(decision),
            )

        once = InMemoryRetainedADIStore()
        recover_retained_adi(audit, combined_policy_set(), once)

        repeatedly = InMemoryRetainedADIStore()
        for _ in range(3):
            recover_retained_adi(audit, combined_policy_set(), repeatedly)

        assert store_digest(repeatedly) == store_digest(once)

        # Resuming over a partially-recovered store also converges: the
        # second full pass must top up, never double-apply.
        partial = InMemoryRetainedADIStore()
        recover_retained_adi(
            audit, combined_policy_set(), partial, last_n_trails=1
        )
        recover_retained_adi(audit, combined_policy_set(), partial)
        # last_n_trails=1 may have seen a *suffix* whose purges already
        # ran, so only assert the full-pass-after-partial end state when
        # the stream never purges (no last-step events).
        replay_all = list(audit.events())
        if not any(e.payload.get("adi_purges") for e in replay_all):
            assert store_digest(partial) == store_digest(once)


@given(
    streams(),
    st.sets(st.sampled_from(["u1", "u2", "u3"]), min_size=1, max_size=2),
)
@settings(max_examples=40, deadline=None)
def test_user_filtered_recovery_over_sealed_lineages(stream, movers):
    """``user_filter`` recovery over rotated, sealed lineages is exact.

    This is the reshard import's correctness property: a target shard
    replays the *moving users'* history out of every trail lineage the
    source ever produced (a mid-migration failover seals one lineage
    and starts another; ``max_records=7`` forces rotation inside each).
    The filtered replay must hold exactly the movers' slice of what an
    unfiltered replay holds, its journal must contain exactly the
    movers' outcomes, and running it again must change nothing.
    """
    with tempfile.TemporaryDirectory() as root:
        # Two sealed lineages, as left behind by a primary that died
        # mid-stream and was replaced by a promoted standby.
        lineages = [
            AuditTrailManager(
                os.path.join(root, "lineage-a"), b"prop-key", max_records=7
            ),
            AuditTrailManager(
                os.path.join(root, "lineage-b"), b"prop-key", max_records=7
            ),
        ]
        engine = MSoDEngine(combined_policy_set(), InMemoryRetainedADIStore())
        cut = len(stream) // 2
        for index, request in enumerate(stream):
            decision = engine.check(request)
            lineages[0 if index < cut else 1].append(
                EVENT_DECISION,
                request.timestamp,
                decision_event_payload(decision),
            )

        def replay(user_filter=None, journal=None):
            store = InMemoryRetainedADIStore()
            for lineage in lineages:
                recover_retained_adi(
                    lineage,
                    combined_policy_set(),
                    store,
                    journal=journal,
                    user_filter=user_filter,
                )
            return store

        moved_journal: dict = {}
        moved = replay(
            user_filter=lambda user: user in movers, journal=moved_journal
        )
        full_journal: dict = {}
        full = replay(journal=full_journal)

        def slice_of(store, users):
            return tuple(
                entry for entry in store_digest(store) if entry[0] in users
            )

        assert store_digest(moved) == slice_of(full, movers)
        # No other user's records leak through the filter.
        assert all(entry[0] in movers for entry in store_digest(moved))
        # The journal holds exactly the movers' outcomes (grants *and*
        # denies), so a post-cutover retry dedupes on the target.
        expected_ids = {
            request_id
            for request_id, payload in full_journal.items()
            if payload.get("request", {}).get("user_id") in movers
        }
        assert set(moved_journal) == expected_ids

        # Idempotent: a second filtered pass (a re-run catch-up tick)
        # over the same sealed lineages changes nothing.
        again = InMemoryRetainedADIStore()
        for _ in range(2):
            for lineage in lineages:
                recover_retained_adi(
                    lineage,
                    combined_policy_set(),
                    again,
                    user_filter=lambda user: user in movers,
                )
        assert store_digest(again) == store_digest(moved)

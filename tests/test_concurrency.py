"""Concurrency smoke tests for the SQLite retained-ADI store.

The PERMIS PDP is single-threaded per decision, but the store must
survive concurrent use (e.g. the management port purging while the PDP
commits grants).  These tests hammer one store from several threads and
check the invariants that matter: no lost updates, no torn reads, and a
consistent final count.
"""

import threading

from repro.core import (
    ADIMutation,
    ContextName,
    RetainedADIRecord,
    Role,
    SQLiteRetainedADIStore,
)

TELLER = Role("employee", "Teller")


def record(worker, index):
    return RetainedADIRecord(
        user_id=f"user-{worker}",
        roles=(TELLER,),
        operation="op",
        target="t",
        context_instance=ContextName.parse(f"Worker=w{worker}, Item=i{index}"),
        granted_at=float(index),
        request_id=f"w{worker}-r{index}",
    )


def test_concurrent_adds_are_all_stored():
    store = SQLiteRetainedADIStore(":memory:")
    n_workers, n_records = 8, 50

    def worker(worker_id):
        for index in range(n_records):
            store.add(record(worker_id, index))

    threads = [
        threading.Thread(target=worker, args=(worker_id,))
        for worker_id in range(n_workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert store.count() == n_workers * n_records
    request_ids = {rec.request_id for rec in store.records()}
    assert len(request_ids) == n_workers * n_records
    store.close()


def test_concurrent_adds_and_purges_stay_consistent():
    store = SQLiteRetainedADIStore(":memory:")
    n_rounds = 30
    errors = []

    def adder():
        try:
            for index in range(n_rounds):
                store.add(record("adder", index))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def purger():
        try:
            for _ in range(n_rounds):
                store.purge_context(ContextName.parse("Worker=wadder"))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=adder), threading.Thread(target=purger)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # Whatever survived must be readable and internally consistent.
    survivors = list(store.records())
    assert len(survivors) == store.count()
    store.close()


def test_concurrent_atomic_mutations():
    """apply() transactions from several threads never interleave into
    a torn state: every request's records land together."""
    store = SQLiteRetainedADIStore(":memory:")
    n_workers, n_mutations = 6, 20

    def worker(worker_id):
        for index in range(n_mutations):
            mutation = ADIMutation(
                adds=[
                    record(worker_id, index * 2),
                    record(worker_id, index * 2 + 1),
                ]
            )
            store.apply(mutation)

    threads = [
        threading.Thread(target=worker, args=(worker_id,))
        for worker_id in range(n_workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert store.count() == n_workers * n_mutations * 2
    store.close()

"""Smoke tests: every example script runs cleanly and tells its story."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

CASES = [
    (
        "quickstart.py",
        ["DENY alice auditBooks", "retained-ADI records left for Period=2006: 0"],
    ),
    (
        "bank_audit.py",
        [
            "recovered retained-ADI records: 2",
            "DENY cn=alice,o=bank,c=gb auditBooks",
            "GRANT cn=alice,o=bank,c=gb auditBooks@ledger://main [Branch=York, Period=2007]",
        ],
    ),
    (
        "tax_refund.py",
        [
            "complete: True",
            "T2 by mgr1   : DENY",
            "T4 by clerk1 : DENY",
        ],
    ),
    (
        "virtual_organisation.py",
        [
            "refused:",
            "the conflict went UNDETECTED",
            "identity linking restores MSoD enforcement",
        ],
    ),
    (
        "adi_recovery.py",
        [
            "recovered state is byte-identical",
            "recovery refused:",
        ],
    ),
    (
        "bank_year_simulation.py",
        [
            "separation failures",
            "the failure count is 0",
        ],
    ),
    (
        "policy_authoring.py",
        [
            "can never terminate",
            "0 error(s)",
            "first decision through the published policy: grant",
            "mutually exclusive roles limit 2:",
        ],
    ),
    (
        "conditions_and_delegation.py",
        [
            "during opening hours, till-3: GRANT",
            "after hours, till-3: DENY",
            "audit attempt: DENY",
            "delegation escalates roles",
        ],
    ),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    for fragment in expected:
        assert fragment in result.stdout, (
            f"{script}: missing {fragment!r} in output"
        )

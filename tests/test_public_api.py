"""API-surface tests: every documented public name exists and imports."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.obs",
    "repro.rbac",
    "repro.xmlpolicy",
    "repro.framework",
    "repro.permis",
    "repro.audit",
    "repro.vo",
    "repro.workflow",
    "repro.baselines",
    "repro.workload",
    "repro.cluster",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    module = importlib.import_module(package)
    assert module is not None


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_names_documented(package):
    """Every public class/function exported via __all__ has a docstring."""
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if isinstance(obj, (str, int, float, frozenset, tuple)):
            continue  # constants
        assert obj.__doc__, f"{package}.{name} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_error_hierarchy_rooted():
    """All library errors derive from ReproError."""
    from repro import errors

    for name in dir(errors):
        obj = getattr(errors, name)
        if (
            isinstance(obj, type)
            and issubclass(obj, Exception)
            and obj is not errors.ReproError
            and obj.__module__ == "repro.errors"
        ):
            assert issubclass(obj, errors.ReproError), name


def test_cli_module_importable():
    from repro import cli

    parser = cli.build_parser()
    assert parser.prog == "repro"

"""Fuzz tests: parsers must fail *cleanly* on arbitrary input.

Every parser in the library — Appendix-A XML, the authoring DSL, the
PERMIS policy XML, context names, DNs — must either produce a valid
object or raise its documented :class:`~repro.errors.ReproError`
subclass; no other exception type may escape, no matter the input.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import ContextName
from repro.errors import (
    ContextNameError,
    DirectoryError,
    PolicyParseError,
)
from repro.permis.directory import normalize_dn
from repro.permis.xml import parse_permis_policy
from repro.xmlpolicy import (
    compile_policy_set,
    parse_policy_set,
    validate_policy_document,
)

_text = st.text(max_size=300)

# XML-shaped noise: well-formed-ish fragments mixing real element names.
_xmlish = st.builds(
    lambda parts: "".join(parts),
    st.lists(
        st.sampled_from(
            [
                "<MSoDPolicySet>",
                "</MSoDPolicySet>",
                "<MSoDPolicy BusinessContext='A=!'>",
                "<MSoDPolicy>",
                "</MSoDPolicy>",
                "<MMER ForbiddenCardinality='2'>",
                "<MMER>",
                "</MMER>",
                "<Role type='t' value='v'/>",
                "<Role/>",
                "<MMEP ForbiddenCardinality='1'>",
                "</MMEP>",
                "<Privilege operation='o' target='u'/>",
                "<Operation value='o' target='u'/>",
                "<FirstStep operation='a' targetURI='t'/>",
                "<LastStep/>",
                "text",
                "<Unknown/>",
            ]
        ),
        max_size=12,
    ),
)


@given(_text)
@settings(max_examples=200, deadline=None)
def test_xml_parser_fails_cleanly(text):
    try:
        parse_policy_set(text)
    except PolicyParseError:
        pass


@given(_xmlish)
@settings(max_examples=300, deadline=None)
def test_xml_parser_survives_structured_noise(text):
    try:
        parse_policy_set(text)
    except PolicyParseError:
        pass


@given(_xmlish)
@settings(max_examples=200, deadline=None)
def test_validator_never_raises(text):
    problems = validate_policy_document(text)
    assert isinstance(problems, list)


@given(_text)
@settings(max_examples=200, deadline=None)
def test_dsl_compiler_fails_cleanly(text):
    try:
        compile_policy_set(text)
    except PolicyParseError:
        pass


_dslish = st.builds(
    lambda lines: "\n".join(lines),
    st.lists(
        st.sampled_from(
            [
                'policy p within "A=!":',
                'policy q within "":',
                "policy broken within",
                "    first step op on target",
                "    last step op on target",
                "    mutually exclusive roles limit 2:",
                "    mutually exclusive privileges limit 3:",
                "        e:A, e:B",
                "        op on target, op on target",
                "        garbage",
                "# comment",
                "",
                "stray text",
            ]
        ),
        max_size=10,
    ),
)


@given(_dslish)
@settings(max_examples=300, deadline=None)
def test_dsl_compiler_survives_structured_noise(text):
    try:
        compile_policy_set(text)
    except PolicyParseError:
        pass


@given(_text)
@settings(max_examples=200, deadline=None)
def test_permis_xml_parser_fails_cleanly(text):
    try:
        parse_permis_policy(text)
    except PolicyParseError:
        pass


@given(_text)
@settings(max_examples=200, deadline=None)
def test_context_parser_fails_cleanly(text):
    try:
        name = ContextName.parse(text)
    except ContextNameError:
        return
    # Success must round-trip.
    assert ContextName.parse(str(name)) == name


@given(_text)
@settings(max_examples=200, deadline=None)
def test_dn_normalizer_fails_cleanly(text):
    try:
        dn = normalize_dn(text)
    except DirectoryError:
        return
    assert normalize_dn(dn) == dn  # idempotent on success

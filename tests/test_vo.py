"""Unit tests for the VO/federation simulation (Sections 1, 2.1, 6)."""

import pytest

from repro.core import ContextName, Role
from repro.errors import ConstraintViolationError, CredentialError
from repro.permis import (
    CredentialValidationService,
    LdapDirectory,
    PermisPolicyBuilder,
    TrustStore,
)
from repro.rbac import SsdConstraint
from repro.vo import (
    IdentityLinker,
    LibertyAliasService,
    RoleAuthority,
    ShibbolethIdP,
)
from repro.xmlpolicy import bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
ALICE = "cn=alice,o=vo,c=gb"
SSD = SsdConstraint("teller-auditor", ["Teller", "Auditor"], 2)


def authority(name, directory=None):
    return RoleAuthority(
        name,
        f"cn={name},o=vo,c=gb",
        f"{name}-key".encode(),
        directory,
        ssd_constraints=[SSD],
    )


class TestRoleAuthority:
    def test_assignment_issues_credential(self):
        auth = authority("authA")
        credential = auth.assign(ALICE, TELLER, 0, 100)
        assert credential.attributes == (TELLER,)
        assert auth.local_roles_of(ALICE) == {TELLER}

    def test_local_ssd_blocks_local_conflict(self):
        auth = authority("authA")
        auth.assign(ALICE, TELLER, 0, 100)
        with pytest.raises(ConstraintViolationError):
            auth.assign(ALICE, AUDITOR, 0, 100)

    def test_cross_authority_conflict_is_invisible(self):
        """The Section 1 blind spot: neither authority can see the other's
        assignment, so both succeed."""
        auth_a = authority("authA")
        auth_b = authority("authB")
        auth_a.assign(ALICE, TELLER, 0, 100)
        credential = auth_b.assign(ALICE, AUDITOR, 0, 100)
        assert credential.attributes == (AUDITOR,)

    def test_ssd_can_be_bypassed_explicitly(self):
        auth = authority("authA")
        auth.assign(ALICE, TELLER, 0, 100)
        auth.assign(ALICE, AUDITOR, 0, 100, enforce_local_ssd=False)

    def test_credentials_validate_through_cvs(self):
        directory = LdapDirectory()
        auth_a = authority("authA", directory)
        auth_b = authority("authB", directory)
        trust = TrustStore()
        trust.trust(auth_a.soa_dn, auth_a.verification_key)
        trust.trust(auth_b.soa_dn, auth_b.verification_key)
        policy = (
            PermisPolicyBuilder()
            .allow_assignment(auth_a.soa_dn, [TELLER, AUDITOR], "o=vo,c=gb")
            .allow_assignment(auth_b.soa_dn, [TELLER, AUDITOR], "o=vo,c=gb")
            .with_msod(bank_policy_set())
            .build()
        )
        auth_a.assign(ALICE, TELLER, 0, 100)
        auth_b.assign(ALICE, AUDITOR, 0, 100)
        cvs = CredentialValidationService(policy, trust, directory)
        result = cvs.validate(ALICE, at=5.0)
        assert result.valid_roles == {TELLER, AUDITOR}


class TestShibboleth:
    def test_fresh_handle_per_session(self):
        idp = ShibbolethIdP("idp")
        first = idp.new_session("alice")
        second = idp.new_session("alice")
        assert first != second
        assert first != "alice"
        assert idp.resolve(first) == "alice"

    def test_user_id_release_fix(self):
        idp = ShibbolethIdP("idp", release_user_id=True)
        assert idp.new_session("alice") == "alice"

    def test_reconfiguration(self):
        idp = ShibbolethIdP("idp")
        assert not idp.releases_user_id
        idp.configure_user_id_release(True)
        assert idp.new_session("alice") == "alice"

    def test_unknown_handle(self):
        with pytest.raises(CredentialError):
            ShibbolethIdP("idp").resolve("handle-404")


class TestLiberty:
    def test_alias_stable_per_pair(self):
        service = LibertyAliasService()
        assert service.alias_for("alice", "sp1") == service.alias_for(
            "alice", "sp1"
        )

    def test_alias_differs_per_provider_and_user(self):
        service = LibertyAliasService()
        assert service.alias_for("alice", "sp1") != service.alias_for(
            "alice", "sp2"
        )
        assert service.alias_for("alice", "sp1") != service.alias_for(
            "bob", "sp1"
        )

    def test_alias_does_not_reveal_identity(self):
        alias = LibertyAliasService().alias_for("alice", "sp1")
        assert "alice" not in alias


class TestIdentityLinker:
    def test_unlinked_identifier_resolves_to_itself(self):
        linker = IdentityLinker()
        assert linker.resolve("handle-1") == "handle-1"
        assert not linker.is_linked("handle-1")

    def test_linked_identifier_resolves_to_local_id(self):
        linker = IdentityLinker()
        linker.link("alias-1", "alice")
        assert linker.resolve("alias-1") == "alice"
        assert linker.is_linked("alias-1")

    def test_conflicting_link_rejected(self):
        linker = IdentityLinker()
        linker.link("alias-1", "alice")
        with pytest.raises(CredentialError):
            linker.link("alias-1", "bob")

    def test_relink_same_target_is_idempotent(self):
        linker = IdentityLinker()
        linker.link("alias-1", "alice")
        linker.link("alias-1", "alice")

    def test_empty_values_rejected(self):
        with pytest.raises(CredentialError):
            IdentityLinker().link("", "alice")


class TestFederationEndToEnd:
    """The Section 6 limitation and fix, on the real engine."""

    def _run_conflict(self, identity_for_session):
        from repro.core import (
            DecisionRequest,
            InMemoryRetainedADIStore,
            MSoDEngine,
        )

        engine = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
        ctx = ContextName.parse("Branch=York, Period=2006")
        first = engine.check(
            DecisionRequest(
                user_id=identity_for_session(0),
                roles=(TELLER,),
                operation="handleCash",
                target="till://1",
                context_instance=ctx,
                timestamp=1.0,
            )
        )
        second = engine.check(
            DecisionRequest(
                user_id=identity_for_session(1),
                roles=(AUDITOR,),
                operation="auditBooks",
                target="ledger://1",
                context_instance=ctx,
                timestamp=2.0,
            )
        )
        return first, second

    def test_per_session_handles_defeat_msod(self):
        idp = ShibbolethIdP("idp")
        handles = [idp.new_session("alice"), idp.new_session("alice")]
        first, second = self._run_conflict(lambda index: handles[index])
        assert first.granted
        assert second.granted  # the conflict went undetected

    def test_identity_linking_restores_msod(self):
        aliases = LibertyAliasService()
        linker = IdentityLinker()
        ids = [
            aliases.alias_for("alice", "sp-teller"),
            aliases.alias_for("alice", "sp-audit"),
        ]
        for alias in ids:
            linker.link(alias, "alice")
        first, second = self._run_conflict(
            lambda index: linker.resolve(ids[index])
        )
        assert first.granted
        assert second.denied  # linking re-joins the sessions

"""Unit tests for the Gligor et al. operational/history DSoD checkers."""

import pytest

from repro.baselines import HistoryDSoDChecker, OperationalDSoDChecker
from repro.core import ContextName
from repro.workload import (
    AUDIT_BOOKS,
    AUDITOR,
    CLERK,
    CONFIRM,
    HANDLE_CASH,
    PREPARE,
    STEP_ACCESS,
    TELLER,
    ScenarioGenerator,
    Step,
)

OPS = frozenset({PREPARE.operation, CONFIRM.operation})
CTX_A = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=A")
CTX_B = ContextName.parse("TaxOffice=Leeds, taxRefundProcess=B")


def access(user, privilege, context, at=1.0):
    return Step(
        STEP_ACCESS, user, user, "s", "authA", (CLERK,),
        privilege.operation, privilege.target, context, at,
    )


class TestOperationalDSoD:
    def test_rejects_tiny_sets(self):
        with pytest.raises(ValueError):
            OperationalDSoDChecker([frozenset({"only"})])

    def test_blocks_set_completion(self):
        checker = OperationalDSoDChecker([OPS])
        assert not checker.process_step(access("u", PREPARE, CTX_A))[0]
        blocked, reason = checker.process_step(access("u", CONFIRM, CTX_A))
        assert blocked
        assert "operation set" in reason

    def test_object_blind_false_positive(self):
        """Completing the pair across *different* instances is still
        blocked — the formalism has no business contexts."""
        checker = OperationalDSoDChecker([OPS])
        checker.process_step(access("u", PREPARE, CTX_A))
        blocked, _ = checker.process_step(access("u", CONFIRM, CTX_B))
        assert blocked

    def test_different_users_pass(self):
        checker = OperationalDSoDChecker([OPS])
        checker.process_step(access("u", PREPARE, CTX_A))
        assert not checker.process_step(access("v", CONFIRM, CTX_A))[0]

    def test_unrelated_operations_ignored(self):
        checker = OperationalDSoDChecker([OPS])
        assert not checker.process_step(access("u", AUDIT_BOOKS, CTX_A))[0]

    def test_reset(self):
        checker = OperationalDSoDChecker([OPS])
        checker.process_step(access("u", PREPARE, CTX_A))
        checker.reset()
        assert not checker.process_step(access("u", CONFIRM, CTX_A))[0]


class TestHistoryDSoD:
    def test_blocks_completion_on_same_object(self):
        checker = HistoryDSoDChecker([OPS])
        checker.process_step(access("u", PREPARE, CTX_A))
        blocked, reason = checker.process_step(access("u", CONFIRM, CTX_A))
        assert blocked
        assert "on object" in reason

    def test_object_scoped_no_false_positive(self):
        """Unlike the operational variant, different objects are fine."""
        checker = HistoryDSoDChecker([OPS])
        checker.process_step(access("u", PREPARE, CTX_A))
        assert not checker.process_step(access("u", CONFIRM, CTX_B))[0]

    def test_role_conflicts_invisible(self):
        """Example 1's teller/auditor conflict involves two distinct
        operations NOT forming a declared op set: invisible to [9]."""
        checker = HistoryDSoDChecker([OPS])
        bank = ContextName.parse("Branch=York, Period=2006")
        step1 = Step(
            STEP_ACCESS, "u", "u", "s1", "authA", (TELLER,),
            HANDLE_CASH.operation, HANDLE_CASH.target, bank, 1.0,
        )
        step2 = Step(
            STEP_ACCESS, "u", "u", "s2", "authA", (AUDITOR,),
            AUDIT_BOOKS.operation, AUDIT_BOOKS.target, bank, 2.0,
        )
        assert not checker.process_step(step1)[0]
        assert not checker.process_step(step2)[0]

    def test_on_generated_scenarios(self):
        generator = ScenarioGenerator(seed=4)
        checker = HistoryDSoDChecker([OPS])
        assert checker.run_scenario(generator.object_completion()).blocked
        checker.reset()
        assert not checker.run_scenario(
            generator.benign_cross_instance_clerk()
        ).blocked
        operational = OperationalDSoDChecker([OPS])
        assert operational.run_scenario(
            generator.benign_cross_instance_clerk()
        ).blocked  # the documented object-blind false positive

"""Tests for repro.api: the uniform open_pdp/open_server construction."""

import dataclasses

import pytest

from repro.api import LocalPDP, ServerHandle, open_pdp, open_server
from repro.core import (
    MMER,
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
)
from repro.errors import PolicyError
from repro.framework.pdp import PolicyDecisionPoint
from repro.perf import PerfRecorder

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def bank_policy_set():
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                policy_id="bank",
            )
        ]
    )


def make_request(user, role, index=0):
    operation, target = (
        ("handleCash", "till://1") if role is TELLER else ("auditBooks", "l://1")
    )
    return DecisionRequest(
        user_id=user,
        roles=(role,),
        operation=operation,
        target=target,
        context_instance=ContextName.parse("Branch=York, Period=P1"),
        timestamp=float(index),
        request_id=f"req-{user}-{index}",
    )


class TestOpenPDPLocal:
    def test_memory_pdp_decides_and_closes(self):
        with open_pdp(bank_policy_set()) as pdp:
            assert isinstance(pdp, LocalPDP)
            assert isinstance(pdp, PolicyDecisionPoint)
            assert pdp.decide(make_request("alice", TELLER, 0)).granted
            denied = pdp.decide(make_request("alice", AUDITOR, 1))
            assert not denied.granted

    def test_sqlite_pdp(self, tmp_path):
        path = tmp_path / "adi.db"
        with open_pdp(bank_policy_set(), store=f"sqlite:{path}") as pdp:
            assert pdp.decide(make_request("alice", TELLER, 0)).granted
        # The store survives the handle: a second "session" sees history.
        with open_pdp(bank_policy_set(), store=f"sqlite:{path}") as pdp:
            assert not pdp.decide(make_request("alice", AUDITOR, 1)).granted

    def test_policy_file_path(self, tmp_path):
        from repro.xmlpolicy import write_policy_set

        path = tmp_path / "policy.xml"
        path.write_text(write_policy_set(bank_policy_set()), encoding="utf-8")
        with open_pdp(str(path)) as pdp:
            assert pdp.decide(make_request("alice", TELLER)).granted

    def test_caller_provided_store_is_not_closed(self):
        store = InMemoryRetainedADIStore()
        with open_pdp(bank_policy_set(), store=store) as pdp:
            decision = pdp.decide(make_request("alice", TELLER))
        # Still usable after the handle closed: the caller owns it.
        assert store.count() == decision.records_added > 0

    def test_perf_recorder_threads_through(self):
        perf = PerfRecorder()
        with open_pdp(bank_policy_set(), perf=perf) as pdp:
            assert pdp.perf is perf
            pdp.decide(make_request("alice", TELLER))
        assert perf.counter("engine.requests") == 1

    def test_trace_enables_tracer_and_slow_log(self):
        with open_pdp(bank_policy_set(), trace=True, slowlog_capacity=4) as pdp:
            assert pdp.tracer.enabled
            decision = pdp.decide(make_request("alice", TELLER))
            assert decision.trace is not None
            assert len(pdp.slow_log.snapshot()) == 1

    def test_untraced_by_default(self):
        with open_pdp(bank_policy_set()) as pdp:
            assert not pdp.tracer.enabled
            assert pdp.slow_log is None
            assert pdp.decide(make_request("alice", TELLER)).trace is None

    def test_close_is_idempotent(self):
        pdp = open_pdp(bank_policy_set())
        pdp.close()
        pdp.close()

    def test_notify_context_terminated_forwards(self):
        with open_pdp(bank_policy_set()) as pdp:
            decision = pdp.decide(make_request("alice", TELLER))
            purged = pdp.notify_context_terminated(
                ContextName.parse("Branch=York, Period=P1")
            )
            assert purged == decision.records_added > 0
            assert pdp.store.count() == 0


class TestSpecErrors:
    def test_rejects_unknown_store(self):
        with pytest.raises(PolicyError):
            open_pdp(bank_policy_set(), store="redis:foo")

    def test_rejects_missing_sqlite_path(self):
        with pytest.raises(PolicyError):
            open_pdp(bank_policy_set(), store="sqlite:")

    def test_rejects_bad_remote_specs(self):
        for spec in ("remote:", "remote:host", "remote:host:notaport"):
            with pytest.raises(PolicyError):
                open_pdp(store=spec)

    def test_remote_rejects_policy_and_trace(self):
        with pytest.raises(PolicyError):
            open_pdp(bank_policy_set(), store="remote:localhost:1")
        with pytest.raises(PolicyError):
            open_pdp(store="remote:localhost:1", trace=True)

    def test_rejects_non_policy(self):
        with pytest.raises(PolicyError):
            open_pdp(42)

    def test_open_server_rejects_remote_store(self):
        with pytest.raises(PolicyError):
            open_server(bank_policy_set(), store="remote:localhost:1")


class TestOpenServer:
    def test_server_round_trip_with_remote_open_pdp(self):
        with open_server(bank_policy_set(), n_shards=2) as server:
            assert isinstance(server, ServerHandle)
            assert server.port > 0
            spec = f"remote:{server.host}:{server.port}"
            with open_pdp(store=spec) as pdp:
                assert pdp.decide(make_request("alice", TELLER, 0)).granted
                assert not pdp.decide(make_request("alice", AUDITOR, 1)).granted

    def test_client_shortcut_and_engine_access(self):
        with open_server(bank_policy_set()) as server:
            with server.client() as pdp:
                decision = pdp.decide(make_request("bob", TELLER))
            assert server.engine.store.count() == decision.records_added > 0
            assert server.service.n_shards == 4

    def test_close_is_idempotent(self):
        server = open_server(bank_policy_set())
        server.close()
        server.close()

    def test_sqlite_store_closed_with_server(self, tmp_path):
        path = tmp_path / "adi.db"
        with open_server(bank_policy_set(), store=f"sqlite:{path}") as server:
            with server.client() as pdp:
                pdp.decide(make_request("alice", TELLER))
        assert path.exists()


class TestPackageLazyExports:
    def test_root_exports_resolve(self):
        import repro

        assert repro.open_pdp is open_pdp
        assert repro.open_server is open_server
        assert "open_pdp" in dir(repro)

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing


class TestUniformLifecycle:
    """Satellite (b): one lifecycle contract on every PDP implementation."""

    def test_reference_pdp_lifecycle(self):
        from repro.core import MSoDEngine, Privilege
        from repro.framework.pdp import (
            ReferenceRBACMSoDPDP,
            RoleTargetAccessPolicy,
        )

        access = RoleTargetAccessPolicy(
            {TELLER: [Privilege("handleCash", "till://1")]}
        )
        engine = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
        engine_pdp = ReferenceRBACMSoDPDP(access, engine)
        with engine_pdp as pdp:
            assert pdp.perf is not None
            assert pdp.decide(make_request("alice", TELLER)).granted
        engine_pdp.close()  # idempotent

    def test_local_pdp_decision_equality_traced_vs_untraced(self):
        plain = open_pdp(bank_policy_set())
        traced = open_pdp(bank_policy_set(), trace=True)
        try:
            for index, (user, role) in enumerate(
                [("alice", TELLER), ("alice", AUDITOR), ("bob", AUDITOR)]
            ):
                request = make_request(user, role, index)
                expected = plain.decide(request)
                got = traced.decide(request)
                assert got == expected
                assert dataclasses.replace(got, trace=None) == expected
        finally:
            plain.close()
            traced.close()

"""Elastic resharding: ring diffs, the trail follower, migration state,
the rebalance planner and end-to-end online split/drain.

The fault-injection paths (coordinator crash plus source-primary kill
mid-migration) live in ``test_reshard_failover.py``; this module covers
the fault-free machinery.
"""

import json
import os
import threading
import time

import pytest

from repro.audit.trail import (
    EVENT_DECISION,
    AuditTrailManager,
    TrailFollower,
)
from repro.cluster import (
    HashRing,
    LocalCluster,
    Migration,
    RingDiff,
    plan_rebalance,
)
from repro.cluster.client import ClusterPDP
from repro.cluster.reshard import KIND_SPLIT, PHASE_CUTOVER
from repro.core import ContextName, DecisionRequest, Role
from repro.errors import AuditTrailError, ClusterError
from repro.workload import bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")

USERS = [f"elastic-user-{i}" for i in range(24)]


def teller_request(user, serial):
    # The user is embedded in the Period value (the '!' component the
    # bank policy binds), keeping every effective policy context
    # private to its user.
    return DecisionRequest(
        user_id=user,
        roles=(TELLER,),
        operation="handleCash",
        target="till://cash",
        context_instance=ContextName.parse(
            f"Branch={user}, Period={user}-S{serial}"
        ),
        timestamp=float(serial),
    )


# ----------------------------------------------------------------------
class TestRingDiff:
    def test_split_moves_only_onto_the_added_shard(self):
        old = HashRing(["shard-0", "shard-1"])
        diff = old.diff(old.with_shard("shard-2"))
        assert diff.added == ("shard-2",)
        assert diff.removed == ()
        moved = 0
        for user in (f"u{i:04d}" for i in range(2000)):
            move = diff.moved(user)
            if move is not None:
                moved += 1
                assert move[1] == "shard-2"
                assert move[0] in ("shard-0", "shard-1")
        # Consistent hashing: roughly 1/3 of users move, never all.
        assert 0 < moved < 2000

    def test_drain_moves_only_off_the_removed_shard(self):
        old = HashRing(["shard-0", "shard-1", "shard-2"])
        diff = old.diff(old.without_shard("shard-2"))
        assert diff.removed == ("shard-2",)
        for user in (f"u{i:04d}" for i in range(2000)):
            move = diff.moved(user)
            if move is not None:
                assert move[0] == "shard-2"

    def test_mover_predicates_partition_the_moved_set(self):
        old = HashRing(["shard-0", "shard-1"])
        diff = old.diff(old.with_shard("shard-2"))
        users = [f"u{i:04d}" for i in range(1000)]
        for user in users:
            move = diff.moved(user)
            owners = [
                (source, target)
                for source, target in diff.moves()
                if diff.mover_predicate(source, target)(user)
            ]
            if move is None:
                assert owners == []
            else:
                assert owners == [move]

    def test_identical_rings_move_nobody(self):
        ring = HashRing(["a", "b", "c"])
        diff = RingDiff(ring, HashRing(["a", "b", "c"]))
        assert all(
            diff.moved(f"u{i}") is None for i in range(500)
        )

    def test_vnode_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RingDiff(HashRing(["a"], vnodes=8), HashRing(["a"], vnodes=16))


# ----------------------------------------------------------------------
class TestTrailFollower:
    KEY = b"follower-key"

    def _manager(self, tmp_path, max_records=3):
        return AuditTrailManager(
            str(tmp_path / "trails"), self.KEY, max_records=max_records
        )

    def _append(self, manager, n, start=0):
        for i in range(start, start + n):
            manager.append(
                EVENT_DECISION, float(i), {"seq_payload": i}
            )

    def test_sees_every_event_across_rotated_segments(self, tmp_path):
        manager = self._manager(tmp_path)
        self._append(manager, 10)
        follower = TrailFollower(manager.directory, self.KEY)
        polled = list(follower.poll())
        assert [e.payload["seq_payload"] for e in polled] == list(range(10))
        assert [e.event_type for e in polled] == [EVENT_DECISION] * 10
        # Nothing new: an immediate re-poll yields nothing.
        assert list(follower.poll()) == []

    def test_position_resumes_after_json_round_trip(self, tmp_path):
        manager = self._manager(tmp_path)
        self._append(manager, 4)
        follower = TrailFollower(manager.directory, self.KEY)
        assert len(list(follower.poll())) == 4
        # Serialise the position as the coordinator's state file does.
        position = json.loads(json.dumps(follower.position()))
        self._append(manager, 5, start=4)
        resumed = TrailFollower(
            manager.directory, self.KEY, position=position
        )
        tail = list(resumed.poll())
        assert [e.payload["seq_payload"] for e in tail] == [4, 5, 6, 7, 8]

    def test_interleaved_appends_and_polls_lose_nothing(self, tmp_path):
        manager = self._manager(tmp_path, max_records=2)
        follower = TrailFollower(manager.directory, self.KEY)
        seen = []
        for round_no in range(5):
            self._append(manager, 3, start=round_no * 3)
            seen.extend(
                e.payload["seq_payload"] for e in follower.poll()
            )
        assert seen == list(range(15))

    def test_tampered_tail_raises(self, tmp_path):
        manager = self._manager(tmp_path, max_records=100)
        self._append(manager, 6)
        path = manager.trail_paths()[0]
        lines = open(path, "rb").read().splitlines(keepends=True)
        # Flip a payload byte in the middle record; keep valid JSON.
        lines[3] = lines[3].replace(b'"seq_payload": 3', b'"seq_payload": 9')
        with open(path, "wb") as handle:
            handle.writelines(lines)
        follower = TrailFollower(manager.directory, self.KEY)
        with pytest.raises(AuditTrailError):
            list(follower.poll())

    def test_partial_final_line_is_not_an_error(self, tmp_path):
        manager = self._manager(tmp_path, max_records=100)
        self._append(manager, 3)
        path = manager.trail_paths()[0]
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 3, "ts": 3.0, "type": "decis')
        follower = TrailFollower(manager.directory, self.KEY)
        polled = list(follower.poll())
        assert [e.payload["seq_payload"] for e in polled] == [0, 1, 2]
        # A restarted writer re-opens the trail (detecting the torn
        # tail with a warning), truncates it away on its next append,
        # and the follower picks the new record up from its held
        # position — which sits exactly at the last verified record.
        with pytest.warns(UserWarning):
            reopened = self._manager(tmp_path, max_records=100)
        self._append(reopened, 1, start=3)
        assert [
            e.payload["seq_payload"] for e in follower.poll()
        ] == [3]


# ----------------------------------------------------------------------
class TestMigrationState:
    def test_round_trips_through_json(self):
        migration = Migration(
            KIND_SPLIT,
            "shard-2",
            ("shard-0", "shard-1"),
            ("shard-0", "shard-1", "shard-2"),
            64,
            ticks=7,
            users_moved=12,
            events_imported=40,
            trail_dirs={"shard-0": ["/tmp/a", "/tmp/b"]},
            cursors={
                "shard-2@/tmp/a": {
                    "segment": 1,
                    "offset": 2048,
                    "hash": "ab" * 32,
                    "seq": 5,
                }
            },
        )
        clone = Migration.from_dict(
            json.loads(json.dumps(migration.to_dict()))
        )
        assert clone.to_dict() == migration.to_dict()
        assert clone.cursor("shard-2", "/tmp/a")["offset"] == 2048
        assert clone.cursor("shard-2", "/tmp/b") is None

    def test_rejects_unknown_kind_and_phase(self):
        with pytest.raises(ClusterError):
            Migration("shuffle", "s", ("a",), ("a", "b"), 64)
        with pytest.raises(ClusterError):
            Migration(
                KIND_SPLIT, "s", ("a",), ("a", "b"), 64, phase="paused"
            )

    def test_split_sources_are_the_old_shards(self):
        migration = Migration(
            KIND_SPLIT,
            "shard-2",
            ("shard-0", "shard-1"),
            ("shard-0", "shard-1", "shard-2"),
            64,
        )
        assert set(migration.sources()) == {"shard-0", "shard-1"}
        for source, target, predicate in migration.moves():
            assert target == "shard-2"
            assert callable(predicate)


# ----------------------------------------------------------------------
class TestPlanRebalance:
    def test_balanced_cluster_plans_nothing(self):
        plan = plan_rebalance({"shard-0": 100, "shard-1": 104})
        assert plan["action"] == "none"
        assert plan["imbalance"] < 1.5
        assert plan["total_users"] == 204

    def test_hot_shard_plans_a_split(self):
        plan = plan_rebalance({"shard-0": 300, "shard-1": 60})
        assert plan["action"] == "split"
        assert plan["hot_shard"] == "shard-0"
        assert plan["imbalance"] >= 1.5

    def test_threshold_is_respected(self):
        counts = {"shard-0": 300, "shard-1": 60}
        assert plan_rebalance(counts, threshold=10.0)["action"] == "none"

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusterError):
            plan_rebalance({})


# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def elastic_cluster(tmp_path_factory):
    """A 2-shard cluster with the reshard loop live but health/catch-up
    loops slowed so tests control all other state transitions."""
    cluster = LocalCluster(
        bank_policy_set(),
        2,
        str(tmp_path_factory.mktemp("elastic")),
        store="memory",
        health_interval=30.0,
        catchup_interval=30.0,
        fsync=False,
    ).start()
    yield cluster
    cluster.stop()


class TestOnlineResharding:
    def test_split_then_drain_preserves_placement_and_history(
        self, elastic_cluster
    ):
        cluster = elastic_cluster
        with ClusterPDP((cluster.host, cluster.port)) as pdp:
            for serial, user in enumerate(USERS):
                assert pdp.decide(teller_request(user, serial)).granted

            route_before = pdp.route()["version"]

            # ---- 2 -> 3 split.
            added = cluster.add_shard()
            status = cluster.wait_reshard(timeout=60.0)
            split = status["last_migration"]
            assert split["kind"] == "split"
            assert split["phase"] == "done"
            assert added in cluster.shard_names
            assert sorted(status["serving_shards"]) == sorted(
                cluster.shard_names
            )

            ring3 = cluster.ring
            moved = [u for u in USERS if ring3.shard_for(u) == added]
            assert moved, "the split moved nobody; widen USERS"
            for shard_name in cluster.shard_names:
                resident = {
                    r.user_id
                    for r in cluster.shard(shard_name).primary.store.records()
                }
                expected = {
                    u for u in USERS if ring3.shard_for(u) == shard_name
                }
                assert resident == expected

            # Clients re-route: the route version moved past the two
            # cutover bumps and decides still land (movers included).
            assert pdp.refresh_route()["version"] > route_before
            for serial, user in enumerate(moved):
                assert pdp.decide(
                    teller_request(user, 100 + serial)
                ).granted

            # An MMER probe against imported history: the Auditor role
            # in a context the user exercised as Teller must deny on
            # the *new* owner.
            probe_user = moved[0]
            denied = pdp.decide(
                DecisionRequest(
                    user_id=probe_user,
                    roles=(AUDITOR,),
                    operation="auditBooks",
                    target="ledger://books",
                    context_instance=ContextName.parse(
                        f"Branch={probe_user}, Period={probe_user}-S0"
                    ),
                    timestamp=999.0,
                )
            )
            assert not denied.granted

            # ---- 3 -> 2 drain of the shard we just added.
            cluster.drain_shard(added)
            status = cluster.wait_reshard(timeout=60.0)
            drain = status["last_migration"]
            assert drain["kind"] == "drain"
            assert drain["phase"] == "done"
            assert added not in cluster.shard_names
            assert sorted(cluster.shard_names) == ["shard-0", "shard-1"]

            ring2 = cluster.ring
            for shard_name in cluster.shard_names:
                resident = {
                    r.user_id
                    for r in cluster.shard(shard_name).primary.store.records()
                }
                expected = {
                    u for u in USERS if ring2.shard_for(u) == shard_name
                }
                assert resident == expected

            # History survived the round trip: the same MMER probe
            # still denies on the user's original owner.
            denied = pdp.decide(
                DecisionRequest(
                    user_id=probe_user,
                    roles=(AUDITOR,),
                    operation="auditBooks",
                    target="ledger://books",
                    context_instance=ContextName.parse(
                        f"Branch={probe_user}, Period={probe_user}-S0"
                    ),
                    timestamp=1000.0,
                )
            )
            assert not denied.granted

    def test_status_reports_resident_users_and_store_stats(
        self, elastic_cluster
    ):
        with ClusterPDP(
            (elastic_cluster.host, elastic_cluster.port)
        ) as pdp:
            status = pdp.cluster_status()
            reshard = pdp.reshard_status()
        for shard_name, shard in status["shards"].items():
            assert isinstance(shard["resident_users"], int)
            assert shard["resident_users"] >= 0
            assert isinstance(shard["stats"], dict)
            assert "resident_users" in shard["stats"]
        assert reshard["active"] is False
        assert reshard["migrations_total"].get("split") == 1
        assert reshard["migrations_total"].get("drain") == 1
        assert reshard["users_moved_total"] > 0
        stats = elastic_cluster.shard_stats()
        assert set(stats) == set(elastic_cluster.shard_names)

    def test_reshard_metric_families_scrape(self, elastic_cluster):
        with ClusterPDP(
            (elastic_cluster.host, elastic_cluster.port)
        ) as pdp:
            text = pdp.cluster_metrics_text()
        for family in (
            "repro_reshard_migrations_total",
            "repro_reshard_users_moved_total",
            "repro_reshard_cutover_pause_seconds",
            "repro_cluster_shard_resident_users",
        ):
            assert family in text, family

    def test_rebalance_plan_and_guards(self, elastic_cluster):
        plan = elastic_cluster.rebalance(threshold=1.5)
        assert plan["action"] in ("none", "split")
        assert set(plan["resident_users"]) == set(
            elastic_cluster.shard_names
        )
        with pytest.raises(ClusterError):
            elastic_cluster.drain_shard("no-such-shard")

    def test_concurrent_migrations_rejected(self, elastic_cluster):
        added = elastic_cluster.add_shard()
        try:
            with pytest.raises(ClusterError):
                elastic_cluster.add_shard()
            with pytest.raises(ClusterError):
                elastic_cluster.drain_shard("shard-0")
        finally:
            elastic_cluster.wait_reshard(timeout=60.0)
            elastic_cluster.drain_shard(added)
            elastic_cluster.wait_reshard(timeout=60.0)


# ----------------------------------------------------------------------
class TestRestartStableTopology:
    def test_cold_restart_restores_ring_and_route_version(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        cluster = LocalCluster(
            bank_policy_set(),
            2,
            data_dir,
            store="memory",
            health_interval=30.0,
            catchup_interval=30.0,
            fsync=False,
        ).start()
        try:
            with ClusterPDP((cluster.host, cluster.port)) as pdp:
                for serial, user in enumerate(USERS[:8]):
                    pdp.decide(teller_request(user, serial))
            cluster.add_shard()
            cluster.wait_reshard(timeout=60.0)
            shards_before = sorted(cluster.shard_names)
            version_before = cluster.reshard_status()["route_version"]
            totals_before = cluster.reshard_status()["migrations_total"]
        finally:
            cluster.stop()

        assert os.path.exists(
            os.path.join(data_dir, "coordinator-state.json")
        )
        reborn = LocalCluster(
            bank_policy_set(),
            2,  # ignored: the persisted 3-shard topology wins
            data_dir,
            store="memory",
            health_interval=30.0,
            catchup_interval=30.0,
            fsync=False,
        ).start()
        try:
            assert sorted(reborn.shard_names) == shards_before
            status = reborn.reshard_status()
            assert status["route_version"] >= version_before
            assert status["migrations_total"] == totals_before
            assert status["active"] is False
        finally:
            reborn.stop()

    def test_fresh_boot_without_state_uses_requested_shards(self, tmp_path):
        cluster = LocalCluster(
            bank_policy_set(),
            3,
            str(tmp_path / "fresh"),
            store="memory",
            health_interval=30.0,
            catchup_interval=30.0,
            fsync=False,
        ).start()
        try:
            assert sorted(cluster.shard_names) == [
                "shard-0",
                "shard-1",
                "shard-2",
            ]
        finally:
            cluster.stop()

"""Tests for the tax-office (Example 2) simulation."""

import pytest

from repro.simulation import (
    RULE_APPROVER_COMBINES,
    RULE_CLERK_CONFIRMS_OWN,
    RULE_REPEAT_APPROVAL,
    RULES,
    SimulationError,
    TaxOfficeConfig,
    TaxOfficeSimulation,
    run_paired_tax_simulation,
)

SMALL = TaxOfficeConfig(seed=5, n_clerks=3, n_managers=5, n_processes=20)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_clerks": 1},
            {"n_managers": 3},
            {"n_processes": 0},
            {"misbehaviour_rate": 2.0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(SimulationError):
            TaxOfficeConfig(**kwargs)


class TestOutcomes:
    def test_enforced_run_denies_every_attempt(self):
        report = TaxOfficeSimulation(SMALL, enforced=True).run()
        assert report.total_attempted > 0
        assert report.total_breached == 0
        assert report.total_denied == report.total_attempted

    def test_unenforced_run_breaches_every_attempt(self):
        report = TaxOfficeSimulation(SMALL, enforced=False).run()
        assert report.total_breached == report.total_attempted > 0
        assert report.total_denied == 0

    def test_all_processes_complete_despite_denials(self):
        """Denied violations never block the legitimate path."""
        enforced, unenforced = run_paired_tax_simulation(SMALL)
        assert enforced.processes_completed == SMALL.n_processes
        assert unenforced.processes_completed == SMALL.n_processes

    def test_paired_runs_attempt_identical_violations(self):
        enforced, unenforced = run_paired_tax_simulation(SMALL)
        assert enforced.attempted == unenforced.attempted

    def test_every_rule_class_is_exercised(self):
        report = TaxOfficeSimulation(
            TaxOfficeConfig(seed=5, n_processes=60), enforced=True
        ).run()
        for rule in RULES:
            assert report.attempted[rule] > 0, rule

    def test_zero_misbehaviour_means_zero_attempts(self):
        config = TaxOfficeConfig(seed=5, n_processes=10, misbehaviour_rate=0.0)
        report = TaxOfficeSimulation(config, enforced=True).run()
        assert report.total_attempted == 0
        assert report.processes_completed == 10

    def test_determinism(self):
        first = TaxOfficeSimulation(SMALL, enforced=True).run()
        second = TaxOfficeSimulation(SMALL, enforced=True).run()
        assert first.attempted == second.attempted
        assert first.decisions == second.decisions

    def test_rule_constants(self):
        assert set(RULES) == {
            RULE_REPEAT_APPROVAL,
            RULE_APPROVER_COMBINES,
            RULE_CLERK_CONFIRMS_OWN,
        }

    def test_completed_instances_leave_no_history(self):
        simulation = TaxOfficeSimulation(SMALL, enforced=True)
        simulation.run()
        store = simulation.pep.pdp.msod_engine.store
        assert store.count() == 0  # confirmCheck purges each instance

"""Unit tests for the MSoD policy model (Section 3)."""

import pytest

from repro.core.constraints import MMEP, MMER, Privilege, Role
from repro.core.context import ContextName
from repro.core.policy import MSoDPolicy, MSoDPolicySet, Step
from repro.errors import PolicyError

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
APPROVE = Privilege("approve", "http://tax/check")
COMBINE = Privilege("combine", "http://tax/results")


def bank_policy(**kwargs):
    return MSoDPolicy(
        ContextName.parse("Branch=*, Period=!"),
        mmers=[MMER([TELLER, AUDITOR], 2)],
        **kwargs,
    )


class TestStep:
    def test_matches(self):
        step = Step("CommitAudit", "http://audit/a")
        assert step.matches("CommitAudit", "http://audit/a")
        assert not step.matches("CommitAudit", "http://audit/b")
        assert not step.matches("other", "http://audit/a")

    def test_privilege_view(self):
        step = Step("op", "target")
        assert step.privilege == Privilege("op", "target")

    def test_empty_fields_rejected(self):
        with pytest.raises(PolicyError):
            Step("", "t")
        with pytest.raises(PolicyError):
            Step("op", "")


class TestMSoDPolicy:
    def test_needs_some_constraint(self):
        with pytest.raises(PolicyError):
            MSoDPolicy(ContextName.parse("A=1"))

    def test_context_type_checked(self):
        with pytest.raises(PolicyError):
            MSoDPolicy("A=1", mmers=[MMER([TELLER, AUDITOR], 2)])

    def test_default_policy_id(self):
        policy = bank_policy()
        assert "Branch=*, Period=!" in policy.policy_id

    def test_explicit_policy_id(self):
        policy = bank_policy(policy_id="bank")
        assert policy.policy_id == "bank"

    def test_applies_to_matching_instance(self):
        policy = bank_policy()
        assert policy.applies_to(ContextName.parse("Branch=York, Period=2006"))
        assert policy.applies_to(
            ContextName.parse("Branch=York, Period=2006, Till=3")
        )
        assert not policy.applies_to(ContextName.parse("TaxOffice=Leeds"))

    def test_universal_policy_applies_everywhere(self):
        policy = MSoDPolicy(
            ContextName.root(), mmers=[MMER([TELLER, AUDITOR], 2)]
        )
        assert policy.applies_to(ContextName.parse("Anything=at-all"))
        assert policy.applies_to(ContextName.root())

    def test_constrained_roles(self):
        assert bank_policy().constrained_roles() == {TELLER, AUDITOR}

    def test_constrained_privileges(self):
        policy = MSoDPolicy(
            ContextName.parse("A=!"), mmeps=[MMEP([APPROVE, COMBINE], 2)]
        )
        assert policy.constrained_privileges() == {APPROVE, COMBINE}

    def test_mixed_constraints_allowed_in_model(self):
        policy = MSoDPolicy(
            ContextName.parse("A=!"),
            mmers=[MMER([TELLER, AUDITOR], 2)],
            mmeps=[MMEP([APPROVE, COMBINE], 2)],
        )
        assert len(policy.mmers) == 1
        assert len(policy.mmeps) == 1


class TestMSoDPolicySet:
    def test_duplicate_ids_rejected(self):
        policy = bank_policy(policy_id="p")
        with pytest.raises(PolicyError):
            MSoDPolicySet([policy, bank_policy(policy_id="p")])

    def test_matching_selects_all(self):
        universal = MSoDPolicy(
            ContextName.root(),
            mmers=[MMER([TELLER, AUDITOR], 2)],
            policy_id="universal",
        )
        bank = bank_policy(policy_id="bank")
        policy_set = MSoDPolicySet([universal, bank])
        matched = policy_set.matching(
            ContextName.parse("Branch=York, Period=2006")
        )
        assert [policy.policy_id for policy in matched] == ["universal", "bank"]

    def test_matching_none(self):
        policy_set = MSoDPolicySet([bank_policy()])
        assert policy_set.matching(ContextName.parse("Office=Kent")) == ()

    def test_get_by_id(self):
        policy_set = MSoDPolicySet([bank_policy(policy_id="bank")])
        assert policy_set.get("bank").policy_id == "bank"
        with pytest.raises(PolicyError):
            policy_set.get("missing")

    def test_is_relevant(self):
        policy_set = MSoDPolicySet([bank_policy()])
        assert policy_set.is_relevant(ContextName.parse("Branch=X, Period=Y"))
        assert not policy_set.is_relevant(ContextName.parse("Office=Kent"))

    def test_extended(self):
        base = MSoDPolicySet([bank_policy(policy_id="a")])
        bigger = base.extended([bank_policy(policy_id="b")])
        assert len(base) == 1
        assert len(bigger) == 2

    def test_iteration_and_len(self):
        policy_set = MSoDPolicySet([bank_policy()])
        assert len(list(policy_set)) == len(policy_set) == 1

    def test_empty_set_matches_nothing(self):
        policy_set = MSoDPolicySet()
        assert not policy_set.is_relevant(ContextName.parse("A=1"))

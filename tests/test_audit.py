"""Unit tests for the secure audit trail and ADI recovery (Section 5.2)."""

import json

import pytest

from repro.audit import (
    AuditTrailManager,
    EVENT_DECISION,
    SecureAuditTrail,
    decision_event_payload,
    recover_retained_adi,
)
from repro.core import (
    ContextName,
    DecisionRequest,
    InMemoryRetainedADIStore,
    MSoDEngine,
    Role,
    store_digest,
)
from repro.errors import AuditTrailError
from repro.xmlpolicy import bank_policy_set

KEY = b"trail-key"
TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def trail(tmp_path, name="t.log"):
    return SecureAuditTrail(str(tmp_path / name), KEY)


class TestSecureAuditTrail:
    def test_append_and_read(self, tmp_path):
        t = trail(tmp_path)
        t.append("decision", 1.0, {"n": 1})
        t.append("decision", 2.0, {"n": 2})
        events = list(t.verify_and_read())
        assert [e.payload["n"] for e in events] == [1, 2]
        assert [e.seq for e in events] == [0, 1]

    def test_empty_key_rejected(self, tmp_path):
        with pytest.raises(AuditTrailError):
            SecureAuditTrail(str(tmp_path / "x.log"), b"")

    def test_verify_counts(self, tmp_path):
        t = trail(tmp_path)
        for n in range(5):
            t.append("e", float(n), {})
        assert t.verify() == 5

    def test_reopen_continues_chain(self, tmp_path):
        path = str(tmp_path / "t.log")
        first = SecureAuditTrail(path, KEY)
        first.append("e", 1.0, {"n": 1})
        second = SecureAuditTrail(path, KEY)
        second.append("e", 2.0, {"n": 2})
        assert SecureAuditTrail(path, KEY).verify() == 2

    def test_modified_payload_detected(self, tmp_path):
        t = trail(tmp_path)
        t.append("e", 1.0, {"user": "alice"})
        path = t.path
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace("alice", "mallory"))
        with pytest.raises(AuditTrailError, match="hash chain"):
            SecureAuditTrail(path, KEY).verify()

    def test_deleted_record_detected(self, tmp_path):
        t = trail(tmp_path)
        for n in range(3):
            t.append("e", float(n), {"n": n})
        with open(t.path) as handle:
            lines = handle.readlines()
        with open(t.path, "w") as handle:
            handle.writelines(lines[:1] + lines[2:])  # drop the middle
        with pytest.raises(AuditTrailError):
            SecureAuditTrail(t.path, KEY).verify()

    def test_reordered_records_detected(self, tmp_path):
        t = trail(tmp_path)
        t.append("e", 1.0, {"n": 1})
        t.append("e", 2.0, {"n": 2})
        with open(t.path) as handle:
            lines = handle.readlines()
        with open(t.path, "w") as handle:
            handle.writelines(reversed(lines))
        with pytest.raises(AuditTrailError):
            SecureAuditTrail(t.path, KEY).verify()

    def test_forged_reseal_without_key_detected(self, tmp_path):
        """Re-computing the hash chain without the key fails the HMAC."""
        import hashlib

        t = trail(tmp_path)
        t.append("e", 1.0, {"user": "alice"})
        with open(t.path) as handle:
            record = json.loads(handle.read())
        body = {
            "seq": record["seq"],
            "ts": record["ts"],
            "type": record["type"],
            "payload": {"user": "mallory"},
        }
        digest = hashlib.sha256()
        digest.update(("0" * 64).encode())
        digest.update(
            json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
        )
        record.update(body, hash=digest.hexdigest())
        with open(t.path, "w") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        with pytest.raises(AuditTrailError, match="HMAC"):
            SecureAuditTrail(t.path, KEY).verify()

    def test_wrong_key_fails(self, tmp_path):
        t = trail(tmp_path)
        t.append("e", 1.0, {})
        with pytest.raises(AuditTrailError, match="HMAC"):
            SecureAuditTrail(t.path, b"other-key").verify()

    def test_truncation_detected_via_checkpoint(self, tmp_path):
        """Removing the *last* record leaves a valid hash chain; only the
        sealed checkpoint exposes the truncation."""
        t = trail(tmp_path)
        t.append("e", 1.0, {"n": 1})
        t.append("e", 2.0, {"n": 2})
        with open(t.path) as handle:
            lines = handle.readlines()
        with open(t.path, "w") as handle:
            handle.writelines(lines[:1])
        with pytest.raises(AuditTrailError, match="checkpoint"):
            SecureAuditTrail(t.path, KEY).verify()

    def test_missing_checkpoint_detected(self, tmp_path):
        import os

        t = trail(tmp_path)
        t.append("e", 1.0, {"n": 1})
        t.append("e", 2.0, {"n": 2})
        os.remove(t.path + ".chk")
        with pytest.raises(AuditTrailError, match="checkpoint file missing"):
            SecureAuditTrail(t.path, KEY).verify()

    def test_missing_checkpoint_tolerated_for_first_append_crash(
        self, tmp_path
    ):
        # Crash window between the very first record (durable) and the
        # very first checkpoint write: the sealed record is recovered
        # with a warning, not refused.
        import os

        t = trail(tmp_path)
        t.append("e", 1.0, {"n": 1})
        os.remove(t.path + ".chk")
        with pytest.warns(UserWarning, match="no checkpoint yet"):
            assert SecureAuditTrail(t.path, KEY).verify() == 1

    def test_checkpoint_write_is_atomic_rename(self, tmp_path):
        # The sidecar is written to a temp file and os.replace()d into
        # place, so a concurrent reader (or a crash) never observes a
        # partial checkpoint; no temp residue is left behind.
        t = trail(tmp_path)
        for n in range(3):
            t.append("e", float(n), {"n": n})
        import os

        assert not os.path.exists(t.path + ".chk.tmp")
        with open(t.path + ".chk", encoding="utf-8") as handle:
            checkpoint = json.load(handle)
        assert checkpoint["count"] == 3

    def test_live_reader_tolerates_checkpoint_ahead_of_snapshot(
        self, tmp_path
    ):
        # A standby replaying a live primary's trail reads the record
        # lines and the checkpoint non-atomically: the primary may
        # append (and advance the checkpoint) in between, so the
        # checkpoint can record more records than the snapshot holds.
        # Simulate the race by pairing a 2-record trail's checkpoint
        # with a 1-record copy of its data.
        import os
        import shutil

        t = trail(tmp_path)
        t.append("e", 1.0, {"n": 1})
        first_record = open(t.path, "rb").readline()
        t.append("e", 2.0, {"n": 2})
        snap = str(tmp_path / "snap.log")
        with open(snap, "wb") as handle:
            handle.write(first_record)
        shutil.copy(t.path + ".chk", snap + ".chk")

        # A strict reader treats the mismatch as truncation...
        with pytest.raises(AuditTrailError, match="does not match"):
            SecureAuditTrail(snap, KEY).verify()
        # ...a live reader accepts the verified prefix.
        live = SecureAuditTrail(snap, KEY, tolerate_ahead=True)
        assert live.verify() == 1
        assert os.path.exists(snap)

    def test_tolerant_manager_reads_a_racing_trail(self, tmp_path):
        # Same race at the manager level: events() must yield the
        # verified prefix instead of raising mid-catch-up.
        import shutil

        writer = AuditTrailManager(str(tmp_path / "w"), KEY)
        for n in range(4):
            writer.append("e", float(n), {"n": n})
        reader_dir = tmp_path / "r"
        shutil.copytree(tmp_path / "w", reader_dir)
        trail_path = AuditTrailManager(str(reader_dir), KEY).trail_paths()[0]
        with open(trail_path, "rb") as handle:
            lines = handle.readlines()
        with open(trail_path, "wb") as handle:
            handle.writelines(lines[:2])
        tolerant = AuditTrailManager(
            str(reader_dir), KEY, tolerate_ahead=True
        )
        assert [e.payload["n"] for e in tolerant.events()] == [0, 1]
        with pytest.raises(AuditTrailError):
            list(AuditTrailManager(str(reader_dir), KEY).events())

    def test_forged_checkpoint_detected(self, tmp_path):
        t = trail(tmp_path)
        t.append("e", 1.0, {"n": 1})
        t.append("e", 2.0, {"n": 2})
        with open(t.path) as handle:
            lines = handle.readlines()
        with open(t.path, "w") as handle:
            handle.writelines(lines[:1])
        # Attacker rewrites the checkpoint without knowing the key.
        record = json.loads(lines[0])
        with open(t.path + ".chk", "w") as handle:
            json.dump(
                {"count": 1, "last_hash": record["hash"], "tag": "f" * 64},
                handle,
            )
        with pytest.raises(AuditTrailError, match="checkpoint seal"):
            SecureAuditTrail(t.path, KEY).verify()

    def test_corrupt_json_before_tail_detected(self, tmp_path):
        """Junk *before* the final line is corruption, not a torn append."""
        t = trail(tmp_path)
        t.append("e", 1.0, {})
        with open(t.path, "a") as handle:
            handle.write("not json\n")
            handle.write("also not json\n")
        with pytest.raises(AuditTrailError, match="corrupt JSON"):
            SecureAuditTrail(t.path, KEY).verify()

    def test_torn_final_line_skipped_with_warning(self, tmp_path):
        """A crash mid-append leaves a partial final line; replay must
        recover every sealed record before it instead of raising."""
        t = trail(tmp_path)
        t.append("e", 1.0, {"n": 1})
        t.append("e", 2.0, {"n": 2})
        with open(t.path) as handle:
            intact = handle.read()
        # Simulate the crash: a prefix of a third record, no newline.
        with open(t.path, "a") as handle:
            handle.write('{"seq": 2, "ts": 3.0, "type": "e", "pay')
        with pytest.warns(UserWarning, match="torn final line"):
            reopened = SecureAuditTrail(t.path, KEY)
        assert reopened.record_count == 2

        # The next append repairs the tail: the file is a clean chain
        # again and verifies silently.
        reopened.append("e", 4.0, {"n": 3})
        assert SecureAuditTrail(t.path, KEY).verify() == 3
        with open(t.path) as handle:
            assert handle.read().startswith(intact)

    def test_torn_final_line_without_append_leaves_file_untouched(
        self, tmp_path
    ):
        """A read-only replayer (a follower tailing a live primary trail)
        must not truncate someone else's file."""
        t = trail(tmp_path)
        t.append("e", 1.0, {"n": 1})
        with open(t.path, "a") as handle:
            handle.write('{"seq": 1, "ts"')
        with open(t.path, "rb") as handle:
            before = handle.read()
        with pytest.warns(UserWarning, match="torn final line"):
            events = list(SecureAuditTrail(t.path, KEY).verify_and_read())
        assert len(events) == 1
        with open(t.path, "rb") as handle:
            assert handle.read() == before

    def test_record_ahead_of_checkpoint_tolerated(self, tmp_path):
        """Crash between record write and checkpoint rewrite: the sealed
        extra record is accepted with a warning, not rejected."""
        t = trail(tmp_path)
        t.append("e", 1.0, {"n": 1})
        with open(t.path + ".chk") as handle:
            checkpoint_after_first = handle.read()
        t.append("e", 2.0, {"n": 2})
        with open(t.path + ".chk", "w") as handle:
            handle.write(checkpoint_after_first)  # roll the sidecar back
        with pytest.warns(UserWarning, match="one record ahead"):
            assert SecureAuditTrail(t.path, KEY).verify() == 2


class TestAuditTrailManager:
    def test_rotation(self, tmp_path):
        manager = AuditTrailManager(str(tmp_path), KEY, max_records=2)
        for n in range(5):
            manager.append("e", float(n), {"n": n})
        assert len(manager.trail_paths()) == 3

    def test_size_based_rotation(self, tmp_path):
        """max_bytes rotates long before the record-count policy would."""
        manager = AuditTrailManager(
            str(tmp_path), KEY, max_records=10_000, max_bytes=600
        )
        for n in range(6):
            manager.append("e", float(n), {"n": n, "pad": "x" * 120})
        paths = manager.trail_paths()
        assert len(paths) > 1
        # Every rotated (non-active) trail respects the byte bound at
        # rotation time: it was closed at the first append beyond it.
        import os

        for path in paths[:-1]:
            assert os.path.getsize(path) >= 600
        # All events across the rotated trails are intact and ordered.
        payloads = [
            event.payload["n"]
            for event in manager.events()
        ]
        assert payloads == list(range(6))

    def test_size_rotation_survives_reopen(self, tmp_path):
        manager = AuditTrailManager(
            str(tmp_path), KEY, max_records=10_000, max_bytes=400
        )
        for n in range(3):
            manager.append("e", float(n), {"n": n, "pad": "y" * 150})
        count_before = len(manager.trail_paths())
        reopened = AuditTrailManager(
            str(tmp_path), KEY, max_records=10_000, max_bytes=400
        )
        reopened.append("e", 99.0, {"n": 99, "pad": "y" * 150})
        assert len(reopened.trail_paths()) >= count_before
        assert [e.payload["n"] for e in reopened.events()] == [0, 1, 2, 99]

    def test_durable_fsync_append(self, tmp_path):
        """fsync mode round-trips identically to buffered mode."""
        manager = AuditTrailManager(str(tmp_path), KEY, fsync=True)
        manager.append("e", 1.0, {"n": 1})
        manager.append("e", 2.0, {"n": 2})
        assert [e.payload["n"] for e in manager.events()] == [1, 2]

    def test_events_across_trails_in_order(self, tmp_path):
        manager = AuditTrailManager(str(tmp_path), KEY, max_records=2)
        for n in range(5):
            manager.append("e", float(n), {"n": n})
        numbers = [event.payload["n"] for event in manager.events()]
        assert numbers == [0, 1, 2, 3, 4]

    def test_last_n_trails(self, tmp_path):
        manager = AuditTrailManager(str(tmp_path), KEY, max_records=2)
        for n in range(6):
            manager.append("e", float(n), {"n": n})
        numbers = [
            event.payload["n"] for event in manager.events(last_n_trails=1)
        ]
        assert numbers == [4, 5]

    def test_since_filter(self, tmp_path):
        manager = AuditTrailManager(str(tmp_path), KEY, max_records=100)
        for n in range(6):
            manager.append("e", float(n), {"n": n})
        numbers = [event.payload["n"] for event in manager.events(since=3.0)]
        assert numbers == [3, 4, 5]

    def test_reopen_existing_directory(self, tmp_path):
        first = AuditTrailManager(str(tmp_path), KEY, max_records=10)
        first.append("e", 1.0, {"n": 1})
        second = AuditTrailManager(str(tmp_path), KEY, max_records=10)
        second.append("e", 2.0, {"n": 2})
        numbers = [event.payload["n"] for event in second.events()]
        assert numbers == [1, 2]

    def test_bad_max_records(self, tmp_path):
        with pytest.raises(AuditTrailError):
            AuditTrailManager(str(tmp_path), KEY, max_records=0)

    def test_verify_all(self, tmp_path):
        manager = AuditTrailManager(str(tmp_path), KEY, max_records=2)
        for n in range(5):
            manager.append("e", float(n), {"n": n})
        assert manager.verify_all() == 5

    def test_verify_all_detects_tampering_in_any_trail(self, tmp_path):
        manager = AuditTrailManager(str(tmp_path), KEY, max_records=2)
        for n in range(5):
            manager.append("e", float(n), {"n": n})
        victim = manager.trail_paths()[1]
        with open(victim) as handle:
            text = handle.read()
        with open(victim, "w") as handle:
            handle.write(text.replace('"n": 2', '"n": 9'))
        with pytest.raises(AuditTrailError):
            manager.verify_all()


class TestRecovery:
    CTX = ContextName.parse("Branch=York, Period=2006")

    def _engine_with_audit(self, tmp_path):
        manager = AuditTrailManager(str(tmp_path), KEY, max_records=1000)
        engine = MSoDEngine(bank_policy_set(), InMemoryRetainedADIStore())
        return engine, manager

    def _run_and_log(self, engine, manager, user, role, op, at):
        decision = engine.check(
            DecisionRequest(
                user_id=user,
                roles=(role,),
                operation=op,
                target="till://1" if role is TELLER else (
                    "http://audit.location.com/audit"
                ),
                context_instance=self.CTX,
                timestamp=at,
            )
        )
        manager.append(EVENT_DECISION, at, decision_event_payload(decision))
        return decision

    def test_recovery_restores_store_state(self, tmp_path):
        engine, manager = self._engine_with_audit(tmp_path)
        self._run_and_log(engine, manager, "alice", TELLER, "handleCash", 1.0)
        self._run_and_log(engine, manager, "bob", TELLER, "handleCash", 2.0)
        recovered = InMemoryRetainedADIStore()
        report = recover_retained_adi(
            manager, bank_policy_set(), recovered
        )
        assert report.records_replayed == engine.store.count()
        assert store_digest(recovered) == store_digest(engine.store)

    def test_denied_decisions_not_replayed(self, tmp_path):
        engine, manager = self._engine_with_audit(tmp_path)
        self._run_and_log(engine, manager, "alice", TELLER, "handleCash", 1.0)
        denied = self._run_and_log(
            engine, manager, "alice", AUDITOR, "auditBooks", 2.0
        )
        assert denied.denied
        recovered = InMemoryRetainedADIStore()
        recover_retained_adi(manager, bank_policy_set(), recovered)
        assert store_digest(recovered) == store_digest(engine.store)

    def test_purges_replayed(self, tmp_path):
        engine, manager = self._engine_with_audit(tmp_path)
        self._run_and_log(engine, manager, "alice", TELLER, "handleCash", 1.0)
        self._run_and_log(engine, manager, "bob", AUDITOR, "CommitAudit", 2.0)
        assert engine.store.count() == 0
        recovered = InMemoryRetainedADIStore()
        report = recover_retained_adi(manager, bank_policy_set(), recovered)
        assert recovered.count() == 0
        assert report.purges_replayed > 0

    def test_standalone_purge_events_replayed(self, tmp_path):
        """Administrative EVENT_PURGE records replay during recovery."""
        from repro.audit import EVENT_PURGE

        engine, manager = self._engine_with_audit(tmp_path)
        self._run_and_log(engine, manager, "alice", TELLER, "handleCash", 1.0)
        manager.append(
            EVENT_PURGE, 2.0, {"context": "Branch=*, Period=2006"}
        )
        recovered = InMemoryRetainedADIStore()
        report = recover_retained_adi(manager, bank_policy_set(), recovered)
        assert recovered.count() == 0
        assert report.purges_replayed == 1

    def test_irrelevant_contexts_skipped(self, tmp_path):
        """Recovery filters by the *current* policy set."""
        from repro.core import MSoDPolicySet

        engine, manager = self._engine_with_audit(tmp_path)
        self._run_and_log(engine, manager, "alice", TELLER, "handleCash", 1.0)
        recovered = InMemoryRetainedADIStore()
        report = recover_retained_adi(manager, MSoDPolicySet(), recovered)
        assert recovered.count() == 0
        assert report.records_skipped > 0

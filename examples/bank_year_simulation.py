#!/usr/bin/env python3
"""A simulated bank year: counting what MSoD actually prevents.

Simulates several audit periods of a multi-branch bank on the full
PERMIS stack — staff working in thousands of short sessions, tellers
promoted to auditors mid-period, audits committed at each period's end —
then replays the *identical* seeded schedule with MSoD switched off to
count the separation-of-duty failures the mechanism prevented.

Run:  python examples/bank_year_simulation.py
"""

from repro.simulation import SimulationConfig, run_paired_simulation


def main() -> None:
    config = SimulationConfig(
        seed=2007,
        n_staff=40,
        n_branches=3,
        n_periods=6,
        actions_per_staff_period=4,
        promotion_rate=0.15,
    )
    print(
        f"Simulating {config.n_periods} audit periods of a "
        f"{config.n_branches}-branch bank with {config.n_staff} staff\n"
        f"(promotion rate {config.promotion_rate:.0%} per period; "
        "every action is its own access-control session)...\n"
    )
    enforced, unenforced = run_paired_simulation(config)

    print(f"{'':28s}{'MSoD enforced':>16s}{'no MSoD':>12s}")
    print(f"{'decisions':28s}{enforced.decisions:>16,}{unenforced.decisions:>12,}")
    print(f"{'grants':28s}{enforced.grants:>16,}{unenforced.grants:>12,}")
    print(
        f"{'MSoD denials':28s}{enforced.msod_denials:>16,}"
        f"{unenforced.msod_denials:>12,}"
    )
    print(
        f"{'separation failures':28s}{enforced.separation_failures:>16,}"
        f"{unenforced.separation_failures:>12,}"
    )

    print("\nPer period (denials under enforcement vs failures without):")
    for on, off in zip(enforced.periods, unenforced.periods):
        bar = "#" * off.cross_duty_staff
        print(
            f"  P{on.period}: {on.msod_denials:3d} denials | "
            f"{off.cross_duty_staff:2d} failures prevented {bar}"
        )

    print(
        "\nEvery failure in the right column is a person who handled cash"
        "\nand audited the books in the same period — exactly what the"
        "\npaper's Example 1 policy exists to stop.  With MSoD enforced"
        f"\nthe failure count is {enforced.separation_failures}."
    )


if __name__ == "__main__":
    main()

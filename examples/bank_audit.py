#!/usr/bin/env python3
"""Paper Example 1 on the full PERMIS stack (Figure 4).

A bank's SOA issues signed role credentials into an LDAP-like directory;
the PERMIS CVS validates them; the PDP enforces the Section-3 bank MSoD
policy (parsed from its published XML) over a retained ADI; every
decision is logged to a tamper-evident audit trail; and the PDP restarts
mid-story, recovering its history from the trails (Section 5.2).

Run:  python examples/bank_audit.py
"""

import tempfile

from repro.audit import AuditTrailManager
from repro.core import ContextName, Privilege, Role
from repro.permis import (
    LdapDirectory,
    PermisPDP,
    PermisPolicyBuilder,
    PrivilegeAllocator,
    TrustStore,
)
from repro.xmlpolicy import BANK_POLICY_XML, bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
HANDLE_CASH = Privilege("handleCash", "till://main")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://main")
COMMIT_AUDIT = Privilege("CommitAudit", "http://audit.location.com/audit")

ALICE = "cn=alice,o=bank,c=gb"
VICTOR = "cn=victor,o=bank,c=gb"


def show(pdp, who, operation, target, context, at):
    decision = pdp.decision(
        who, operation, target, ContextName.parse(context), at=at
    )
    print(f"  t={at:>5}: {decision}")
    return decision


def main() -> None:
    print("The Section-3 bank MSoD policy, as published:\n")
    print(BANK_POLICY_XML)

    directory = LdapDirectory()
    soa = PrivilegeAllocator("cn=SOA,o=bank,c=gb", b"bank-soa-key", directory)
    trust = TrustStore()
    trust.trust(soa.soa_dn, soa.verification_key)
    policy = (
        PermisPolicyBuilder()
        .allow_assignment(soa.soa_dn, [TELLER, AUDITOR], "o=bank,c=gb")
        .grant(TELLER, [HANDLE_CASH])
        .grant(AUDITOR, [AUDIT_BOOKS, COMMIT_AUDIT])
        .with_msod(bank_policy_set())
        .build()
    )
    trail_dir = tempfile.mkdtemp(prefix="bank-audit-trails-")
    audit = AuditTrailManager(trail_dir, b"trail-key")
    pdp = PermisPDP(policy, trust, directory, audit=audit)

    print("January: the SOA issues Alice a Teller credential (valid until")
    print("her mid-year review); she handles cash in the York branch.")
    soa.issue(ALICE, [TELLER], not_before=0, not_after=250)
    show(pdp, ALICE, "handleCash", "till://main", "Branch=York, Period=2006", 10)

    print("\nJune: Alice is promoted — a new Auditor credential is issued.")
    soa.issue(ALICE, [AUDITOR], not_before=0, not_after=10_000)

    print("\nThe PDP host is rebooted.  At start-up it replays the secure")
    print("audit trails to rebuild its retained ADI (Section 5.2)...")
    pdp = PermisPDP.startup(policy, trust, audit, directory=directory)
    print(f"  recovered retained-ADI records: {pdp.retained_adi.count()}")

    print("\nNovember, annual audit: Alice tries to audit the Leeds branch.")
    print("No single session or authority ever saw a conflict — only the")
    print("multi-session history does:")
    show(pdp, ALICE, "auditBooks", "ledger://main", "Branch=Leeds, Period=2006", 300)

    print("\nVictor (auditor, never a teller this period) audits instead,")
    print("then commits the audit, terminating the Period=2006 context:")
    soa.issue(VICTOR, [AUDITOR], not_before=0, not_after=10_000)
    show(pdp, VICTOR, "auditBooks", "ledger://main", "Branch=York, Period=2006", 310)
    show(pdp, VICTOR, "CommitAudit", "http://audit.location.com/audit",
         "Branch=York, Period=2006", 320)
    print(f"  retained-ADI records now: {pdp.retained_adi.count()}")

    print("\n2007 audit period — a fresh context instance; Alice may audit:")
    show(pdp, ALICE, "auditBooks", "ledger://main", "Branch=York, Period=2007", 400)

    print(f"\nEvery decision above was logged to {trail_dir}")
    print(f"({sum(1 for _ in audit.events())} verified audit events).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: define an MSoD policy and watch it deny a multi-session
conflict that ANSI SSD/DSD cannot see.

Run:  python examples/quickstart.py
"""

from repro import (
    ContextName,
    DecisionRequest,
    MMER,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
)
from repro.api import open_pdp
from repro.core import Step

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")


def main() -> None:
    # Paper Example 1: no one may act as both Teller and Auditor within
    # the same audit period, across all branches of the bank.
    policy = MSoDPolicy(
        business_context=ContextName.parse("Branch=*, Period=!"),
        mmers=[MMER([TELLER, AUDITOR], forbidden_cardinality=2)],
        last_step=Step("CommitAudit", "http://audit.location.com/audit"),
        policy_id="bank-cash-processing",
    )
    pdp = open_pdp(MSoDPolicySet([policy]))

    def ask(user, role, operation, target, context, at):
        decision = pdp.decide(
            DecisionRequest(
                user_id=user,
                roles=(role,),
                operation=operation,
                target=target,
                context_instance=ContextName.parse(context),
                timestamp=at,
            )
        )
        print(f"  t={at:>4}: {decision}")
        return decision

    print("Session 1 — Alice works as a teller in York:")
    ask("alice", TELLER, "handleCash", "till://york/1",
        "Branch=York, Period=2006", 1.0)

    print("\nSession 2, months later — Alice (now an auditor) tries to")
    print("audit the *Leeds* branch in the same period:")
    ask("alice", AUDITOR, "auditBooks", "ledger://leeds",
        "Branch=Leeds, Period=2006", 200.0)

    print("\nSame request in the *next* audit period (a new context instance):")
    ask("alice", AUDITOR, "auditBooks", "ledger://leeds",
        "Branch=Leeds, Period=2007", 400.0)

    print("\nBob commits the 2006 audit — the policy's last step — which")
    print("terminates the context instance and flushes its history:")
    ask("bob", AUDITOR, "CommitAudit", "http://audit.location.com/audit",
        "Branch=York, Period=2006", 500.0)
    remaining_2006 = len(pdp.engine.store.find(
        ContextName.parse("Branch=*, Period=2006").instantiate(
            ContextName.parse("Branch=York, Period=2006")
        )
    ))
    print(f"\n  retained-ADI records left for Period=2006: {remaining_2006}")
    print(f"  total records (Period=2007 is still open): {pdp.engine.store.count()}")


if __name__ == "__main__":
    main()

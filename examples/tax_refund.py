#!/usr/bin/env python3
"""Paper Example 2: the four-task tax-refund process under MMEP.

The workflow engine routes tasks (ordering, multiplicity) while every
separation-of-duty rule is enforced by the PDP alone, from the paper's
own Section-3 XML policy — the PDP never sees the workflow definition,
which is the paper's key difference from Bertino et al. [12].

Run:  python examples/tax_refund.py
"""

from repro.api import open_pdp
from repro.core import (
    ContextName,
    Privilege,
    Role,
)
from repro.framework import (
    PolicyEnforcementPoint,
    ReferenceRBACMSoDPDP,
    RoleTargetAccessPolicy,
    SimulatedClock,
)
from repro.workflow import ProcessInstance, tax_refund_process
from repro.xmlpolicy import TAX_REFUND_POLICY_XML, tax_refund_policy_set

CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")

PREPARE = Privilege("prepareCheck", "http://www.myTaxOffice.com/Check")
APPROVE = Privilege("approve/disapproveCheck", "http://www.myTaxOffice.com/Check")
COMBINE = Privilege("combineResults", "http://secret.location.com/results")
CONFIRM = Privilege("confirmCheck", "http://secret.location.com/audit")


def build_pep() -> PolicyEnforcementPoint:
    access = RoleTargetAccessPolicy(
        {CLERK: [PREPARE, CONFIRM], MANAGER: [APPROVE, COMBINE]}
    )
    pdp = open_pdp(tax_refund_policy_set())
    return PolicyEnforcementPoint(
        ReferenceRBACMSoDPDP(access, pdp.engine), SimulatedClock()
    )


def attempt(instance, task, user, role):
    try:
        decision = instance.attempt(task, user, [role])
    except Exception as exc:  # routing error, not an SoD denial
        print(f"  {task} by {user:<7}: ROUTING ERROR — {exc}")
        return None
    verdict = "GRANT" if decision.granted else "DENY "
    extra = f" — {decision.reason}" if decision.denied else ""
    print(f"  {task} by {user:<7}: {verdict}{extra}")
    return decision


def main() -> None:
    print("The Section-3 tax-refund MSoD policy, as published:\n")
    print(TAX_REFUND_POLICY_XML)

    pep = build_pep()
    process = tax_refund_process()
    print("Process definition:")
    for task in process.tasks:
        deps = f" after {','.join(task.depends_on)}" if task.depends_on else ""
        times = f" x{task.multiplicity}" if task.multiplicity > 1 else ""
        print(f"  {task.task_id}{times}{deps}: {task.description}")

    print("\n--- Refund #42: everyone plays by the rules ------------------")
    instance = ProcessInstance(
        process, "42", ContextName.parse("TaxOffice=Leeds"), pep
    )
    attempt(instance, "T1", "clerk1", CLERK)
    attempt(instance, "T2", "mgr1", MANAGER)
    attempt(instance, "T2", "mgr2", MANAGER)
    attempt(instance, "T3", "mgr3", MANAGER)
    attempt(instance, "T4", "clerk2", CLERK)
    print(f"  complete: {instance.is_complete()}")
    store = pep.pdp.msod_engine.store
    print(f"  history left for instance 42: {len(store.find(instance.context))}"
          " (confirmCheck is the policy's last step)")

    print("\n--- Refund #43: every trick in the book ----------------------")
    instance = ProcessInstance(
        process, "43", ContextName.parse("TaxOffice=Leeds"), pep
    )
    attempt(instance, "T1", "clerk1", CLERK)
    print("  mgr1 approves, then tries to approve the same refund again:")
    attempt(instance, "T2", "mgr1", MANAGER)
    attempt(instance, "T2", "mgr1", MANAGER)
    print("  mgr2 provides the genuine second approval:")
    attempt(instance, "T2", "mgr2", MANAGER)
    print("  mgr1 tries to also collect the decisions (T3):")
    attempt(instance, "T3", "mgr1", MANAGER)
    attempt(instance, "T3", "mgr3", MANAGER)
    print("  clerk1 tries to confirm the check they prepared (T4):")
    attempt(instance, "T4", "clerk1", CLERK)
    attempt(instance, "T4", "clerk2", CLERK)
    print(f"  complete: {instance.is_complete()}")

    print("\n--- Refund #44: same staff, fresh instance — all permitted ---")
    instance = ProcessInstance(
        process, "44", ContextName.parse("TaxOffice=Leeds"), pep
    )
    attempt(instance, "T1", "clerk1", CLERK)
    attempt(instance, "T2", "mgr1", MANAGER)
    print("  (the MSoD policy is scoped per taxRefundProcess instance)")


if __name__ == "__main__":
    main()

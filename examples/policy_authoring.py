#!/usr/bin/env python3
"""The policy author's pipeline: DSL → lint → XML → signed publication.

Walks the full policy-management loop of Figure 4: write the MSoD rules
in the compact authoring DSL, embed them in a PERMIS RBAC policy, run
the static analyzer (which catches a planted mistake), fix it, compile
to the Appendix-A XML, sign and publish to the directory, and bootstrap
a PDP from the published policy.

Run:  python examples/policy_authoring.py
"""

from repro.core import ContextName, Privilege, Role
from repro.permis import (
    LdapDirectory,
    PermisPDP,
    PermisPolicyBuilder,
    SEVERITY_ERROR,
    TrustStore,
    analyze_policy,
    publish_policy,
)
from repro.xmlpolicy import (
    compile_policy_set,
    decompile_policy_set,
    write_policy_set,
)

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
HANDLE_CASH = Privilege("handleCash", "till://main")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://main")
COMMIT_AUDIT = Privilege("CommitAudit", "http://audit.location.com/audit")
SOA_DN = "cn=soa,o=bank,c=gb"

DSL = '''\
# One policy, straight from the paper's Example 1.
policy bank-cash-processing within "Branch=*, Period=!":
    last step CommitAudit on http://audit.location.com/audit
    mutually exclusive roles limit 2:
        employee:Teller, employee:Auditor
'''


def rbac_policy(msod, forget_commit_audit):
    builder = (
        PermisPolicyBuilder()
        .allow_assignment(SOA_DN, [TELLER, AUDITOR], "o=bank,c=gb")
        .grant(TELLER, [HANDLE_CASH])
    )
    if forget_commit_audit:
        builder.grant(AUDITOR, [AUDIT_BOOKS])  # oops: CommitAudit missing
    else:
        builder.grant(AUDITOR, [AUDIT_BOOKS, COMMIT_AUDIT])
    return builder.with_msod(msod).build()


def main() -> None:
    print("Step 1 — the author writes the MSoD rules in the DSL:\n")
    print(DSL)
    msod = compile_policy_set(DSL)
    print(f"compiled: {len(msod)} policy, "
          f"{sum(len(p.mmers) for p in msod)} MMER constraint(s)\n")

    print("Step 2 — a first draft of the enclosing RBAC policy forgets to")
    print("grant anyone the CommitAudit privilege.  The analyzer notices:")
    draft = rbac_policy(msod, forget_commit_audit=True)
    for finding in analyze_policy(draft):
        print(f"    {finding}")
    assert any(
        finding.severity == SEVERITY_ERROR
        for finding in analyze_policy(draft)
    )

    print("\nStep 3 — fixed policy lints clean of errors:")
    final = rbac_policy(msod, forget_commit_audit=False)
    findings = analyze_policy(final)
    errors = [f for f in findings if f.severity == SEVERITY_ERROR]
    print(f"    {len(findings)} finding(s), {len(errors)} error(s)")

    print("\nStep 4 — the MSoD component as Appendix-A XML:\n")
    print(write_policy_set(msod))

    print("\nStep 5 — sign and publish to the directory; a PDP bootstraps")
    print("from the *verified* published policy:")
    directory = LdapDirectory()
    trust = TrustStore()
    trust.trust(SOA_DN, b"soa-key")
    publish_policy(directory, SOA_DN, final, b"soa-key")
    pdp = PermisPDP.from_directory(SOA_DN, trust, directory)
    decision = pdp.decision(
        "cn=alice,o=bank,c=gb",
        "handleCash",
        "till://main",
        ContextName.parse("Branch=York, Period=2006"),
        roles=[TELLER],
        at=1.0,
    )
    print(f"    first decision through the published policy: {decision.effect}")

    print("\nStep 6 — and back again: the XML decompiles to the DSL:\n")
    print(decompile_policy_set(msod))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""PERMIS extras on top of MSoD: conditions and delegation of authority.

Two PERMIS capabilities the MSoD paper inherits from its host
infrastructure: IF-conditions on target-access rules (Section 4.1's
environmental/contextual inputs) and delegation-of-authority chains.
Both compose with MSoD — a delegated teller is still a teller for the
retained ADI.

Run:  python examples/conditions_and_delegation.py
"""

from repro.core import ContextName, Privilege, Role
from repro.permis import (
    AttributeCredential,
    CredentialValidationService,
    EnvEquals,
    LdapDirectory,
    PermisPDP,
    PermisPolicyBuilder,
    PrivilegeAllocator,
    TimeWindow,
    TrustStore,
    sign_credential,
)
from repro.xmlpolicy import bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
HANDLE_CASH = Privilege("handleCash", "till://main")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://main")

SOA_DN = "cn=SOA,o=bank,c=gb"
MANAGER_DN = "cn=manager,o=bank,c=gb"
TEMP_DN = "cn=temp-worker,o=bank,c=gb"
CTX = ContextName.parse("Branch=York, Period=2006")

NINE_AM = 9 * 3600.0
FIVE_PM = 17 * 3600.0
MANAGER_KEY = b"manager-signing-key"


def verdict(decision):
    return f"{decision.effect.upper()}" + (
        f" — {decision.reason}" if decision.denied else ""
    )


def main() -> None:
    directory = LdapDirectory()
    soa = PrivilegeAllocator(SOA_DN, b"soa-key", directory)
    trust = TrustStore()
    trust.trust(soa.soa_dn, soa.verification_key)
    # The branch manager's verification key is published in the
    # directory, standing in for their PKI certificate.
    directory.ensure_entry(MANAGER_DN).add_value(
        CredentialValidationService.SUBJECT_KEY_ATTRIBUTE, MANAGER_KEY
    )

    policy = (
        PermisPolicyBuilder()
        # Tellers may handle cash only during opening hours, and only
        # from a registered till terminal.
        .grant(
            TELLER,
            [HANDLE_CASH],
            condition=TimeWindow(NINE_AM, FIVE_PM)
            & EnvEquals("terminal", "till-3"),
        )
        .grant(AUDITOR, [AUDIT_BOOKS])
        # The SOA may assign both roles and allow one delegation step.
        .allow_assignment(
            SOA_DN, [TELLER, AUDITOR], "o=bank,c=gb", max_delegation_depth=1
        )
        .with_msod(bank_policy_set())
        .build()
    )
    pdp = PermisPDP(policy, trust, directory)

    print("1. The SOA empowers the branch manager (teller + auditor):")
    manager_cred = soa.issue(MANAGER_DN, [TELLER, AUDITOR], 0, 1e9)
    print("   credential issued and published.")

    print("\n2. The manager DELEGATES the teller role to a temp worker")
    print("   (a chain the CVS validates back to the SOA):")
    delegated = sign_credential(
        AttributeCredential(TEMP_DN, MANAGER_DN, (TELLER,), 0, 1e9),
        MANAGER_KEY,
    )
    chain_result = pdp.cvs.validate_delegation_chain(
        TEMP_DN, [manager_cred, delegated], at=NINE_AM
    )
    print(f"   delegated roles: {sorted(map(str, chain_result.valid_roles))}")

    print("\n3. The temp worker handles cash — conditions apply:")
    for label, environment, at in (
        ("during opening hours, till-3", {"terminal": "till-3"}, NINE_AM + 60),
        ("after hours, till-3", {"terminal": "till-3"}, FIVE_PM + 3600),
        ("opening hours, unregistered till", {"terminal": "till-9"}, NINE_AM + 60),
    ):
        decision = pdp.decision(
            TEMP_DN,
            "handleCash",
            "till://main",
            CTX,
            roles=chain_result.valid_roles,
            environment=environment,
            at=at,
        )
        print(f"   {label}: {verdict(decision)}")

    print("\n4. MSoD still sees through delegation: having acted as a")
    print("   (delegated) teller, the temp worker may not audit this period")
    print("   even if someone hands them an auditor credential:")
    soa.issue(TEMP_DN, [AUDITOR], 0, 1e9)
    decision = pdp.decision(
        TEMP_DN, "auditBooks", "ledger://main", CTX, at=NINE_AM + 7200
    )
    print(f"   audit attempt: {verdict(decision)}")

    print("\n5. An over-reaching delegation is rejected by the CVS:")
    escalated = sign_credential(
        AttributeCredential(TEMP_DN, MANAGER_DN, (TELLER, AUDITOR), 0, 1e9),
        MANAGER_KEY,
    )
    tellers_only = soa.issue(MANAGER_DN, [TELLER], 0, 1e9, publish=False)
    result = pdp.cvs.validate_delegation_chain(
        TEMP_DN, [tellers_only, escalated], at=NINE_AM
    )
    print(f"   {result.rejections[0].reason}")


if __name__ == "__main__":
    main()

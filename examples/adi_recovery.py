#!/usr/bin/env python3
"""Retained-ADI persistence: audit-trail replay vs a relational store.

Section 5.2 recovers the in-memory retained ADI by replaying the last n
secure audit trails at PDP start-up; Section 6 flags that replay as the
implementation's scalability limit and proposes a relational database
instead.  This script demonstrates both paths and times them, and shows
the audit trail refusing to verify after tampering.

Run:  python examples/adi_recovery.py
"""

import tempfile
import time

from repro.audit import (
    AuditTrailManager,
    EVENT_DECISION,
    decision_event_payload,
    recover_retained_adi,
)
from repro.api import open_pdp
from repro.core import (
    InMemoryRetainedADIStore,
    SQLiteRetainedADIStore,
    store_digest,
)
from repro.errors import AuditTrailError
from repro.workload import decision_request_stream
from repro.xmlpolicy import bank_policy_set

N_REQUESTS = 2_000
TRAIL_KEY = b"recovery-demo-key"


def main() -> None:
    trail_dir = tempfile.mkdtemp(prefix="adi-recovery-trails-")
    audit = AuditTrailManager(trail_dir, TRAIL_KEY, max_records=500)

    print(f"Phase 1 — a PDP serves {N_REQUESTS} requests, logging every")
    print("decision (and its retained-ADI mutation) to the audit trail...")
    pdp = open_pdp(bank_policy_set())
    engine = pdp.engine
    sqlite_path = tempfile.mktemp(suffix=".db", prefix="retained-adi-")
    sqlite_pdp = open_pdp(bank_policy_set(), store=f"sqlite:{sqlite_path}")
    sqlite_store = sqlite_pdp.engine.store

    grants = denies = 0
    for request in decision_request_stream(N_REQUESTS, seed=42):
        decision = engine.check(request)
        sqlite_pdp.decide(request)  # the Section-6 alternative, in parallel
        audit.append(
            EVENT_DECISION, request.timestamp, decision_event_payload(decision)
        )
        if decision.granted:
            grants += 1
        else:
            denies += 1
    print(f"  {grants} grants, {denies} MSoD denies;"
          f" retained ADI holds {engine.store.count()} records"
          f" across {len(audit.trail_paths())} trail files")

    print("\nPhase 2 — the PDP restarts.  Path A (paper Section 5.2):")
    print("verify and replay the audit trails into memory...")
    recovered = InMemoryRetainedADIStore()
    started = time.perf_counter()
    report = recover_retained_adi(audit, bank_policy_set(), recovered)
    replay_seconds = time.perf_counter() - started
    print(f"  scanned {report.events_scanned} events,"
          f" replayed {report.records_replayed} records"
          f" in {replay_seconds * 1000:.1f} ms")
    assert store_digest(recovered) == store_digest(engine.store)
    print("  recovered state is byte-identical to the pre-crash state ✓")

    print("\nPath B (paper Section 6 proposal): reopen the SQLite store —")
    sqlite_store.close()
    started = time.perf_counter()
    reopened = SQLiteRetainedADIStore(sqlite_path)
    count = reopened.count()
    reopen_seconds = time.perf_counter() - started
    print(f"  {count} records available in {reopen_seconds * 1000:.1f} ms"
          f" (no replay; {replay_seconds / max(reopen_seconds, 1e-9):.0f}x"
          " faster here)")
    assert store_digest(reopened) == store_digest(engine.store)
    reopened.close()

    print("\nPhase 3 — an attacker edits one trail record...")
    victim = audit.trail_paths()[0]
    with open(victim) as handle:
        text = handle.read()
    with open(victim, "w") as handle:
        handle.write(text.replace('"effect": "deny"', '"effect": "gront"', 1))
    try:
        recover_retained_adi(
            audit, bank_policy_set(), InMemoryRetainedADIStore()
        )
        print("  !!! tampering was NOT detected")
    except AuditTrailError as exc:
        print(f"  recovery refused: {exc}")


if __name__ == "__main__":
    main()

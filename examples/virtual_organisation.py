#!/usr/bin/env python3
"""A multi-authority virtual organisation (Sections 1, 2.1 and 6).

Two independent authorities each assign one of a pair of conflicting
roles to the same person.  Each authority's local SSD check passes (it
cannot see the other's assignment), per-session DSD never fires (the
roles are activated in different sessions) — but MSoD catches the
conflict at decision time.  The script then reproduces the Section-6
federation limitation: per-session Shibboleth handles defeat MSoD until
Liberty-style identity linking is configured.

Run:  python examples/virtual_organisation.py
"""

from repro.api import open_pdp
from repro.core import (
    ContextName,
    DecisionRequest,
    Role,
)
from repro.errors import ConstraintViolationError
from repro.permis import (
    CredentialValidationService,
    LdapDirectory,
    PermisPolicyBuilder,
    TrustStore,
)
from repro.rbac import SsdConstraint
from repro.vo import (
    IdentityLinker,
    LibertyAliasService,
    RoleAuthority,
    ShibbolethIdP,
)
from repro.xmlpolicy import bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
ALICE = "cn=alice,o=vo,c=gb"
SSD = SsdConstraint("teller-auditor", ["Teller", "Auditor"], 2)
CTX = ContextName.parse("Branch=York, Period=2006")


def check(pdp, identity, role, operation, target, at):
    decision = pdp.decide(
        DecisionRequest(
            user_id=identity,
            roles=(role,),
            operation=operation,
            target=target,
            context_instance=CTX,
            timestamp=at,
        )
    )
    print(f"    as {identity!r}: {decision.effect.upper()}"
          + (f" — {decision.reason}" if decision.denied else ""))
    return decision


def main() -> None:
    directory = LdapDirectory()
    auth_a = RoleAuthority(
        "authorityA", "cn=soaA,o=vo,c=gb", b"key-a", directory, [SSD]
    )
    auth_b = RoleAuthority(
        "authorityB", "cn=soaB,o=vo,c=gb", b"key-b", directory, [SSD]
    )

    print("Step 1 — authority A assigns Alice the Teller role:")
    auth_a.assign(ALICE, TELLER, 0, 1000)
    print("    issued (local SSD satisfied: A sees only Teller)")

    print("\nStep 2 — authority A refuses to also make her an Auditor:")
    try:
        auth_a.assign(ALICE, AUDITOR, 0, 1000)
    except ConstraintViolationError as exc:
        print(f"    refused: {exc}")

    print("\nStep 3 — but authority B, which knows nothing of A's")
    print("assignments, happily issues the Auditor credential:")
    auth_b.assign(ALICE, AUDITOR, 0, 1000)
    print("    issued (local SSD satisfied: B sees only Auditor)")

    print("\nStep 4 — the resource's CVS validates both credentials:")
    trust = TrustStore()
    trust.trust(auth_a.soa_dn, auth_a.verification_key)
    trust.trust(auth_b.soa_dn, auth_b.verification_key)
    policy = (
        PermisPolicyBuilder()
        .allow_assignment(auth_a.soa_dn, [TELLER, AUDITOR], "o=vo,c=gb")
        .allow_assignment(auth_b.soa_dn, [TELLER, AUDITOR], "o=vo,c=gb")
        .with_msod(bank_policy_set())
        .build()
    )
    cvs = CredentialValidationService(policy, trust, directory)
    result = cvs.validate(ALICE, at=5.0)
    print(f"    valid roles for Alice: {sorted(map(str, result.valid_roles))}")

    print("\nStep 5 — Alice discloses one role per session.  MSoD links her")
    print("sessions by user ID and denies the second conflicting duty:")
    pdp = open_pdp(bank_policy_set())
    check(pdp, ALICE, TELLER, "handleCash", "till://1", 1.0)
    check(pdp, ALICE, AUDITOR, "auditBooks", "ledger://1", 2.0)

    print("\n--- The Section-6 federation limitation ----------------------")
    print("With a Shibboleth IdP issuing a fresh handle per session, the")
    print("PDP cannot join the sessions:")
    pdp = open_pdp(bank_policy_set())
    idp = ShibbolethIdP("vo-idp")
    check(pdp, idp.new_session("alice"), TELLER, "handleCash", "till://1", 1.0)
    check(pdp, idp.new_session("alice"), AUDITOR, "auditBooks", "ledger://1", 2.0)
    print("    → the conflict went UNDETECTED (the paper's stated limit).")

    print("\nWith Liberty pairwise aliases linked to a local identity, the")
    print("PDP keys its retained ADI on the resolved local ID:")
    pdp = open_pdp(bank_policy_set())
    aliases = LibertyAliasService()
    linker = IdentityLinker()
    alias_1 = aliases.alias_for("alice", "sp-cash")
    alias_2 = aliases.alias_for("alice", "sp-audit")
    linker.link(alias_1, "alice@local")
    linker.link(alias_2, "alice@local")
    check(pdp, linker.resolve(alias_1), TELLER, "handleCash", "till://1", 1.0)
    check(pdp, linker.resolve(alias_2), AUDITOR, "auditBooks", "ledger://1", 2.0)
    print("    → identity linking restores MSoD enforcement.")


if __name__ == "__main__":
    main()

"""BENCH_policy_reload — decision latency while policies hot-reload.

Measures per-decision latency on the in-memory engine in two phases
over the same seeded workload:

1. **steady** — no reloads; the memoised hot path at its best.
2. **reloading** — a background thread swaps the active policy set
   every ``--reload-interval`` seconds, alternating between the base
   50-policy set and a superset with one extra policy so every swap is
   a *real* epoch change (digest differs, per-(user, context) memos are
   invalidated), not a digest no-op.

The acceptance bar from the policy-lifecycle work: reload-under-load
p99 must stay within **2x** of steady-state p99 — a reload costs at
most a memo-cold window, never a stall.  The run also checks
correctness: the extra policy covers a context the workload never
touches, so the two phases must produce identical effect sequences,
and every decision must carry a (policy_epoch, policy_digest) pair
that is internally consistent.

Results go to ``benchmarks/results/BENCH_policy_reload.json``::

    PYTHONPATH=src python benchmarks/bench_policy_reload.py           # full
    PYTHONPATH=src python benchmarks/bench_policy_reload.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time

from repro.api import open_pdp
from repro.core import (
    MMER,
    ContextName,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
    policy_set_digest,
)

from bench_hotpath_regression import build_policy_set, request_stream

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "results",
    "BENCH_policy_reload.json",
)


def extended_policy_set() -> MSoDPolicySet:
    """The base set plus one policy over a context the stream never hits."""
    extra = MSoDPolicy(
        ContextName.parse("Region=*, Quarter=!"),
        mmers=[
            MMER(
                [Role("employee", "Teller"), Role("employee", "Auditor")], 2
            )
        ],
        policy_id="regional-reload-target",
    )
    return MSoDPolicySet(list(build_policy_set()) + [extra])


def percentile(sorted_samples: list[float], q: float) -> float:
    if not sorted_samples:
        return 0.0
    index = min(
        len(sorted_samples) - 1, int(q * (len(sorted_samples) - 1) + 0.5)
    )
    return sorted_samples[index]


def timed_run(engine, requests, stop_reloader=None):
    check = engine.check
    clock = time.perf_counter
    latencies = []
    effects = []
    versions = []
    for request in requests:
        started = clock()
        decision = check(request)
        latencies.append(clock() - started)
        effects.append(decision.effect)
        versions.append((decision.policy_epoch, decision.policy_digest))
    if stop_reloader is not None:
        stop_reloader()
    return latencies, effects, versions


def summarize(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "n": len(ordered),
        "p50_us": round(percentile(ordered, 0.50) * 1e6, 1),
        "p99_us": round(percentile(ordered, 0.99) * 1e6, 1),
        "max_us": round(ordered[-1] * 1e6, 1),
        "mean_us": round(sum(ordered) / len(ordered) * 1e6, 1),
    }


def run_benchmark(n_requests: int, n_users: int, reload_interval: float):
    requests = list(request_stream(n_requests, n_users))
    base = build_policy_set()
    extended = extended_policy_set()
    digests = {policy_set_digest(base), policy_set_digest(extended)}

    # Phase 1: steady state.
    steady_pdp = open_pdp(build_policy_set())
    steady_latencies, steady_effects, _ = timed_run(
        steady_pdp.engine, requests
    )
    steady_pdp.close()

    # Phase 2: identical stream with real reloads racing the decisions.
    pdp = open_pdp(build_policy_set())
    engine = pdp.engine
    stop = threading.Event()
    reloads_done = [0]

    def reloader() -> None:
        flip = False
        while not stop.wait(reload_interval):
            engine.swap_policy(extended if not flip else base)
            flip = not flip
            reloads_done[0] += 1

    thread = threading.Thread(target=reloader, daemon=True)
    thread.start()
    reload_latencies, reload_effects, versions = timed_run(
        engine, requests, stop_reloader=stop.set
    )
    thread.join(timeout=10)
    final_epoch = engine.policy_epoch
    pdp.close()

    # Correctness: the extra policy is workload-disjoint, so effects
    # must match the steady phase exactly; every stamped version must
    # be one of the two sets actually installed.
    assert reload_effects == steady_effects, "reload changed decisions"
    assert all(digest in digests for _, digest in versions)
    assert final_epoch == 1 + reloads_done[0]

    steady = summarize(steady_latencies)
    reloading = summarize(reload_latencies)
    ratio = (
        reloading["p99_us"] / steady["p99_us"] if steady["p99_us"] else 0.0
    )
    return {
        "requests": n_requests,
        "users": n_users,
        "reload_interval_s": reload_interval,
        "reloads_completed": reloads_done[0],
        "final_policy_epoch": final_epoch,
        "steady": steady,
        "reloading": reloading,
        "p99_ratio": round(ratio, 2),
        "p99_within_2x": ratio <= 2.0,
        "effects_identical_across_phases": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast run for CI (correctness + JSON shape, not timing)",
    )
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--users", type=int, default=200)
    parser.add_argument(
        "--reload-interval",
        type=float,
        default=0.05,
        help="seconds between background policy swaps",
    )
    parser.add_argument("--output", default=RESULTS_PATH)
    args = parser.parse_args(argv)

    if args.smoke:
        n_requests, n_users, interval = 2_000, 50, 0.02
    else:
        n_requests, n_users, interval = (
            args.requests,
            args.users,
            args.reload_interval,
        )

    report = {
        "benchmark": "policy_reload",
        "smoke": args.smoke,
        "result": run_benchmark(n_requests, n_users, interval),
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
    }

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    result = report["result"]
    print(
        f"policy-reload: {result['requests']} requests, "
        f"{result['reloads_completed']} reloads "
        f"(final epoch {result['final_policy_epoch']})\n"
        f"  steady    p99: {result['steady']['p99_us']:.1f}us\n"
        f"  reloading p99: {result['reloading']['p99_us']:.1f}us "
        f"({result['p99_ratio']:.2f}x, "
        f"{'OK' if result['p99_within_2x'] else 'OVER 2x BUDGET'})\n"
        f"  wrote {args.output}"
    )
    # The 2x p99 budget gates full runs only; --smoke is a correctness
    # run (identical effects, consistent version stamps) on hardware —
    # CI runners — too noisy to gate on timing.
    return 0 if (args.smoke or result["p99_within_2x"]) else 1


if __name__ == "__main__":
    sys.exit(main())

"""M1 — Section 4.3 ablation: retained-ADI growth management strategies.

"Providing the policy contains the last step of a business context, or
it can be implied, then no administrative management of the retained ADI
is needed.  But for cases where a business context has no defined or
implied last step, then a control mechanism is needed to manage the
retained ADI, otherwise it will get too large and performance will be
degraded."

Compares store growth under three strategies over the same workload:
(a) a policy *with* a last step — bounded automatically;
(b) no last step, no management — unbounded growth (the paper's warning);
(c) no last step + periodic retention sweeps through the management
    port — bounded with a sawtooth.
"""

from conftest import emit, format_rows

from repro.api import open_pdp
from repro.core import (
    CONTROLLER_ROLE,
    MMER,
    ContextName,
    DecisionRequest,
    MSoDPolicy,
    MSoDPolicySet,
    RetainedADIManagementPort,
    Role,
)
from repro.core.policy import Step

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
CLOSE = Step("closePeriod", "ledger://close")

N_PERIODS = 40
REQUESTS_PER_PERIOD = 25


def policy_set(with_last_step):
    return MSoDPolicySet(
        [
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER([TELLER, AUDITOR], 2)],
                last_step=CLOSE if with_last_step else None,
                policy_id="bank",
            )
        ]
    )


def run_workload(engine, sweep_every=None, port=None):
    """Serve N_PERIODS periods; return the peak and final store size."""
    peak = 0
    timestamp = 0.0
    for period in range(N_PERIODS):
        context = ContextName.parse(f"Branch=York, Period=P{period}")
        for index in range(REQUESTS_PER_PERIOD):
            timestamp += 1.0
            engine.check(
                DecisionRequest(
                    user_id=f"user-{period}-{index}",
                    roles=(TELLER,),
                    operation="handleCash",
                    target="till://1",
                    context_instance=context,
                    timestamp=timestamp,
                )
            )
        peak = max(peak, engine.store.count())
        if engine.policy_set.policies[0].last_step is not None:
            timestamp += 1.0
            engine.check(
                DecisionRequest(
                    user_id=f"closer-{period}",
                    roles=(AUDITOR,),
                    operation=CLOSE.operation,
                    target=CLOSE.target,
                    context_instance=context,
                    timestamp=timestamp,
                )
            )
        if sweep_every and port is not None and (period + 1) % sweep_every == 0:
            # Purge history older than the last two periods.
            cutoff = timestamp - 2 * (REQUESTS_PER_PERIOD + 1)
            port.purge_older_than([CONTROLLER_ROLE], cutoff)
        peak = max(peak, engine.store.count())
    return peak, engine.store.count()


def test_m1_growth_strategies(benchmark):
    rows = []

    with_last = open_pdp(policy_set(True)).engine
    peak, final = run_workload(with_last)
    rows.append(["last step in policy", peak, final])

    unmanaged = open_pdp(policy_set(False)).engine
    peak, final = run_workload(unmanaged)
    rows.append(["no last step, unmanaged", peak, final])

    swept = open_pdp(policy_set(False)).engine
    port = RetainedADIManagementPort(swept.store)
    peak, final = run_workload(swept, sweep_every=4, port=port)
    rows.append(["no last step + retention sweep (4.3)", peak, final])

    table = format_rows(
        ["strategy", "peak records", "final records"], rows
    )
    emit("M1_adi_management", table)

    # Shapes: the last step bounds growth to one period's records; the
    # unmanaged store retains everything; the sweep keeps a small window.
    last_step_peak = rows[0][1]
    unmanaged_final = rows[1][2]
    swept_final = rows[2][2]
    assert last_step_peak <= 2 * REQUESTS_PER_PERIOD
    assert unmanaged_final >= N_PERIODS * REQUESTS_PER_PERIOD
    assert swept_final < unmanaged_final / 4

    def rerun():
        engine = open_pdp(policy_set(True)).engine
        return run_workload(engine)

    benchmark.pedantic(rerun, rounds=3, iterations=1)


def test_m1_latency_tracks_store_size(benchmark):
    """The performance degradation the paper predicts for an unmanaged
    store shows up as per-user history length grows."""
    import time

    engine = open_pdp(policy_set(False)).engine
    context = ContextName.parse("Branch=York, Period=Pfixed")
    rows = []
    hoarder = "hoarder"
    timestamp = 0.0
    for generation in range(3):
        for _ in range(2_000):
            timestamp += 1.0
            engine.check(
                DecisionRequest(
                    user_id=hoarder,
                    roles=(TELLER,),
                    operation="handleCash",
                    target="till://1",
                    context_instance=context,
                    timestamp=timestamp,
                )
            )
        started = time.perf_counter()
        for _ in range(50):
            timestamp += 1.0
            engine.check(
                DecisionRequest(
                    user_id=hoarder,
                    roles=(TELLER,),
                    operation="handleCash",
                    target="till://1",
                    context_instance=context,
                    timestamp=timestamp,
                )
            )
        per_decision_us = (time.perf_counter() - started) / 50 * 1e6
        rows.append([engine.store.count(), f"{per_decision_us:.0f}"])
    table = format_rows(
        ["records for one user+context", "decision latency (us)"], rows
    )
    emit("M1_unmanaged_latency", table)

    # Monotone degradation (the Section 4.3 motivation).
    latencies = [float(row[1]) for row in rows]
    assert latencies[-1] > latencies[0]

    benchmark(engine.store.count)

"""A1 — Section 4.2 algorithm: engine throughput and mode ablation.

Sweeps the structural parameters of the algorithm — number of policies,
MMER set width, user-history length — and ablates the strict vs literal
step-4 evaluation modes (see DESIGN.md).
"""

import pytest
from conftest import emit, format_rows

from repro.api import open_pdp
from repro.core import (
    MMER,
    MODE_LITERAL,
    MODE_STRICT,
    ContextName,
    DecisionRequest,
    MSoDPolicy,
    MSoDPolicySet,
    Role,
)
from repro.workload import decision_request_stream
from repro.xmlpolicy import bank_policy_set


def wide_policy_set(n_policies, mmer_width=2):
    """n policies all matching the same contexts, each with one MMER."""
    policies = []
    for index in range(n_policies):
        roles = [
            Role("employee", f"R{index}-{position}")
            for position in range(mmer_width)
        ]
        policies.append(
            MSoDPolicy(
                ContextName.parse("Branch=*, Period=!"),
                mmers=[MMER(roles, 2)],
                policy_id=f"wide-{index}",
            )
        )
    return MSoDPolicySet(policies)


def teller_request(index=0):
    return DecisionRequest(
        user_id=f"user-{index % 20}",
        roles=(Role("employee", "R0-0"),),
        operation="work",
        target="desk://1",
        context_instance=ContextName.parse("Branch=B, Period=P"),
        timestamp=float(index),
    )


@pytest.mark.parametrize("n_policies", [1, 10, 50])
def test_a1_throughput_vs_policy_count(benchmark, n_policies):
    engine = open_pdp(wide_policy_set(n_policies)).engine
    counter = [0]

    def decide():
        counter[0] += 1
        return engine.check(teller_request(counter[0]))

    decision = benchmark(decide)
    assert decision.granted


@pytest.mark.parametrize("width", [2, 8, 32])
def test_a1_throughput_vs_mmer_width(benchmark, width):
    engine = open_pdp(wide_policy_set(1, mmer_width=width)).engine
    counter = [0]

    def decide():
        counter[0] += 1
        return engine.check(teller_request(counter[0]))

    decision = benchmark(decide)
    assert decision.granted


@pytest.mark.parametrize("mode", [MODE_STRICT, MODE_LITERAL])
def test_a1_mode_ablation(benchmark, mode):
    """Strict closes the simultaneous-start hole at negligible cost."""
    engine = open_pdp(bank_policy_set(), mode=mode).engine
    requests = list(decision_request_stream(200, seed=21))

    def run_stream():
        engine.store.clear()
        return sum(1 for r in requests if engine.check(r).denied)

    denies = benchmark(run_stream)
    assert denies >= 0


def test_a1_scaling_series(benchmark):
    """The A1 series: throughput vs policy count and MMER width."""
    import time

    rows = []
    for n_policies in (1, 10, 50):
        engine = open_pdp(wide_policy_set(n_policies)).engine
        started = time.perf_counter()
        for index in range(500):
            engine.check(teller_request(index))
        elapsed = time.perf_counter() - started
        rows.append(
            ["policies", n_policies, f"{500 / elapsed:,.0f}"]
        )
    for width in (2, 8, 32):
        engine = open_pdp(wide_policy_set(1, mmer_width=width)).engine
        started = time.perf_counter()
        for index in range(500):
            engine.check(teller_request(index))
        elapsed = time.perf_counter() - started
        rows.append(["MMER width", width, f"{500 / elapsed:,.0f}"])
    table = format_rows(["swept parameter", "value", "decisions/s"], rows)
    emit("A1_algorithm_scaling", table)

    engine = open_pdp(wide_policy_set(1)).engine
    benchmark(engine.check, teller_request(0))

"""SIM1 — organisational-scale counterfactual: what MSoD prevents.

Runs the identical seeded bank year twice — with the Section-3 MSoD
policy enforced and with it switched off — and reports the
counterfactual: every separation failure in the unenforced run
corresponds to denials in the enforced one, and the enforced run has
zero failures.  Also measures end-to-end throughput of the full PERMIS
stack under the simulated load.
"""

from conftest import emit, format_rows

from repro.simulation import (
    BankSimulation,
    ENFORCEMENT_MSOD,
    SimulationConfig,
    run_paired_simulation,
)

CONFIG = SimulationConfig(
    seed=2007,
    n_staff=40,
    n_branches=3,
    n_periods=6,
    actions_per_staff_period=4,
    promotion_rate=0.15,
)


def test_sim1_counterfactual_table(benchmark):
    enforced, unenforced = run_paired_simulation(CONFIG)

    rows = [
        [
            "MSoD enforced",
            enforced.decisions,
            enforced.grants,
            enforced.msod_denials,
            enforced.separation_failures,
        ],
        [
            "no MSoD (counterfactual)",
            unenforced.decisions,
            unenforced.grants,
            unenforced.msod_denials,
            unenforced.separation_failures,
        ],
    ]
    table = format_rows(
        ["run", "decisions", "grants", "MSoD denials", "separation failures"],
        rows,
    )
    emit("SIM1_counterfactual", table)

    per_period = format_rows(
        ["period", "denials (enforced)", "failures (unenforced)"],
        [
            [stats.period, stats.msod_denials, counter.cross_duty_staff]
            for stats, counter in zip(enforced.periods, unenforced.periods)
        ],
    )
    emit("SIM1_per_period", per_period)

    # The paper's purpose, quantified: zero failures under enforcement,
    # a strictly positive failure count without it.
    assert enforced.separation_failures == 0
    assert unenforced.separation_failures > 0
    assert enforced.msod_denials > 0
    assert enforced.decisions == unenforced.decisions

    def run_enforced():
        return BankSimulation(CONFIG, ENFORCEMENT_MSOD).run()

    report = benchmark.pedantic(run_enforced, rounds=2, iterations=1)
    assert report.separation_failures == 0


def test_sim2_tax_office_counterfactual(benchmark):
    """Example 2 at scale: per-rule breaches prevented."""
    from repro.simulation import (
        RULES,
        TaxOfficeConfig,
        run_paired_tax_simulation,
    )

    config = TaxOfficeConfig(
        seed=42, n_clerks=6, n_managers=8, n_processes=80,
        misbehaviour_rate=0.3,
    )
    enforced, unenforced = run_paired_tax_simulation(config)

    rows = [
        [
            rule,
            enforced.attempted[rule],
            enforced.denied[rule],
            unenforced.breached[rule],
        ]
        for rule in RULES
    ]
    table = format_rows(
        ["forbidden move", "attempts", "denied (MSoD)",
         "breaches (no MSoD)"],
        rows,
    )
    emit("SIM2_tax_office", table)

    assert enforced.total_breached == 0
    assert enforced.total_denied == enforced.total_attempted > 0
    assert unenforced.total_breached == unenforced.total_attempted
    assert enforced.processes_completed == config.n_processes
    assert unenforced.processes_completed == config.n_processes

    small = TaxOfficeConfig(seed=1, n_processes=20)

    def run_small_office():
        from repro.simulation import TaxOfficeSimulation

        return TaxOfficeSimulation(small, enforced=True).run()

    report = benchmark.pedantic(run_small_office, rounds=3, iterations=1)
    assert report.total_breached == 0


def test_sim1_throughput_scaling(benchmark):
    """Full-stack decisions/second as the organisation grows."""
    import time

    rows = []
    for n_staff in (20, 40, 80):
        config = SimulationConfig(
            seed=5, n_staff=n_staff, n_branches=3, n_periods=3,
            actions_per_staff_period=3,
        )
        simulation = BankSimulation(config, ENFORCEMENT_MSOD)
        started = time.perf_counter()
        report = simulation.run()
        elapsed = time.perf_counter() - started
        rows.append(
            [n_staff, report.decisions, f"{report.decisions / elapsed:,.0f}"]
        )
    table = format_rows(["staff", "decisions", "decisions/s"], rows)
    emit("SIM1_throughput", table)

    small = SimulationConfig(
        seed=5, n_staff=10, n_branches=2, n_periods=1,
        actions_per_staff_period=2,
    )

    def run_small():
        return BankSimulation(small, ENFORCEMENT_MSOD).run()

    benchmark.pedantic(run_small, rounds=3, iterations=1)

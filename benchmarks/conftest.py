"""Shared helpers for the benchmark harness.

Every bench both *measures* (via pytest-benchmark) and *reproduces* a
paper artefact: the reproduction tables are printed and also written to
``benchmarks/results/<experiment>.txt`` so they survive pytest's output
capture.  EXPERIMENTS.md records the expected shapes.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(experiment: str, text: str) -> None:
    """Print a reproduction table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n=== {experiment} {'=' * max(1, 70 - len(experiment))}\n"
    print(banner + text)
    with open(
        os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(text.rstrip() + "\n")


def format_rows(header: list[str], rows: list[list[str]]) -> str:
    """Render an aligned plain-text table."""
    table = [header] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR

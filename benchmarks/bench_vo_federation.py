"""V1 — the VO / federation scenario (Sections 1, 2.1 and 6).

Reproduces the multi-authority story end to end on the PERMIS stack:
local SSD at each authority passes, partial disclosure defeats DSD, and
MSoD catches the conflict — except behind unlinked per-session handles,
where identity linking is required (Section 6).  Also measures CVS cost
as the number of authorities grows.
"""

import pytest
from conftest import emit, format_rows

from repro.baselines import MSoDChecker
from repro.core import Role
from repro.errors import ConstraintViolationError
from repro.permis import (
    CredentialValidationService,
    LdapDirectory,
    PermisPolicyBuilder,
    TrustStore,
)
from repro.rbac import SsdConstraint
from repro.vo import RoleAuthority
from repro.workload import (
    CROSS_SESSION,
    FEDERATED_LINKED,
    FEDERATED_UNLINKED,
    ScenarioGenerator,
    run_comparison,
)
from repro.xmlpolicy import combined_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
SSD = SsdConstraint("teller-auditor", ["Teller", "Auditor"], 2)
ALICE = "cn=alice,o=vo,c=gb"


def build_vo(n_authorities):
    directory = LdapDirectory()
    trust = TrustStore()
    builder = PermisPolicyBuilder()
    authorities = []
    for index in range(n_authorities):
        authority = RoleAuthority(
            f"auth{index}",
            f"cn=soa{index},o=vo,c=gb",
            f"key-{index}".encode(),
            directory,
            [SSD],
        )
        trust.trust(authority.soa_dn, authority.verification_key)
        builder.allow_assignment(
            authority.soa_dn, [TELLER, AUDITOR], "o=vo,c=gb"
        )
        authorities.append(authority)
    policy = builder.with_msod(combined_policy_set()).build()
    return directory, trust, policy, authorities


def test_v1_federation_story(benchmark):
    """The V1 narrative table: each enforcement point's verdict."""
    directory, trust, policy, authorities = build_vo(2)
    auth_a, auth_b = authorities
    rows = []

    auth_a.assign(ALICE, TELLER, 0, 1000)
    rows.append(["authority A assigns Teller", "issued (local SSD ok)"])
    try:
        auth_a.assign(ALICE, AUDITOR, 0, 1000)
        rows.append(["authority A assigns Auditor", "ISSUED (should not be)"])
    except ConstraintViolationError:
        rows.append(["authority A assigns Auditor", "refused by local SSD"])
    auth_b.assign(ALICE, AUDITOR, 0, 1000)
    rows.append(
        ["authority B assigns Auditor", "issued (cross-authority blind spot)"]
    )

    cvs = CredentialValidationService(policy, trust, directory)
    result = cvs.validate(ALICE, at=5.0)
    rows.append(
        ["CVS validates Alice", f"roles = {sorted(map(str, result.valid_roles))}"]
    )

    generator = ScenarioGenerator(seed=41)
    scenarios = [generator.cross_session() for _ in range(10)]
    (report,) = run_comparison([MSoDChecker(combined_policy_set())], scenarios)
    rows.append(
        [
            "MSoD at the resource PDP",
            f"detects {report.detection_rate(CROSS_SESSION):.0%} of "
            "partial-disclosure conflicts",
        ]
    )
    table = format_rows(["step", "outcome"], rows)
    emit("V1_federation_story", table)
    assert report.detection_rate(CROSS_SESSION) == 1.0

    benchmark(cvs.validate, ALICE, None, 5.0)


def test_v1_identity_linking_matrix(benchmark):
    """Detection with/without identity linking (the Section-6 table)."""
    generator = ScenarioGenerator(seed=42)
    scenarios = []
    for _ in range(15):
        scenarios.append(generator.federated(linked=False))
        scenarios.append(generator.federated(linked=True))
    checkers = [
        MSoDChecker(combined_policy_set(), name="MSoD (no linking)"),
        MSoDChecker(
            combined_policy_set(),
            linker=generator.identity_linker,
            name="MSoD + identity linking",
        ),
    ]
    reports = benchmark.pedantic(
        run_comparison, args=(checkers, scenarios), rounds=3, iterations=1
    )
    rows = [
        [
            report.checker_name,
            f"{report.detection_rate(FEDERATED_UNLINKED):.2f}",
            f"{report.detection_rate(FEDERATED_LINKED):.2f}",
        ]
        for report in reports
    ]
    table = format_rows(
        ["mechanism", "Shibboleth handles (unlinked)", "Liberty aliases (linked)"],
        rows,
    )
    emit("V1_identity_linking", table)

    by_name = {report.checker_name: report for report in reports}
    assert by_name["MSoD (no linking)"].detection_rate(FEDERATED_LINKED) == 0.0
    assert (
        by_name["MSoD + identity linking"].detection_rate(FEDERATED_LINKED)
        == 1.0
    )
    # Unlinked handles defeat both (the paper's stated limitation).
    for report in reports:
        assert report.detection_rate(FEDERATED_UNLINKED) == 0.0


@pytest.mark.parametrize("n_authorities", [1, 4, 16])
def test_v1_cvs_cost_vs_authorities(benchmark, n_authorities):
    """CVS validation cost as trusted authorities multiply."""
    directory, trust, policy, authorities = build_vo(n_authorities)
    for index, authority in enumerate(authorities):
        role = TELLER if index % 2 == 0 else AUDITOR
        authority.assign(ALICE, role, 0, 1000, enforce_local_ssd=False)
    cvs = CredentialValidationService(policy, trust, directory)
    result = benchmark(cvs.validate, ALICE, None, 5.0)
    assert result.valid_roles

"""F4 — Figure 4 / Section 5 (PERMIS CVS/PDP): full-pipeline cost.

Measures each stage of the PERMIS pipeline — credential validation,
RBAC check, MSoD check, audit-trail write — and reproduces the paper's
architectural claim that MSoD needed no API change: the business-context
instance is just one extra decision parameter.
"""

import pytest
from conftest import emit, format_rows

from repro.audit import AuditTrailManager
from repro.core import ContextName, Privilege, Role
from repro.permis import (
    CredentialValidationService,
    LdapDirectory,
    PermisPDP,
    PermisPolicyBuilder,
    PrivilegeAllocator,
    TrustStore,
)
from repro.xmlpolicy import bank_policy_set

TELLER = Role("employee", "Teller")
AUDITOR = Role("employee", "Auditor")
HANDLE_CASH = Privilege("handleCash", "till://main")
AUDIT_BOOKS = Privilege("auditBooks", "ledger://main")
CTX = ContextName.parse("Branch=York, Period=2006")


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    directory = LdapDirectory()
    soa = PrivilegeAllocator("cn=SOA,o=bank,c=gb", b"key", directory)
    trust = TrustStore()
    trust.trust(soa.soa_dn, soa.verification_key)
    policy = (
        PermisPolicyBuilder()
        .allow_assignment(soa.soa_dn, [TELLER, AUDITOR], "o=bank,c=gb")
        .grant(TELLER, [HANDLE_CASH])
        .grant(AUDITOR, [AUDIT_BOOKS])
        .with_msod(bank_policy_set())
        .build()
    )
    for index in range(200):
        soa.issue(f"cn=user{index},o=bank,c=gb", [TELLER], 0, 1e12)
    audit = AuditTrailManager(
        str(tmp_path_factory.mktemp("trails")), b"trail-key", max_records=100_000
    )
    return {
        "directory": directory,
        "trust": trust,
        "policy": policy,
        "audit": audit,
        "soa": soa,
    }


def test_fig4_cvs_validation_cost(benchmark, world):
    cvs = CredentialValidationService(
        world["policy"], world["trust"], world["directory"]
    )
    result = benchmark(cvs.validate, "cn=user7,o=bank,c=gb", None, 5.0)
    assert result.valid_roles == {TELLER}


def test_fig4_pipeline_without_audit(benchmark, world):
    pdp = PermisPDP(world["policy"], world["trust"], world["directory"])
    counter = [0]

    def decide():
        counter[0] += 1
        return pdp.decision(
            f"cn=user{counter[0] % 200},o=bank,c=gb",
            "handleCash",
            "till://main",
            CTX,
            at=float(counter[0]),
        )

    decision = benchmark(decide)
    assert decision.granted


def test_fig4_pipeline_with_audit(benchmark, world):
    pdp = PermisPDP(
        world["policy"], world["trust"], world["directory"], audit=world["audit"]
    )
    counter = [0]

    def decide():
        counter[0] += 1
        return pdp.decision(
            f"cn=user{counter[0] % 200},o=bank,c=gb",
            "handleCash",
            "till://main",
            CTX,
            at=float(counter[0]),
        )

    decision = benchmark(decide)
    assert decision.granted


def test_fig4_stage_breakdown(benchmark, world):
    """Per-stage timing table for one grant decision."""
    import time

    pdp_plain = PermisPDP(world["policy"], world["trust"], world["directory"])
    cvs = pdp_plain.cvs

    def timed(fn, *args, repeat=200):
        started = time.perf_counter()
        for _ in range(repeat):
            fn(*args)
        return (time.perf_counter() - started) / repeat * 1e6

    cvs_us = timed(cvs.validate, "cn=user3,o=bank,c=gb", None, 5.0)
    rbac_us = timed(
        world["policy"].permits, frozenset({TELLER}), HANDLE_CASH
    )
    msod_us = timed(
        lambda: pdp_plain.decision(
            "cn=user3,o=bank,c=gb", "handleCash", "till://main", CTX, at=9.0
        )
    )
    table = format_rows(
        ["stage", "mean latency (us)"],
        [
            ["CVS (pull + validate)", f"{cvs_us:.1f}"],
            ["RBAC target-access check", f"{rbac_us:.1f}"],
            ["full pipeline (CVS+RBAC+MSoD)", f"{msod_us:.1f}"],
        ],
    )
    emit("F4_permis_stage_breakdown", table)

    benchmark(world["policy"].permits, frozenset({TELLER}), HANDLE_CASH)

"""F3 — Figure 3 (ISO framework / retained ADI): latency vs history size.

The retained ADI is the component Figure 3 adds to the classic PEP/PDP
loop.  This bench measures decision latency as the retained history
grows, for both store backends, and confirms the deny path never writes.
"""

import pytest
from conftest import emit, format_rows

from repro.api import open_pdp, open_store
from repro.core import (
    ContextName,
    DecisionRequest,
    store_digest,
)
from repro.workload import AUDITOR, TELLER, decision_request_stream
from repro.xmlpolicy import bank_policy_set

ADI_SIZES = (1_000, 10_000)
SQLITE_SIZES = (1_000, 5_000)

_PROBE_COUNTER = [0]


def engine_with_history(store, n_requests):
    engine = open_pdp(bank_policy_set(), store=store).engine
    for request in decision_request_stream(
        n_requests, n_users=max(50, n_requests // 10), seed=13
    ):
        engine.check(request)
    return engine


def probe(engine, index=None):
    """One decision by a fresh user (so probing itself does not skew the
    per-user history the measurement depends on)."""
    if index is None:
        _PROBE_COUNTER[0] += 1
        index = _PROBE_COUNTER[0]
    return engine.check(
        DecisionRequest(
            user_id=f"probe-user-{index}",
            roles=(TELLER,),
            operation="handleCash",
            target="till://cash",
            context_instance=ContextName.parse("Branch=B0, Period=P0"),
            timestamp=1e9 + index,
        )
    )


@pytest.mark.parametrize("size", ADI_SIZES)
def test_fig3_memory_store_latency(benchmark, size):
    engine = engine_with_history(open_store("memory"), size)
    decision = benchmark(probe, engine)
    assert decision.granted


@pytest.mark.parametrize("size", SQLITE_SIZES)
def test_fig3_sqlite_store_latency(benchmark, size):
    store = open_store("sqlite::memory:")
    engine = engine_with_history(store, size)
    decision = benchmark(probe, engine)
    assert decision.granted
    store.close()


def test_fig3_scaling_series(benchmark):
    """The F3 series: records retained vs requests served, per backend."""
    import time

    rows = []
    for size in (500, 2_000, 8_000):
        for backend, store in (
            ("memory", open_store("memory")),
            ("sqlite", open_store("sqlite::memory:")),
        ):
            started = time.perf_counter()
            engine = engine_with_history(store, size)
            elapsed = time.perf_counter() - started
            rows.append(
                [
                    backend,
                    size,
                    engine.store.count(),
                    f"{size / elapsed:,.0f}",
                ]
            )
            store.close()
    table = format_rows(
        ["backend", "requests served", "records retained", "decisions/s"],
        rows,
    )
    emit("F3_retained_adi_scaling", table)

    engine = engine_with_history(open_store("memory"), 500)
    benchmark(probe, engine)


def test_fig3_deny_never_writes(benchmark):
    """Figure-3 contract: only grants reach the retained ADI."""
    engine = engine_with_history(open_store("memory"), 1_000)
    ctx = ContextName.parse("Branch=B0, Period=P0")
    engine.check(
        DecisionRequest(
            user_id="victim",
            roles=(TELLER,),
            operation="handleCash",
            target="till://cash",
            context_instance=ctx,
            timestamp=5e8,
        )
    )
    digest_before = store_digest(engine.store)
    conflict = DecisionRequest(
        user_id="victim",
        roles=(AUDITOR,),
        operation="auditBooks",
        target="ledger://books",
        context_instance=ctx,
        timestamp=5e8 + 1,
    )

    decision = benchmark(engine.check, conflict)
    assert decision.denied
    assert store_digest(engine.store) == digest_before

"""E1 — Example 1 (bank cash processing): reproduction + performance.

Reproduces the paper's qualitative claim for Example 1: a conventional
SSD policy "will never have been violated" by a teller promoted to
auditor across sessions, and DSD never fires because the roles are never
co-active — while MSoD denies the auditor activation.  Measures the
decision cost of the bank policy on the MSoD engine.
"""

from conftest import emit, format_rows

from repro.baselines import AnsiDsdChecker, AnsiSsdChecker, MSoDChecker
from repro.api import open_pdp
from repro.core import ContextName, DecisionRequest
from repro.rbac import DsdConstraint, SsdConstraint
from repro.workload import (
    AUDITOR,
    BENIGN,
    CROSS_SESSION,
    SAME_SESSION,
    SINGLE_AUTHORITY,
    TELLER,
    ScenarioGenerator,
    decision_request_stream,
    run_comparison,
)
from repro.xmlpolicy import bank_policy_set

SSD = [SsdConstraint("teller-auditor", ["Teller", "Auditor"], 2)]
DSD = [DsdConstraint("teller-auditor", ["Teller", "Auditor"], 2)]


def _bank_scenarios():
    generator = ScenarioGenerator(seed=101)
    scenarios = []
    for _ in range(25):
        scenarios.append(generator.benign_bank())
        scenarios.append(generator.benign_cross_period())
        scenarios.append(generator.same_session())
        scenarios.append(generator.single_authority())
        scenarios.append(generator.cross_session())
    return scenarios


def test_example1_reproduction_table(benchmark):
    """The E1 who-catches-what table, plus comparison throughput."""
    scenarios = _bank_scenarios()
    checkers = [
        MSoDChecker(bank_policy_set()),
        AnsiSsdChecker(SSD),
        AnsiDsdChecker(DSD),
    ]
    reports = benchmark(run_comparison, checkers, scenarios)

    rows = []
    for report in reports:
        rows.append(
            [
                report.checker_name,
                f"{report.detection_rate(SAME_SESSION):.2f}",
                f"{report.detection_rate(SINGLE_AUTHORITY):.2f}",
                f"{report.detection_rate(CROSS_SESSION):.2f}",
                f"{report.detection_rate(BENIGN):.2f}",
            ]
        )
    table = format_rows(
        ["mechanism", "same-session", "single-authority",
         "cross-session (Example 1)", "benign FP"],
        rows,
    )
    emit("E1_bank_detection", table)

    by_name = {report.checker_name: report for report in reports}
    assert by_name["MSoD"].detection_rate(CROSS_SESSION) == 1.0
    assert by_name["ANSI SSD"].detection_rate(CROSS_SESSION) == 0.0
    assert by_name["ANSI DSD"].detection_rate(CROSS_SESSION) == 0.0
    assert by_name["MSoD"].detection_rate(BENIGN) == 0.0


def test_example1_decision_latency(benchmark):
    """Single-decision cost on the bank policy with a warm retained ADI."""
    engine = open_pdp(bank_policy_set()).engine
    for request in decision_request_stream(2_000, seed=7):
        engine.check(request)

    counter = [0]

    def one_decision():
        counter[0] += 1
        return engine.check(
            DecisionRequest(
                user_id=f"probe-{counter[0]}",
                roles=(TELLER,),
                operation="handleCash",
                target="till://cash",
                context_instance=ContextName.parse("Branch=B1, Period=P1"),
                timestamp=float(counter[0]),
            )
        )

    decision = benchmark(one_decision)
    assert decision.granted


def test_example1_deny_path_latency(benchmark):
    """Denials are the cheap path: no store mutation is committed."""
    engine = open_pdp(bank_policy_set()).engine
    ctx = ContextName.parse("Branch=B1, Period=P1")
    engine.check(
        DecisionRequest(
            user_id="alice",
            roles=(TELLER,),
            operation="handleCash",
            target="till://cash",
            context_instance=ctx,
            timestamp=1.0,
        )
    )
    conflict = DecisionRequest(
        user_id="alice",
        roles=(AUDITOR,),
        operation="auditBooks",
        target="ledger://books",
        context_instance=ctx,
        timestamp=2.0,
    )
    decision = benchmark(engine.check, conflict)
    assert decision.denied

"""S1 — the Section-6 scalability limitation: retained-ADI recovery.

"We anticipate that our current implementation will not be scalable,
due to the time taken to initialize the retained ADI from the secure
audit trails.  Thus our next implementation will use a secure relational
database to store the retained ADI instead of in-core memory."

Measures exactly that: audit-trail replay time vs trail length (growing
linearly, which is the paper's concern), against the constant-time
reopen of a SQLite-backed retained ADI.
"""

import time

import pytest
from conftest import emit, format_rows

from repro.audit import (
    AuditTrailManager,
    EVENT_DECISION,
    decision_event_payload,
    recover_retained_adi,
)
from repro.api import open_pdp, open_store
from repro.core import (
    store_digest,
)
from repro.workload import decision_request_stream
from repro.xmlpolicy import bank_policy_set

KEY = b"bench-trail-key"


def populate(tmp_path, n_events, sqlite_path=None):
    """Serve n requests, logging to trails and (optionally) SQLite."""
    audit = AuditTrailManager(str(tmp_path), KEY, max_records=5_000)
    engine = open_pdp(bank_policy_set()).engine
    sqlite_engine = None
    if sqlite_path is not None:
        sqlite_engine = open_pdp(
            bank_policy_set(), store=open_store(f"sqlite:{sqlite_path}")
        ).engine
    for request in decision_request_stream(
        n_events, n_users=max(50, n_events // 20), seed=5
    ):
        decision = engine.check(request)
        if sqlite_engine is not None:
            sqlite_engine.check(request)
        audit.append(
            EVENT_DECISION, request.timestamp, decision_event_payload(decision)
        )
    if sqlite_engine is not None:
        sqlite_engine.store.close()
    return audit, engine


@pytest.mark.parametrize("n_events", [1_000, 4_000])
def test_s1_replay_recovery(benchmark, tmp_path, n_events):
    audit, engine = populate(tmp_path, n_events)

    def recover():
        store = open_store("memory")
        recover_retained_adi(audit, bank_policy_set(), store)
        return store

    recovered = benchmark(recover)
    assert store_digest(recovered) == store_digest(engine.store)


def test_s1_sqlite_reopen(benchmark, tmp_path):
    db_path = str(tmp_path / "adi.db")
    populate(tmp_path / "trails", 4_000, sqlite_path=db_path)

    def reopen():
        store = open_store(f"sqlite:{db_path}")
        count = store.count()
        store.close()
        return count

    count = benchmark(reopen)
    assert count > 0


def test_s1_scalability_table(benchmark, tmp_path):
    """The headline S1 table: replay time grows with the trail, SQLite
    reopen does not."""
    rows = []
    for n_events in (500, 2_000, 8_000):
        trail_dir = tmp_path / f"trails-{n_events}"
        db_path = str(tmp_path / f"adi-{n_events}.db")
        audit, engine = populate(trail_dir, n_events, sqlite_path=db_path)

        started = time.perf_counter()
        store = open_store("memory")
        report = recover_retained_adi(audit, bank_policy_set(), store)
        replay_ms = (time.perf_counter() - started) * 1000

        started = time.perf_counter()
        sqlite_store = open_store(f"sqlite:{db_path}")
        sqlite_count = sqlite_store.count()
        reopen_ms = (time.perf_counter() - started) * 1000
        sqlite_store.close()

        rows.append(
            [
                n_events,
                report.events_scanned,
                store.count(),
                f"{replay_ms:.1f}",
                f"{reopen_ms:.2f}",
            ]
        )
        assert sqlite_count == store.count()
    table = format_rows(
        ["decisions logged", "events replayed", "records recovered",
         "trail replay (ms)", "SQLite reopen (ms)"],
        rows,
    )
    emit("S1_recovery_scalability", table)

    # Shape: replay cost grows ~linearly with the trail; reopen does not.
    replay_times = [float(row[3]) for row in rows]
    reopen_times = [float(row[4]) for row in rows]
    assert replay_times[-1] > replay_times[0] * 4  # 16x data, superlinear floor
    assert reopen_times[-1] < replay_times[-1] / 10

    audit, _ = populate(tmp_path / "probe", 200)
    benchmark(
        recover_retained_adi,
        audit,
        bank_policy_set(),
        open_store("memory"),
    )

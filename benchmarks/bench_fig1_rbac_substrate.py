"""F1 — Figure 1 (ANSI RBAC model): substrate conformance + cost.

Exercises the standard enforcement points the paper builds on — SSD at
assignment, DSD at activation, CheckAccess through a role hierarchy —
and measures their cost as the hierarchy deepens.
"""

from conftest import emit, format_rows

from repro.errors import ConstraintViolationError
from repro.rbac import Permission, RBACSystem


def build_bank(hierarchy_depth=0):
    system = RBACSystem()
    system.add_user("alice")
    for role in ("teller", "auditor"):
        system.add_role(role)
    system.grant_permission("teller", Permission("handleCash", "till"))
    system.grant_permission("auditor", Permission("audit", "ledger"))
    previous = "teller"
    for level in range(hierarchy_depth):
        senior = f"senior-{level}"
        system.add_ascendant(senior, previous)
        previous = senior
    return system, previous


def test_fig1_enforcement_points(benchmark):
    """The Figure-1 conformance table: where SSD and DSD fire."""
    rows = []

    system, _ = build_bank()
    system.create_ssd_set("ssd", ["teller", "auditor"], 2)
    system.assign_user("alice", "teller")
    try:
        system.assign_user("alice", "auditor")
        rows.append(["SSD at assignment", "MISSED"])
    except ConstraintViolationError:
        rows.append(["SSD at assignment (same admin)", "blocked"])

    system, _ = build_bank()
    system.create_dsd_set("dsd", ["teller", "auditor"], 2)
    system.assign_user("alice", "teller")
    system.assign_user("alice", "auditor")
    session = system.create_session("alice", ["teller"])
    try:
        system.add_active_role(session.session_id, "auditor")
        rows.append(["DSD simultaneous activation", "MISSED"])
    except ConstraintViolationError:
        rows.append(["DSD simultaneous activation", "blocked"])

    # The blind spot that motivates MSoD: sequential sessions pass.
    system.delete_session(session.session_id)
    second = system.create_session("alice", ["auditor"])
    rows.append(
        [
            "DSD across sequential sessions",
            "granted (the Example-1 blind spot)"
            if system.session_roles(second.session_id) == {"auditor"}
            else "blocked",
        ]
    )
    table = format_rows(["enforcement point", "outcome"], rows)
    emit("F1_rbac_enforcement_points", table)
    assert rows[0][1] == "blocked"
    assert rows[1][1] == "blocked"
    assert rows[2][1].startswith("granted")

    def assignment_round():
        fresh, _ = build_bank()
        fresh.create_ssd_set("ssd", ["teller", "auditor"], 2)
        fresh.assign_user("alice", "teller")

    benchmark(assignment_round)


def test_fig1_check_access_vs_hierarchy_depth(benchmark):
    """CheckAccess cost with a 32-level role hierarchy."""
    system, top = build_bank(hierarchy_depth=32)
    system.assign_user("alice", top)
    session = system.create_session("alice", [top])

    allowed = benchmark(
        system.check_access, session.session_id, "handleCash", "till"
    )
    assert allowed


def test_fig1_ssd_validation_vs_population(benchmark):
    """Cost of the global SSD re-validation as users grow."""
    system = RBACSystem()
    for role in ("teller", "auditor", "clerk"):
        system.add_role(role)
    for index in range(500):
        user = f"user-{index}"
        system.add_user(user)
        system.assign_user(user, "teller" if index % 2 else "clerk")
    system.create_ssd_set("ssd", ["teller", "auditor"], 2)

    def revalidate():
        system._validate_all_ssd()

    benchmark(revalidate)

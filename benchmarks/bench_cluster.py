"""BENCH_cluster — aggregate throughput scaling of the sharded cluster.

Measures what sharding by ``user_id`` actually buys: N independent
node *processes* (spawned through ``python -m repro cluster node``, the
operational entry point) each own a disjoint slice of the user
population, with the full durable serving stack per node — SQLite
retained-ADI store plus an fsync'd audit trail, exactly the
configuration failover correctness depends on.  Traffic is
distinct-user (`decision_request_stream`), split across shards by the
same :class:`repro.cluster.HashRing` the router uses, and driven
through :class:`repro.cluster.ClusterPDP` with a static route — every
request is a real wire round trip.

Methodology.  Because shards share *nothing* on distinct-user traffic,
cluster capacity is the sum of per-shard capacity, limited by ring
balance (the slowest shard finishes last).  Each node is therefore
benched in isolation on its own slice at full closed-loop concurrency,
and aggregate throughput for an N-node topology is::

    total_requests / max(per-node wall time)

— the wall time of the fleet on one dedicated core per node, which is
the deployment the cluster targets.  Co-locating all N python processes
on this host's core(s) would measure the host, not the architecture;
the co-located concurrent number is *also* recorded (labelled
``colocated_concurrent``) for transparency.  The scaling factor the
acceptance bar reads (≥2.5x from 1 to 4 nodes) comes from the isolated
measurement and is gated by real ring imbalance: a skewed hash ring
would fail it.

A second section times the failover path in-process: kill a primary
mid-traffic and measure kill → first successful post-promotion decide.

Results go to ``benchmarks/results/BENCH_cluster.json``::

    PYTHONPATH=src python benchmarks/bench_cluster.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import re
import subprocess
import sys
import tempfile
import threading
import time

from repro.cluster import ClusterPDP, HashRing, LocalCluster
from repro.workload import bank_policy_set, decision_request_stream
from repro.xmlpolicy import write_policy_set_file

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "BENCH_cluster.json"
)
SRC_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
BANNER = re.compile(
    r"node (?P<name>\S+) serving shard (?P<shard>\S+) on "
    r"(?P<host>\S+):(?P<port>\d+)"
)


class NodeProcess:
    """One ``python -m repro cluster node`` subprocess."""

    def __init__(self, policy_path: str, data_dir: str, index: int) -> None:
        self.shard = f"shard-{index}"
        self.name = f"{self.shard}-a"
        self._proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "cluster",
                "node",
                policy_path,
                "--name",
                self.name,
                "--shard",
                self.shard,
                "--role",
                "primary",
                "--epoch",
                "1",
                "--adi",
                os.path.join(data_dir, f"{self.name}.db"),
                "--audit-dir",
                os.path.join(data_dir, f"{self.name}-trails"),
            ],
            env={**os.environ, "PYTHONPATH": SRC_PATH},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        line = self._proc.stdout.readline()
        match = BANNER.search(line)
        if match is None:
            self._proc.kill()
            raise RuntimeError(f"node {self.name} failed to start: {line!r}")
        self.host = match.group("host")
        self.port = int(match.group("port"))

    def route_entry(self) -> dict:
        return {"address": [self.host, self.port], "epoch": 1}

    def stop(self) -> None:
        self._proc.terminate()
        try:
            self._proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self._proc.kill()
            self._proc.wait()


def drive(
    node: NodeProcess, requests: list, n_clients: int
) -> tuple[int, float]:
    """Closed-loop: K client threads replay one node's slice. → (n, wall)."""
    route = {
        "version": 1,
        "vnodes": 64,
        "shards": {node.shard: node.route_entry()},
    }
    per_client = (len(requests) + n_clients - 1) // n_clients
    errors: list[Exception] = []
    counts = [0] * n_clients
    with ClusterPDP(
        static_route=route, pool_size=n_clients, timeout=60.0
    ) as pdp:

        def client(index: int) -> None:
            lo = index * per_client
            try:
                for request in requests[lo:lo + per_client]:
                    pdp.decide(request)
                    counts[index] += 1
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(n_clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return sum(counts), elapsed


def run_topology(
    n_nodes: int,
    requests: list,
    n_clients: int,
    concurrent: bool = False,
) -> dict:
    """Bench one topology.

    ``concurrent=False`` (the capacity measurement): nodes are booted
    and driven one at a time on their ring slice; aggregate wall time
    is the *slowest* node's — the fleet's wall on dedicated cores.
    ``concurrent=True``: all nodes up at once, one shared client pool,
    co-located on this host.
    """
    ring = HashRing([f"shard-{i}" for i in range(n_nodes)])
    slices: dict[str, list] = {name: [] for name in ring.shard_names}
    for request in requests:
        slices[ring.shard_for(request.user_id)].append(request)

    with tempfile.TemporaryDirectory() as data_dir:
        policy_path = os.path.join(data_dir, "policy.xml")
        write_policy_set_file(bank_policy_set(), policy_path)
        per_node = []
        if concurrent:
            nodes = []
            try:
                for index in range(n_nodes):
                    nodes.append(NodeProcess(policy_path, data_dir, index))
                route = {
                    "version": 1,
                    "vnodes": 64,
                    "shards": {
                        node.shard: node.route_entry() for node in nodes
                    },
                }
                errors: list[Exception] = []
                counts = [0] * n_clients
                per_client = (len(requests) + n_clients - 1) // n_clients
                with ClusterPDP(
                    static_route=route, pool_size=n_clients, timeout=60.0
                ) as pdp:

                    def client(index: int) -> None:
                        lo = index * per_client
                        try:
                            for request in requests[lo:lo + per_client]:
                                pdp.decide(request)
                                counts[index] += 1
                        except Exception as exc:
                            errors.append(exc)

                    threads = [
                        threading.Thread(target=client, args=(index,))
                        for index in range(n_clients)
                    ]
                    started = time.perf_counter()
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    wall = time.perf_counter() - started
                if errors:
                    raise errors[0]
                completed = sum(counts)
            finally:
                for node in nodes:
                    node.stop()
            return {
                "nodes": n_nodes,
                "requests": completed,
                "wall_s": round(wall, 4),
                "throughput_rps": round(completed / wall, 1),
            }

        for index, shard_name in enumerate(ring.shard_names):
            node = NodeProcess(policy_path, data_dir, index)
            try:
                completed, elapsed = drive(
                    node, slices[shard_name], n_clients
                )
            finally:
                node.stop()
            per_node.append(
                {
                    "shard": shard_name,
                    "requests": completed,
                    "wall_s": round(elapsed, 4),
                    "throughput_rps": round(completed / elapsed, 1)
                    if elapsed
                    else 0.0,
                }
            )
    total = sum(entry["requests"] for entry in per_node)
    slowest = max(entry["wall_s"] for entry in per_node)
    return {
        "nodes": n_nodes,
        "requests": total,
        "wall_s": slowest,
        "throughput_rps": round(total / slowest, 1) if slowest else 0.0,
        "per_node": per_node,
        "balance": {
            "largest_slice": max(len(s) for s in slices.values()),
            "smallest_slice": min(len(s) for s in slices.values()),
        },
    }


def run_failover_probe(n_requests: int) -> dict:
    """Kill a primary mid-traffic; time kill → first recovered decide."""
    from repro.workload import hot_user_stream

    requests = list(
        itertools.chain(
            hot_user_stream(n_requests // 2, user_id="hot-user"),
            decision_request_stream(
                n_requests - n_requests // 2, n_users=40
            ),
        )
    )
    half = len(requests) // 2
    with tempfile.TemporaryDirectory() as data_dir:
        cluster = LocalCluster(
            bank_policy_set(),
            2,
            data_dir,
            store="memory",
            health_interval=0.15,
            health_timeout=0.5,
            catchup_interval=0.2,
        ).start()
        try:
            hot_shard = cluster.ring.shard_for("hot-user")
            recovery_s = None
            with ClusterPDP(
                (cluster.host, cluster.port), failover_wait=30.0
            ) as pdp:
                for index, request in enumerate(requests):
                    if index == half:
                        cluster.kill_primary(hot_shard)
                        killed_at = time.perf_counter()
                    pdp.decide(request)
                    if index == half:
                        recovery_s = time.perf_counter() - killed_at
                failovers = pdp.cluster_status()["shards"][hot_shard][
                    "failovers"
                ]
        finally:
            cluster.stop()
    return {
        "requests": len(requests),
        "failovers": failovers,
        "kill_to_recovered_decide_s": round(recovery_s, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-sized run"
    )
    parser.add_argument(
        "--output", default=RESULTS_PATH, help="result JSON path"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sweep, n_requests, n_users, n_clients = [1, 2], 400, 400, 4
        probe_requests = 80
    else:
        sweep, n_requests, n_users, n_clients = [1, 2, 4], 2400, 1200, 8
        probe_requests = 200

    requests = list(
        decision_request_stream(n_requests, n_users=n_users, n_branches=8)
    )
    runs = []
    for n_nodes in sweep:
        run = run_topology(n_nodes, requests, n_clients)
        runs.append(run)
        print(
            f"nodes={run['nodes']} aggregate={run['throughput_rps']} rps "
            f"(slowest shard wall {run['wall_s']}s)"
        )

    base = runs[0]["throughput_rps"]
    peak = runs[-1]["throughput_rps"]
    scaling = round(peak / base, 2) if base else 0.0
    print(f"scaling 1 -> {runs[-1]['nodes']} nodes: {scaling}x")

    colocated = run_topology(
        sweep[-1], requests, n_clients, concurrent=True
    )
    print(
        f"co-located on this host: {colocated['throughput_rps']} rps "
        f"({os.cpu_count()} cpu(s))"
    )

    failover = run_failover_probe(probe_requests)
    print(
        f"failover: {failover['failovers']} promotion(s), kill -> recovered "
        f"decide in {failover['kill_to_recovered_decide_s']}s"
    )

    report = {
        "benchmark": "BENCH_cluster",
        "mode": "smoke" if args.smoke else "full",
        "methodology": (
            "per-node isolated capacity on ring-assigned distinct-user "
            "slices; aggregate = total requests / slowest node wall "
            "(dedicated-core deployment); see module docstring"
        ),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "store": "sqlite",
            "audit_fsync": True,
            "requests": n_requests,
            "distinct_users": n_users,
            "client_threads": n_clients,
        },
        "runs": runs,
        "scaling": {
            "from_nodes": runs[0]["nodes"],
            "to_nodes": runs[-1]["nodes"],
            "factor": scaling,
        },
        "colocated_concurrent": colocated,
        "failover": failover,
    }
    if not args.smoke:
        report["acceptance"] = {
            "target_min_scaling_1_to_4": 2.5,
            "pass": scaling >= 2.5,
        }

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

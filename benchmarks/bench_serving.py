"""BENCH_serving — closed-loop load benchmark of the authorization server.

Boots the full serving stack in-process (asyncio TCP server on a
background thread, SQLite retained-ADI store, sharded micro-batching
workers) and drives it with K closed-loop client threads through
:class:`repro.client.RemotePDP` — every request is a real wire round
trip through encode/decode, shard queueing and batch commit.

Measured per shard count: sustained throughput (decisions/s) and the
client-observed latency distribution (p50/p95/p99).  A separate
*overload probe* runs a deliberately slow engine behind a tiny bounded
queue and verifies that excess load is shed with fast typed rejections
— bounded memory, never an unbounded backlog.

Results are written as machine-readable JSON to
``benchmarks/results/BENCH_serving.json``.  Run it directly::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke  # CI

The workload (policy set + request stream) is shared with
``bench_hotpath_regression`` so engine-level and serving-level numbers
are comparable: the gap between them is the cost of the wire.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time

from bench_hotpath_regression import build_policy_set, request_stream

from repro.api import open_pdp, open_server
from repro.client import PDPOverloadedError, RemotePDP
from repro.core import MSoDEngine, SQLiteRetainedADIStore
from repro.perf import PerfRecorder
from repro.server import AuthorizationService, ServerThread

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "BENCH_serving.json"
)


def percentile(sorted_values: list[float], q: float) -> float:
    """Exact (nearest-rank) percentile of an already sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[rank]


# ---------------------------------------------------------------------------
# Throughput / latency sweep
# ---------------------------------------------------------------------------
def run_load(
    n_shards: int, n_clients: int, n_requests: int, n_users: int
) -> dict:
    """One closed-loop run: K clients replay disjoint slices of the stream."""
    requests = list(request_stream(n_requests, n_users))
    per_client = len(requests) // n_clients

    perf = PerfRecorder()
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    errors: list[Exception] = []

    with open_server(
        build_policy_set(),
        store="sqlite::memory:",
        n_shards=n_shards,
        perf=perf,
    ) as server:
        service = server.service
        with server.client(pool_size=n_clients, timeout=30.0) as pdp:

            def client(index: int) -> None:
                lo = index * per_client
                own = latencies[index]
                try:
                    for request in requests[lo:lo + per_client]:
                        started = time.perf_counter()
                        pdp.decide(request)
                        own.append(time.perf_counter() - started)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(n_clients)
            ]
            wall_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - wall_started
        metrics = service.metrics()
    if errors:
        raise errors[0]

    flat = sorted(lat for client_lat in latencies for lat in client_lat)
    completed = len(flat)
    batches = perf.counter("server.batches")
    return {
        "shards": n_shards,
        "clients": n_clients,
        "requests": completed,
        "elapsed_s": round(elapsed, 4),
        "throughput_rps": round(completed / elapsed, 1),
        "latency_s": {
            "mean": round(sum(flat) / completed, 6) if completed else 0.0,
            "p50": round(percentile(flat, 0.50), 6),
            "p95": round(percentile(flat, 0.95), 6),
            "p99": round(percentile(flat, 0.99), 6),
            "max": round(flat[-1], 6) if flat else 0.0,
        },
        "batches": batches,
        "mean_batch": round(completed / batches, 2) if batches else 0.0,
        "rejected": sum(shard["rejected"] for shard in metrics["shards"]),
    }


# ---------------------------------------------------------------------------
# Overload probe: bounded queues must shed, not balloon
# ---------------------------------------------------------------------------
class _SlowEngine:
    """Wraps a real engine, pinning service time so queues fill for sure."""

    def __init__(self, engine: MSoDEngine, delay_s: float) -> None:
        self._engine = engine
        self._delay_s = delay_s
        self.store = engine.store

    def check(self, request):
        time.sleep(self._delay_s)
        return self._engine.check(request)


def run_overload_probe(n_clients: int = 8, n_requests: int = 120) -> dict:
    """Hammer one slow single-shard worker behind a depth-2 queue.

    Load far exceeds capacity, so most submissions must be rejected
    fast (the typed overload error with a retry hint) while the queue
    itself never exceeds its bound — the memory-safety property the
    admission control exists for.
    """
    requests = list(request_stream(n_requests, n_users=16))
    per_client = len(requests) // n_clients
    store = SQLiteRetainedADIStore(":memory:")
    engine = _SlowEngine(
        open_pdp(build_policy_set(), store=store).engine, delay_s=0.005
    )
    service = AuthorizationService(
        engine, n_shards=1, queue_depth=2, batch_max=2, retry_after=0.01
    )
    accepted = [0] * n_clients
    rejected = [0] * n_clients
    max_backlog = [0]
    errors: list[Exception] = []

    with ServerThread(service) as server:
        with RemotePDP(
            server.host,
            server.port,
            pool_size=n_clients,
            timeout=30.0,
            max_retries=0,  # count raw rejections; no client-side retry
        ) as pdp:

            def client(index: int) -> None:
                lo = index * per_client
                try:
                    for request in requests[lo:lo + per_client]:
                        try:
                            pdp.decide(request)
                            accepted[index] += 1
                        except PDPOverloadedError:
                            rejected[index] += 1
                        backlog = max(service.queue_depths(), default=0)
                        if backlog > max_backlog[0]:
                            max_backlog[0] = backlog
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            health = pdp.healthz()
    store.close()
    if errors:
        raise errors[0]

    total_accepted = sum(accepted)
    total_rejected = sum(rejected)
    assert total_rejected > 0, "probe failed to provoke any shedding"
    assert max_backlog[0] <= 2, f"queue exceeded its bound: {max_backlog[0]}"
    assert health["status"] == "ok", "server unhealthy after overload"
    return {
        "clients": n_clients,
        "offered": total_accepted + total_rejected,
        "accepted": total_accepted,
        "rejected": total_rejected,
        "queue_depth_limit": 2,
        "max_observed_backlog": max_backlog[0],
        "healthy_after": True,
    }


# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast run for CI (correctness + JSON shape, not timing)",
    )
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--users", type=int, default=200)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--output", default=RESULTS_PATH)
    args = parser.parse_args(argv)

    if args.smoke:
        n_requests, n_users, n_clients = 2_000, 50, 4
        shard_counts = [2]
    else:
        n_requests, n_users, n_clients = args.requests, args.users, args.clients
        shard_counts = [1, 2, 4]

    sweep = [
        run_load(n_shards, n_clients, n_requests, n_users)
        for n_shards in shard_counts
    ]
    probe = run_overload_probe()

    best = max(point["throughput_rps"] for point in sweep)
    report = {
        "benchmark": "serving",
        "smoke": args.smoke,
        "sweep": sweep,
        "best_throughput_rps": best,
        "meets_1k_rps_target": best >= 1_000.0,
        "overload_probe": probe,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
    }

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    for point in sweep:
        latency = point["latency_s"]
        print(
            f"serving[shards={point['shards']}]: "
            f"{point['requests']} decisions in {point['elapsed_s']:.2f}s "
            f"({point['throughput_rps']:.0f} rps)  "
            f"p50={latency['p50'] * 1e3:.2f}ms "
            f"p99={latency['p99'] * 1e3:.2f}ms  "
            f"mean batch={point['mean_batch']}"
        )
    print(
        f"overload probe: {probe['rejected']}/{probe['offered']} shed, "
        f"max backlog {probe['max_observed_backlog']} "
        f"(bound {probe['queue_depth_limit']}), healthy after"
    )
    print(f"  wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

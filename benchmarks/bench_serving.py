"""BENCH_serving — closed-loop load benchmark of the authorization server.

Boots the full serving stack in-process (asyncio TCP server on a
background thread, SQLite retained-ADI store, sharded micro-batching
workers) and drives it over *both wire protocols*: JSON-lines v1
through K pooled closed-loop client threads, and binary batched v2
through the pipelined clients (sync threads sharing one multiplexed
connection, and the asyncio client with hundreds of in-flight
decides).  Every request is a real wire round trip through
encode/decode, shard queueing and batch commit.

Measured per (protocol, shard count): sustained throughput
(decisions/s), the client-observed latency distribution (p50/p95/p99),
and the *wire gap* — the ratio of a same-run in-process reference
(`engine.check` in a bare loop, same workload, same store kind) to the
served throughput.  The gap is the honest cost of the wire measured on
whatever machine runs the bench; absolute rps numbers move with the
host, the ratio is comparable across hosts.

Two correctness gates ride along (both run in ``--smoke``, so CI
fails on regressions without ever gating on timing):

* a *differential gate*: one request stream replayed sequentially
  through the in-process engine, the v1 wire and the v2 batched wire
  must produce identical decision effects and identical retained-ADI
  store fingerprints;
* an *overload probe*: a deliberately slow engine behind a tiny
  bounded queue must shed excess load with fast typed rejections —
  bounded memory, never an unbounded backlog.

Results are written as machine-readable JSON to
``benchmarks/results/BENCH_serving.json``.  Run it directly::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke  # CI

The workload (policy set + request stream) is shared with
``bench_hotpath_regression`` so engine-level and serving-level numbers
are comparable.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import threading
import time

from bench_hotpath_regression import build_policy_set, request_stream

from repro.api import open_pdp, open_server, open_store
from repro.client import AsyncRemotePDP, PDPOverloadedError, RemotePDP
from repro.core import MSoDEngine
from repro.perf import PerfRecorder
from repro.server import AuthorizationService, ServerThread

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "BENCH_serving.json"
)


def percentile(sorted_values: list[float], q: float) -> float:
    """Exact (nearest-rank) percentile of an already sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[rank]


# ---------------------------------------------------------------------------
# In-process reference: the number the wire is measured against
# ---------------------------------------------------------------------------
def run_in_process(n_requests: int, n_users: int) -> dict:
    """``engine.check`` in a bare loop — same workload, same store kind."""
    store = open_store("sqlite::memory:")
    engine = MSoDEngine(build_policy_set(), store)
    requests = list(request_stream(n_requests, n_users))
    wall_started = time.perf_counter()
    for request in requests:
        engine.check(request)
    elapsed = time.perf_counter() - wall_started
    store.close()
    return {
        "requests": len(requests),
        "elapsed_s": round(elapsed, 4),
        "throughput_rps": round(len(requests) / elapsed, 1),
    }


# ---------------------------------------------------------------------------
# Throughput / latency sweep
# ---------------------------------------------------------------------------
def _summarise(
    *,
    protocol: str,
    client_kind: str,
    n_shards: int,
    n_clients: int,
    flat: list[float],
    elapsed: float,
    perf: PerfRecorder,
    metrics: dict,
) -> dict:
    completed = len(flat)
    batches = perf.counter("server.batches")
    return {
        "protocol": protocol,
        "client": client_kind,
        "shards": n_shards,
        "clients": n_clients,
        "requests": completed,
        "elapsed_s": round(elapsed, 4),
        "throughput_rps": round(completed / elapsed, 1),
        "latency_s": {
            "mean": round(sum(flat) / completed, 6) if completed else 0.0,
            "p50": round(percentile(flat, 0.50), 6),
            "p95": round(percentile(flat, 0.95), 6),
            "p99": round(percentile(flat, 0.99), 6),
            "max": round(flat[-1], 6) if flat else 0.0,
        },
        "batches": batches,
        "mean_batch": round(completed / batches, 2) if batches else 0.0,
        "wire_batches": perf.counter("wire.frames_in"),
        "rejected": sum(shard["rejected"] for shard in metrics["shards"]),
    }


def run_load(
    n_shards: int,
    n_clients: int,
    n_requests: int,
    n_users: int,
    protocol: str = "v1",
) -> dict:
    """One closed-loop run: K client threads replay disjoint slices.

    ``protocol="v1"`` gives each thread its own pooled JSON-lines
    connection; ``protocol="v2"`` multiplexes every thread onto one
    pipelined binary connection (decide-batch frames, bounded in-flight
    window).
    """
    requests = list(request_stream(n_requests, n_users))
    per_client = len(requests) // n_clients

    perf = PerfRecorder()
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    errors: list[Exception] = []

    with open_server(
        build_policy_set(),
        store="sqlite::memory:",
        n_shards=n_shards,
        perf=perf,
    ) as server:
        service = server.service
        with server.client(
            pool_size=n_clients, timeout=30.0, protocol_version=protocol
        ) as pdp:

            def client(index: int) -> None:
                lo = index * per_client
                own = latencies[index]
                try:
                    for request in requests[lo:lo + per_client]:
                        started = time.perf_counter()
                        pdp.decide(request)
                        own.append(time.perf_counter() - started)
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(n_clients)
            ]
            wall_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - wall_started
        metrics = service.metrics()
    if errors:
        raise errors[0]

    flat = sorted(lat for client_lat in latencies for lat in client_lat)
    return _summarise(
        protocol=protocol,
        client_kind="threads",
        n_shards=n_shards,
        n_clients=n_clients,
        flat=flat,
        elapsed=elapsed,
        perf=perf,
        metrics=metrics,
    )


def run_load_pipelined(
    n_shards: int, concurrency: int, n_requests: int, n_users: int
) -> dict:
    """The v2 headline: the asyncio pipelined client at high concurrency.

    One event loop, one connection, ``concurrency`` in-flight decides
    coalescing into decide-batch frames — the client shape the batched
    protocol was designed for (no per-request thread, no per-request
    round trip).
    """
    requests = list(request_stream(n_requests, n_users))
    perf = PerfRecorder()
    latencies: list[float] = []

    with open_server(
        build_policy_set(),
        store="sqlite::memory:",
        n_shards=n_shards,
        perf=perf,
    ) as server:
        service = server.service

        async def drive() -> float:
            async with AsyncRemotePDP(
                server.host,
                server.port,
                timeout=30.0,
                protocol_version="v2",
                batch_max=64,
                pipeline_window=16,
            ) as pdp:
                gate = asyncio.Semaphore(concurrency)

                async def one(request) -> None:
                    async with gate:
                        started = time.perf_counter()
                        await pdp.decide(request)
                        latencies.append(time.perf_counter() - started)

                wall_started = time.perf_counter()
                await asyncio.gather(*(one(r) for r in requests))
                return time.perf_counter() - wall_started

        elapsed = asyncio.run(drive())
        metrics = service.metrics()

    latencies.sort()
    return _summarise(
        protocol="v2",
        client_kind="async-pipelined",
        n_shards=n_shards,
        n_clients=concurrency,
        flat=latencies,
        elapsed=elapsed,
        perf=perf,
        metrics=metrics,
    )


# ---------------------------------------------------------------------------
# Differential gate: the wire must never change a decision
# ---------------------------------------------------------------------------
def run_differential(n_requests: int = 600, n_users: int = 40) -> dict:
    """One stream, three paths, identical outcomes — or exit nonzero.

    Sequential replay (so ordering is deterministic) through the
    in-process engine, the v1 JSON-lines wire and the v2 batched wire;
    compares the full per-request effect sequence and the retained-ADI
    store fingerprints.  This is the timing-free regression gate CI
    runs on every push — a protocol bug fails the build even on the
    noisiest runner.
    """
    requests = list(request_stream(n_requests, n_users))

    store = open_store("sqlite::memory:")
    engine = MSoDEngine(build_policy_set(), store)
    expected_effects = [engine.check(request).effect for request in requests]
    expected_digest = _store_digest(store)
    store.close()

    legs = {}
    for protocol in ("v1", "v2"):
        store = open_store("sqlite::memory:")
        engine = MSoDEngine(build_policy_set(), store)
        service = AuthorizationService(engine, n_shards=4)
        with ServerThread(service) as server:
            with RemotePDP(
                server.host,
                server.port,
                timeout=30.0,
                protocol_version=protocol,
            ) as pdp:
                effects = [pdp.decide(request).effect for request in requests]
                negotiated = pdp.negotiated_protocol
        digest = _store_digest(store)
        store.close()
        legs[protocol] = {
            "negotiated": negotiated,
            "effects_match": effects == expected_effects,
            "digest_match": digest == expected_digest,
        }

    ok = (
        legs["v1"]["negotiated"] == 1
        and legs["v2"]["negotiated"] == 2
        and all(
            leg["effects_match"] and leg["digest_match"]
            for leg in legs.values()
        )
    )
    return {"requests": n_requests, "legs": legs, "identical": ok}


def _store_digest(store) -> tuple:
    return tuple(
        sorted(
            (
                record.user_id,
                tuple(sorted((r.role_type, r.value) for r in record.roles)),
                record.operation,
                record.target,
                str(record.context_instance),
                record.granted_at,
                record.request_id,
            )
            for record in store.records()
        )
    )


# ---------------------------------------------------------------------------
# Overload probe: bounded queues must shed, not balloon
# ---------------------------------------------------------------------------
class _SlowEngine:
    """Wraps a real engine, pinning service time so queues fill for sure."""

    def __init__(self, engine: MSoDEngine, delay_s: float) -> None:
        self._engine = engine
        self._delay_s = delay_s
        self.store = engine.store

    def check(self, request):
        time.sleep(self._delay_s)
        return self._engine.check(request)


def run_overload_probe(n_clients: int = 8, n_requests: int = 120) -> dict:
    """Hammer one slow single-shard worker behind a depth-2 queue.

    Load far exceeds capacity, so most submissions must be rejected
    fast (the typed overload error with a retry hint) while the queue
    itself never exceeds its bound — the memory-safety property the
    admission control exists for.
    """
    requests = list(request_stream(n_requests, n_users=16))
    per_client = len(requests) // n_clients
    store = open_store("sqlite::memory:")
    engine = _SlowEngine(
        open_pdp(build_policy_set(), store=store).engine, delay_s=0.005
    )
    service = AuthorizationService(
        engine, n_shards=1, queue_depth=2, batch_max=2, retry_after=0.01
    )
    accepted = [0] * n_clients
    rejected = [0] * n_clients
    max_backlog = [0]
    errors: list[Exception] = []

    with ServerThread(service) as server:
        with RemotePDP(
            server.host,
            server.port,
            pool_size=n_clients,
            timeout=30.0,
            max_retries=0,  # count raw rejections; no client-side retry
        ) as pdp:

            def client(index: int) -> None:
                lo = index * per_client
                try:
                    for request in requests[lo:lo + per_client]:
                        try:
                            pdp.decide(request)
                            accepted[index] += 1
                        except PDPOverloadedError:
                            rejected[index] += 1
                        backlog = max(service.queue_depths(), default=0)
                        if backlog > max_backlog[0]:
                            max_backlog[0] = backlog
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            health = pdp.healthz()
    store.close()
    if errors:
        raise errors[0]

    total_accepted = sum(accepted)
    total_rejected = sum(rejected)
    assert total_rejected > 0, "probe failed to provoke any shedding"
    assert max_backlog[0] <= 2, f"queue exceeded its bound: {max_backlog[0]}"
    assert health["status"] == "ok", "server unhealthy after overload"
    return {
        "clients": n_clients,
        "offered": total_accepted + total_rejected,
        "accepted": total_accepted,
        "rejected": total_rejected,
        "queue_depth_limit": 2,
        "max_observed_backlog": max_backlog[0],
        "healthy_after": True,
    }


# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast run for CI (correctness + JSON shape, not timing)",
    )
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--users", type=int, default=200)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--output", default=RESULTS_PATH)
    args = parser.parse_args(argv)

    if args.smoke:
        n_requests, n_users, n_clients = 2_000, 50, 4
        shard_counts = [2]
        differential = run_differential(n_requests=400)
    else:
        n_requests, n_users, n_clients = args.requests, args.users, args.clients
        shard_counts = [1, 2, 4]
        differential = run_differential()

    if not differential["identical"]:
        print("DIFFERENTIAL GATE FAILED: wire decisions diverged from "
              "in-process", file=sys.stderr)
        print(json.dumps(differential, indent=2), file=sys.stderr)
        return 1

    reference = run_in_process(n_requests, n_users)
    in_process_rps = reference["throughput_rps"]

    sweep = []
    for n_shards in shard_counts:
        sweep.append(run_load(n_shards, n_clients, n_requests, n_users, "v1"))
        sweep.append(
            run_load_pipelined(n_shards, n_clients * 32, n_requests, n_users)
        )
    if not args.smoke:
        # One sync-threads v2 data point: the same thread harness as v1,
        # multiplexed over a single pipelined connection.
        sweep.append(run_load(4, 32, n_requests, n_users, "v2"))
    for point in sweep:
        point["wire_gap"] = (
            round(in_process_rps / point["throughput_rps"], 2)
            if point["throughput_rps"]
            else 0.0
        )
    probe = run_overload_probe()

    best = max(point["throughput_rps"] for point in sweep)
    best_by_protocol = {
        protocol: max(
            (p["throughput_rps"] for p in sweep if p["protocol"] == protocol),
            default=0.0,
        )
        for protocol in ("v1", "v2")
    }
    v2_gap = (
        round(in_process_rps / best_by_protocol["v2"], 2)
        if best_by_protocol["v2"]
        else float("inf")
    )
    report = {
        "benchmark": "serving",
        "smoke": args.smoke,
        "in_process": reference,
        "sweep": sweep,
        "best_throughput_rps": best,
        "best_by_protocol": best_by_protocol,
        "v2_wire_gap": v2_gap,
        "meets_1k_rps_target": best >= 1_000.0,
        "meets_2x_in_process_target": v2_gap <= 2.0,
        "differential": differential,
        "overload_probe": probe,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
    }

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    print(
        f"in-process reference: {reference['requests']} decisions "
        f"({in_process_rps:.0f} rps)"
    )
    for point in sweep:
        latency = point["latency_s"]
        print(
            f"serving[{point['protocol']}/{point['client']} "
            f"shards={point['shards']}]: "
            f"{point['requests']} decisions in {point['elapsed_s']:.2f}s "
            f"({point['throughput_rps']:.0f} rps, gap {point['wire_gap']}x)  "
            f"p50={latency['p50'] * 1e3:.2f}ms "
            f"p99={latency['p99'] * 1e3:.2f}ms  "
            f"mean batch={point['mean_batch']}"
        )
    print(
        f"differential gate: {differential['requests']} requests identical "
        f"across in-process / v1 / v2"
    )
    print(
        f"overload probe: {probe['rejected']}/{probe['offered']} shed, "
        f"max backlog {probe['max_observed_backlog']} "
        f"(bound {probe['queue_depth_limit']}), healthy after"
    )
    print(f"  wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""BENCH_hotpath — decision-engine hot-path regression benchmark.

Measures ``MSoDEngine.check`` throughput on a mixed MMER+MMEP workload
(by default 10k requests against a 50-policy set) and compares the
optimized engine against a *seed-equivalent naive baseline*: a faithful
transcription of the pre-optimization store (linear context scans, no
aggregates) and policy dispatch (linear scan, per-component context
matching), driven through the same engine algorithm.

The run also verifies semantics: the naive baseline, the optimized
in-memory store and the optimized SQLite store must produce identical
decisions on the identical request stream, and the in-memory stores
must end with identical digests.

Results are written as machine-readable JSON to
``benchmarks/results/BENCH_hotpath.json`` so later PRs have a perf
trajectory to compare against.  Run it directly::

    PYTHONPATH=src python benchmarks/bench_hotpath_regression.py           # full
    PYTHONPATH=src python benchmarks/bench_hotpath_regression.py --smoke  # CI

The baseline deliberately *under*-states the speedup: it still benefits
from the optimized ``ContextName`` hash/parse caches that global state
shares across runs; only the store/dispatch layers are naive.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from collections import Counter
from typing import Iterator

from repro.api import open_pdp, open_store
from repro.core import (
    MMEP,
    MMER,
    ContextName,
    DecisionRequest,
    MODE_LITERAL,
    MODE_STRICT,
    MSoDEngine,
    MSoDPolicy,
    MSoDPolicySet,
    Privilege,
    Role,
    Step,
    store_digest,
)
from repro.core.retained_adi import RetainedADIRecord, RetainedADIStore
from repro.perf import PerfRecorder

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "BENCH_hotpath.json"
)


# ---------------------------------------------------------------------------
# Seed-equivalent naive baseline
# ---------------------------------------------------------------------------
def _naive_covers(pol_comp, comp) -> bool:
    if pol_comp.ctx_type != comp.ctx_type:
        return False
    if pol_comp.value in ("*", "!"):
        return True
    return pol_comp.value == comp.value


def _naive_subordinate(name: ContextName, policy: ContextName) -> bool:
    """The seed per-component matching loop (pre compiled-matcher)."""
    if len(policy) > len(name):
        return False
    return all(
        _naive_covers(pol_comp, comp)
        for pol_comp, comp in zip(policy.components, name.components)
    )


class _PassthroughViews:
    """Seed behaviour: every constraint check re-queries the store."""

    def __init__(self, store: "NaiveRetainedADIStore") -> None:
        self._store = store

    def has_context(self, effective_context):
        return self._store.has_context(effective_context)

    def user_roles(self, user_id, effective_context):
        return self._store.user_roles(user_id, effective_context)

    def user_privilege_exercise_counts(self, user_id, effective_context):
        return Counter(
            self._store.user_privilege_exercises(user_id, effective_context)
        )


class NaiveRetainedADIStore(RetainedADIStore):
    """Transcription of the seed in-memory store: id-set indexes, linear
    context matching, history views rebuilt by full per-user scans."""

    def __init__(self) -> None:
        self._records: dict[int, RetainedADIRecord] = {}
        self._by_user: dict[str, list[int]] = {}
        self._by_context: dict[ContextName, set[int]] = {}
        self._next_id = 1

    def snapshot_views(self):
        return _PassthroughViews(self)

    def add(self, record):
        stored = RetainedADIRecord(
            user_id=record.user_id,
            roles=record.roles,
            operation=record.operation,
            target=record.target,
            context_instance=record.context_instance,
            granted_at=record.granted_at,
            request_id=record.request_id,
            record_id=self._next_id,
        )
        self._records[self._next_id] = stored
        self._by_user.setdefault(record.user_id, []).append(self._next_id)
        self._by_context.setdefault(record.context_instance, set()).add(
            self._next_id
        )
        self._next_id += 1
        return stored

    def records(self):
        return iter(list(self._records.values()))

    def _matching_contexts(self, effective_context):
        return [
            context
            for context in self._by_context
            if _naive_subordinate(context, effective_context)
        ]

    def find(self, effective_context):
        found = []
        for context in self._matching_contexts(effective_context):
            found.extend(
                self._records[record_id]
                for record_id in self._by_context[context]
            )
        found.sort(key=lambda record: record.record_id)
        return found

    def find_user(self, user_id, effective_context):
        ids = self._by_user.get(user_id, ())
        return [
            self._records[record_id]
            for record_id in ids
            if record_id in self._records
            and _naive_subordinate(
                self._records[record_id].context_instance, effective_context
            )
        ]

    def has_context(self, effective_context):
        return any(
            _naive_subordinate(context, effective_context)
            for context in self._by_context
        )

    def _delete(self, record_id):
        record = self._records.pop(record_id)
        bucket = self._by_context.get(record.context_instance)
        if bucket is not None:
            bucket.discard(record_id)
            if not bucket:
                del self._by_context[record.context_instance]

    def purge_context(self, effective_context):
        doomed = [
            record_id
            for context in self._matching_contexts(effective_context)
            for record_id in list(self._by_context[context])
        ]
        for record_id in doomed:
            self._delete(record_id)
        return len(doomed)

    def purge_user(self, user_id):
        ids = self._by_user.pop(user_id, [])
        removed = 0
        for record_id in ids:
            if record_id in self._records:
                self._delete(record_id)
                removed += 1
        return removed

    def purge_older_than(self, cutoff):
        doomed = [
            record_id
            for record_id, record in self._records.items()
            if record.granted_at < cutoff
        ]
        for record_id in doomed:
            self._delete(record_id)
        return len(doomed)

    def clear(self):
        removed = len(self._records)
        self._records.clear()
        self._by_user.clear()
        self._by_context.clear()
        return removed

    def count(self):
        return len(self._records)


class NaivePolicySet(MSoDPolicySet):
    """Seed dispatch: scan every policy, match per component."""

    def matching(self, instance):
        return tuple(
            policy
            for policy in self.policies
            if _naive_subordinate(instance, policy.business_context)
        )


# ---------------------------------------------------------------------------
# Workload: 50 policies (mixed MMER+MMEP) over 10 business processes
# ---------------------------------------------------------------------------
N_DEPTS = 10
POLICIES_PER_DEPT = 5


def _dept_roles(dept: int) -> list[Role]:
    return [Role("employee", f"D{dept}-R{index}") for index in range(4)]


def _dept_privileges(dept: int) -> list[Privilege]:
    return [
        Privilege(f"op{index}", f"res://d{dept}/t{index}") for index in range(4)
    ]


def build_policy_set(factory=MSoDPolicySet) -> MSoDPolicySet:
    """50 policies: per business process, five mixed MMER/MMEP shapes."""
    policies = []
    for dept in range(N_DEPTS):
        roles = _dept_roles(dept)
        privileges = _dept_privileges(dept)
        lead = f"Dept{dept}"
        policies.append(
            MSoDPolicy(
                ContextName.parse(f"{lead}=*, Case=!"),
                mmers=[MMER(roles[:3], 2)],
                policy_id=f"d{dept}-mmer-case",
            )
        )
        policies.append(
            MSoDPolicy(
                ContextName.parse(f"{lead}=!"),
                mmeps=[MMEP(privileges[:3], 2)],
                policy_id=f"d{dept}-mmep-unit",
            )
        )
        policies.append(
            MSoDPolicy(
                ContextName.parse(f"{lead}=*"),
                mmers=[MMER(roles[1:], 2)],
                mmeps=[MMEP(privileges[1:], 3)],
                policy_id=f"d{dept}-mixed",
            )
        )
        policies.append(
            MSoDPolicy(
                ContextName.parse(f"{lead}=*, Case=*"),
                mmeps=[MMEP([privileges[0], privileges[0]], 2)],
                policy_id=f"d{dept}-mmep-cap",
            )
        )
        policies.append(
            MSoDPolicy(
                ContextName.parse(f"{lead}=!, Case=!"),
                mmers=[MMER(roles, 3)],
                first_step=Step("open", f"res://d{dept}/case"),
                last_step=Step("close", f"res://d{dept}/case"),
                policy_id=f"d{dept}-bracketed",
            )
        )
    return factory(policies)


def request_stream(
    n_requests: int, n_users: int, seed: int = 20260806
) -> Iterator[DecisionRequest]:
    """Seeded mixed traffic: MMER conflicts, MMEP repeats, open/close."""
    rng = random.Random(seed)
    home_role: dict[tuple[str, int], int] = {}
    for index in range(n_requests):
        user = f"u{rng.randrange(n_users):04d}"
        dept = rng.randrange(N_DEPTS)
        unit = rng.randrange(4)
        case = rng.randrange(8)
        context = ContextName.parse(
            f"Dept{dept}=unit{unit}, Case=c{case}"
        )
        roles = _dept_roles(dept)
        privileges = _dept_privileges(dept)
        home = home_role.setdefault((user, dept), rng.randrange(len(roles)))
        role_index = (
            home if rng.random() < 0.8 else rng.randrange(len(roles))
        )
        draw = rng.random()
        if draw < 0.04:
            operation, target = "open", f"res://d{dept}/case"
        elif draw < 0.06:
            operation, target = "close", f"res://d{dept}/case"
        elif draw < 0.66:
            privilege = privileges[rng.randrange(len(privileges))]
            operation, target = privilege.operation, privilege.target
        else:
            operation, target = "browse", f"res://d{dept}/public"
        yield DecisionRequest(
            user_id=user,
            roles=(roles[role_index],),
            operation=operation,
            target=target,
            context_instance=context,
            timestamp=float(index),
        )


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
def _decision_key(decision) -> tuple:
    return (
        decision.effect,
        decision.reason,
        decision.matched_policy_ids,
        decision.records_added,
    )


def run_stream(engine: MSoDEngine, requests: list[DecisionRequest]):
    check = engine.check
    started = time.perf_counter()
    decisions = [check(request) for request in requests]
    elapsed = time.perf_counter() - started
    return elapsed, decisions


def run_benchmark(
    n_requests: int, n_users: int, mode: str = MODE_STRICT
) -> dict:
    requests = list(request_stream(n_requests, n_users))

    naive_store = NaiveRetainedADIStore()
    naive_engine = MSoDEngine(
        build_policy_set(NaivePolicySet), naive_store, mode=mode
    )
    naive_s, naive_decisions = run_stream(naive_engine, requests)

    perf = PerfRecorder()
    memory_store = open_store("memory")
    memory_engine = open_pdp(
        build_policy_set(), store=memory_store, mode=mode, perf=perf
    ).engine
    memory_s, memory_decisions = run_stream(memory_engine, requests)

    sqlite_store = open_store("sqlite::memory:")
    sqlite_engine = open_pdp(
        build_policy_set(), store=sqlite_store, mode=mode
    ).engine
    sqlite_s, sqlite_decisions = run_stream(sqlite_engine, requests)

    # Semantics: all three backends must agree decision-for-decision,
    # and the in-memory stores must end bit-identical.  (records_purged
    # is compared only between the in-memory engines: the seed SQLite
    # store double-counts records doomed by overlapping purge contexts,
    # a quirk preserved for seed fidelity.)
    for naive_d, memory_d, sqlite_d in zip(
        naive_decisions, memory_decisions, sqlite_decisions
    ):
        assert _decision_key(naive_d) == _decision_key(memory_d), (
            naive_d,
            memory_d,
        )
        assert _decision_key(memory_d) == _decision_key(sqlite_d), (
            memory_d,
            sqlite_d,
        )
        assert naive_d.records_purged == memory_d.records_purged
    assert store_digest(naive_store) == store_digest(memory_store)
    assert store_digest(memory_store) == store_digest(sqlite_store)
    sqlite_store.close()

    grants = sum(1 for decision in memory_decisions if decision.granted)
    return {
        "mode": mode,
        "requests": n_requests,
        "users": n_users,
        "policies": N_DEPTS * POLICIES_PER_DEPT,
        "grants": grants,
        "denies": n_requests - grants,
        "records_retained_final": memory_store.count(),
        "records_added_total": perf.counter("engine.records_added"),
        "timings_s": {
            "naive_inmemory": round(naive_s, 4),
            "optimized_inmemory": round(memory_s, 4),
            "optimized_sqlite": round(sqlite_s, 4),
        },
        "throughput_rps": {
            "naive_inmemory": round(n_requests / naive_s, 1),
            "optimized_inmemory": round(n_requests / memory_s, 1),
            "optimized_sqlite": round(n_requests / sqlite_s, 1),
        },
        "speedup_inmemory": round(naive_s / memory_s, 2),
        "decisions_identical_across_engines": True,
        "perf_snapshot_optimized_inmemory": perf.snapshot(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast run for CI (correctness + JSON shape, not timing)",
    )
    parser.add_argument("--requests", type=int, default=10_000)
    parser.add_argument("--users", type=int, default=200)
    parser.add_argument("--output", default=RESULTS_PATH)
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_hotpath.json to gate against: fail when "
        "measured optimized-in-memory throughput drops below "
        "--min-ratio of the committed run's",
    )
    parser.add_argument("--min-ratio", type=float, default=0.95)
    args = parser.parse_args(argv)

    if args.smoke:
        n_requests, n_users = 1_000, 50
    else:
        n_requests, n_users = args.requests, args.users

    report = {
        "benchmark": "hotpath_regression",
        "smoke": args.smoke,
        "strict": run_benchmark(n_requests, n_users, MODE_STRICT),
        "literal": run_benchmark(max(n_requests // 5, 200), n_users, MODE_LITERAL),
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
    }

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    strict = report["strict"]
    print(
        f"hotpath[{strict['mode']}]: {strict['requests']} requests, "
        f"{strict['policies']} policies, "
        f"{strict['records_added_total']} records added\n"
        f"  naive in-memory     : {strict['timings_s']['naive_inmemory']:.3f}s "
        f"({strict['throughput_rps']['naive_inmemory']:.0f} rps)\n"
        f"  optimized in-memory : {strict['timings_s']['optimized_inmemory']:.3f}s "
        f"({strict['throughput_rps']['optimized_inmemory']:.0f} rps)\n"
        f"  optimized sqlite    : {strict['timings_s']['optimized_sqlite']:.3f}s "
        f"({strict['throughput_rps']['optimized_sqlite']:.0f} rps)\n"
        f"  speedup (in-memory) : {strict['speedup_inmemory']:.2f}x\n"
        f"  wrote {args.output}"
    )

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            committed = json.load(handle)
        # Absolute rps is machine- and load-dependent, so the gate is
        # on the *speedup ratio* (naive vs optimized on the same box,
        # same run): it must stay within --min-ratio of the committed
        # run's.  The naive baseline is a fixed workload, so a hot-path
        # slowdown shows up directly as a shrunken ratio.  Raw rps is
        # still printed for the human reading the log.
        committed_speedup = committed["strict"]["speedup_inmemory"]
        committed_rps = committed["strict"]["throughput_rps"][
            "optimized_inmemory"
        ]
        measured_rps = strict["throughput_rps"]["optimized_inmemory"]
        ratio = strict["speedup_inmemory"] / committed_speedup
        verdict = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(
            f"  baseline gate       : speedup {strict['speedup_inmemory']:.2f}x "
            f"vs committed {committed_speedup:.2f}x = {ratio:.2f} "
            f"(floor {args.min_ratio:.2f}); "
            f"rps {measured_rps:.0f} vs {committed_rps:.0f} -> {verdict}"
        )
        if ratio < args.min_ratio:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

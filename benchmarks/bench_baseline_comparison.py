"""B1 — the Section-6 related-work comparison: who catches what.

Runs every implemented SoD mechanism over one seeded workload containing
all seven injected conflict classes plus benign traffic, and reproduces
the paper's qualitative claims as a detection-rate table:

* MSoD catches every multi-session class with zero false positives;
* ANSI SSD only catches conflicts visible to a single authority at
  assignment time; ANSI DSD only same-session co-activation;
* an omniscient global SSD catches everything at assignment but blocks
  legitimate cross-period role changes (Example 1's motivation);
* Crampton's anti-roles are context-blind (false positives) and lose
  history at each purge;
* Bertino's and Sandhu's mechanisms only see declared-workflow /
  per-object conflicts respectively;
* Gligor's operational/history DSoD formalisms catch the object-scoped
  completion class but are blind to roles and business contexts;
* nobody catches unlinked federated identities (Section 6), and only
  MSoD with identity linking catches the linked variant.
"""

from conftest import emit

from repro.baselines import (
    AnsiDsdChecker,
    HistoryDSoDChecker,
    OperationalDSoDChecker,
    AnsiSsdChecker,
    AntiRoleChecker,
    BertinoWorkflowChecker,
    MSoDChecker,
    SandhuTCEChecker,
    TaskConstraint,
    TCEStep,
    TransactionControlExpression,
)
from repro.rbac import DsdConstraint, SsdConstraint
from repro.workload import (
    AUDITOR,
    BENIGN,
    COMBINE,
    CONFIRM,
    CROSS_SESSION,
    FEDERATED_LINKED,
    FEDERATED_UNLINKED,
    OBJECT_COMPLETION,
    PREPARE,
    REPEATED_PRIVILEGE,
    SAME_SESSION,
    SINGLE_AUTHORITY,
    TELLER,
    ScenarioGenerator,
    format_detection_table,
    run_comparison,
)
from repro.xmlpolicy import combined_policy_set

SSD = [SsdConstraint("teller-auditor", ["Teller", "Auditor"], 2)]
DSD = [DsdConstraint("teller-auditor", ["Teller", "Auditor"], 2)]
CONFLICT_ROLES = [frozenset({TELLER, AUDITOR})]


def build_checkers(generator, scenarios):
    all_users = {
        step.user_id for scenario in scenarios for step in scenario.steps
    }
    bertino = BertinoWorkflowChecker(
        "taxRefundProcess",
        [
            TaskConstraint("prepareCheck", must_differ_from=("confirmCheck",)),
            TaskConstraint(
                "approve/disapproveCheck",
                must_differ_from=("combineResults",),
                max_per_user=1,
            ),
            TaskConstraint(
                "combineResults", must_differ_from=("approve/disapproveCheck",)
            ),
            TaskConstraint("confirmCheck", must_differ_from=("prepareCheck",)),
        ],
        all_users,
    )
    tce = SandhuTCEChecker(
        [
            TransactionControlExpression(
                PREPARE.target,
                [
                    TCEStep("prepareCheck"),
                    TCEStep("approve/disapproveCheck"),
                    TCEStep("approve/disapproveCheck"),
                ],
            ),
            TransactionControlExpression(
                COMBINE.target, [TCEStep("combineResults")]
            ),
            TransactionControlExpression(
                CONFIRM.target, [TCEStep("confirmCheck")]
            ),
        ]
    )
    sensitive_ops = [frozenset({PREPARE.operation, CONFIRM.operation})]
    return [
        MSoDChecker(combined_policy_set()),
        MSoDChecker(
            combined_policy_set(),
            linker=generator.identity_linker,
            name="MSoD + identity linking",
        ),
        AnsiSsdChecker(SSD),
        AnsiSsdChecker(SSD, global_view=True),
        AnsiDsdChecker(DSD),
        AntiRoleChecker(CONFLICT_ROLES),
        bertino,
        tce,
        OperationalDSoDChecker(sensitive_ops),
        HistoryDSoDChecker(sensitive_ops),
    ]


def test_b1_detection_rate_table(benchmark):
    generator = ScenarioGenerator(seed=2007)
    scenarios = generator.mixed_stream(per_class=25, benign_per_class=25)
    checkers = build_checkers(generator, scenarios)

    reports = benchmark.pedantic(
        run_comparison, args=(checkers, scenarios), rounds=3, iterations=1
    )
    table = format_detection_table(reports)
    emit("B1_detection_rates", table)

    by_name = {report.checker_name: report for report in reports}
    msod = by_name["MSoD"]
    linked = by_name["MSoD + identity linking"]
    ssd = by_name["ANSI SSD"]
    ssd_global = by_name["ANSI SSD (global)"]
    dsd = by_name["ANSI DSD"]
    anti = by_name["Anti-role"]
    bertino = by_name["Bertino workflow"]
    tce = by_name["Sandhu TCE"]

    gligor_op = by_name["Gligor operational DSoD"]
    gligor_hist = by_name["Gligor history DSoD"]

    # MSoD: full coverage of multi-session classes, zero FPs.
    for label in (SAME_SESSION, SINGLE_AUTHORITY, CROSS_SESSION,
                  REPEATED_PRIVILEGE, OBJECT_COMPLETION):
        assert msod.detection_rate(label) == 1.0, label
    assert msod.false_positive_rate() == 0.0
    # The Section-6 limitation, and its identity-linking fix.
    assert msod.detection_rate(FEDERATED_UNLINKED) == 0.0
    assert msod.detection_rate(FEDERATED_LINKED) == 0.0
    assert linked.detection_rate(FEDERATED_LINKED) == 1.0
    assert linked.detection_rate(FEDERATED_UNLINKED) == 0.0
    # ANSI baselines: each catches exactly its own enforcement point.
    assert ssd.detection_rate(SINGLE_AUTHORITY) == 1.0
    assert ssd.detection_rate(CROSS_SESSION) == 0.0
    assert dsd.detection_rate(SAME_SESSION) == 1.0
    assert dsd.detection_rate(CROSS_SESSION) == 0.0
    # Omniscient SSD over-blocks benign cross-period role changes.
    assert ssd_global.detection_rate(CROSS_SESSION) == 1.0
    assert ssd_global.false_positive_rate() > 0.0
    # Anti-roles catch history conflicts but are context-blind.
    assert anti.detection_rate(CROSS_SESSION) == 1.0
    assert anti.false_positive_rate() > 0.0
    # Workflow/object-scoped baselines only see their own domain.
    assert bertino.detection_rate(REPEATED_PRIVILEGE) == 1.0
    assert bertino.detection_rate(CROSS_SESSION) == 0.0
    assert tce.detection_rate(REPEATED_PRIVILEGE) == 1.0
    assert tce.detection_rate(CROSS_SESSION) == 0.0
    # Gligor formalisms: the history variant catches the object-scoped
    # class without false positives; the operational variant catches it
    # too but blocks benign cross-instance work (object-blindness); both
    # are blind to the role-based multi-session classes.
    assert gligor_hist.detection_rate(OBJECT_COMPLETION) == 1.0
    assert gligor_hist.false_positive_rate() == 0.0
    assert gligor_op.detection_rate(OBJECT_COMPLETION) == 1.0
    assert gligor_op.false_positive_rate() > 0.0
    for gligor in (gligor_op, gligor_hist):
        assert gligor.detection_rate(CROSS_SESSION) == 0.0
        assert gligor.detection_rate(SAME_SESSION) == 0.0
    # Nobody (access-time) catches unlinked federated conflicts.
    for report in (dsd, anti, bertino, tce, gligor_op, gligor_hist):
        assert report.detection_rate(FEDERATED_UNLINKED) == 0.0


def test_b1_anti_role_purge_tradeoff(benchmark):
    """Crampton's periodic purge trades false positives for misses."""
    from conftest import format_rows

    rows = []
    for purge_every in (None, 50, 10):
        generator = ScenarioGenerator(seed=99)
        scenarios = generator.mixed_stream(per_class=30, benign_per_class=30)
        checker = AntiRoleChecker(CONFLICT_ROLES, purge_every=purge_every)
        (report,) = run_comparison([checker], scenarios)
        rows.append(
            [
                "never" if purge_every is None else str(purge_every),
                f"{report.detection_rate(CROSS_SESSION):.2f}",
                f"{report.false_positive_rate():.2f}",
            ]
        )
    table = format_rows(
        ["purge every N accesses", "cross-session detection", "benign FP"],
        rows,
    )
    emit("B1_anti_role_purge_tradeoff", table)

    # More aggressive purging loses detections.
    assert float(rows[-1][1]) < float(rows[0][1])

    generator = ScenarioGenerator(seed=3)
    scenarios = generator.mixed_stream(per_class=5, benign_per_class=5)
    checker = AntiRoleChecker(CONFLICT_ROLES)
    benchmark(run_comparison, [checker], scenarios)


def test_b1_checker_throughput(benchmark):
    """Steps/second through the paper's own mechanism."""
    generator = ScenarioGenerator(seed=11)
    scenarios = generator.mixed_stream(per_class=10, benign_per_class=10)
    steps = [step for scenario in scenarios for step in scenario.steps]
    checker = MSoDChecker(combined_policy_set())

    def run_all():
        checker.reset()
        return sum(
            1 for step in steps if checker.process_step(step)[0]
        )

    blocked = benchmark(run_all)
    assert blocked > 0

"""BENCH_elastic — what an online 2→4 split buys, and what it costs.

Two questions, two sections:

**Capacity** (the reason to split).  Using BENCH_cluster's methodology
— every node benched in isolation on its ring slice with the full
durable stack (SQLite store, fsync'd trail, real wire round trips),
aggregate = total requests / slowest node wall — measure the 2-node
baseline and the 4-node post-split topology on the *same* request
stream.  The acceptance bar: post-split aggregate ≥ 1.4x the 2-node
baseline.  (Consistent hashing leaves each surviving shard with a
subset of its old users, so capacity grows with real ring balance, not
by assumption; a skewed ring fails this bar.)

**Cost** (the price of moving online).  Boot an in-process 2-shard
``LocalCluster`` under continuous closed-loop client load, run a live
2→3 split followed by a 3→2 drain, and record what the clients saw:
throughput before / during / after, the per-migration fenced cutover
pause (the only window a moving user's decides stall), and the worst
single-decide latency in each phase.  The cutover bar: every pause
bounded under ``MAX_CUTOVER_PAUSE_S``.

Results go to ``benchmarks/results/BENCH_elastic.json``::

    PYTHONPATH=src python benchmarks/bench_elastic.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_elastic.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_cluster import run_topology  # noqa: E402

from repro.cluster import ClusterPDP, LocalCluster  # noqa: E402
from repro.core import ContextName, DecisionRequest, Role  # noqa: E402
from repro.workload import (  # noqa: E402
    bank_policy_set,
    decision_request_stream,
)

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "BENCH_elastic.json"
)

TELLER = Role("employee", "Teller")

#: The fenced window per migration must stay under this (full mode).
MAX_CUTOVER_PAUSE_S = 1.0


def run_live_resize(n_workers: int, seconds_per_phase: float) -> dict:
    """Closed-loop load through a full split+drain cycle; client view."""
    counters = [0] * n_workers
    max_latency = [0.0] * n_workers
    errors: list[str] = []
    stop = threading.Event()
    phase_marks: list[tuple[str, float, int]] = []

    def snapshot(label: str) -> None:
        phase_marks.append((label, time.perf_counter(), sum(counters)))

    def worker(index: int, pdp: ClusterPDP) -> None:
        users = [f"elastic-{index}-{i}" for i in range(8)]
        serial = 0
        while not stop.is_set():
            serial += 1
            user = users[serial % len(users)]
            request = DecisionRequest(
                user_id=user,
                roles=(TELLER,),
                operation="handleCash",
                target="till://cash",
                context_instance=ContextName.parse(
                    f"Branch={user}, Period={user}-S{serial}"
                ),
                timestamp=float(index * 1_000_000 + serial),
            )
            started = time.perf_counter()
            try:
                pdp.decide(request)
            except Exception as exc:
                errors.append(f"worker {index}: {exc}")
                return
            latency = time.perf_counter() - started
            if latency > max_latency[index]:
                max_latency[index] = latency
            counters[index] += 1

    with tempfile.TemporaryDirectory() as data_dir:
        cluster = LocalCluster(
            bank_policy_set(), 2, data_dir, store="memory", fsync=False
        ).start()
        try:
            with ClusterPDP(
                (cluster.host, cluster.port), failover_wait=30.0
            ) as pdp:
                threads = [
                    threading.Thread(
                        target=worker, args=(index, pdp), daemon=True
                    )
                    for index in range(n_workers)
                ]
                for thread in threads:
                    thread.start()
                try:
                    snapshot("before")
                    time.sleep(seconds_per_phase)

                    snapshot("split")
                    added = cluster.add_shard()
                    split = cluster.wait_reshard(timeout=120.0)[
                        "last_migration"
                    ]
                    time.sleep(seconds_per_phase)

                    snapshot("drain")
                    cluster.drain_shard(added)
                    drain = cluster.wait_reshard(timeout=120.0)[
                        "last_migration"
                    ]
                    time.sleep(seconds_per_phase)
                    snapshot("after")
                finally:
                    stop.set()
                    for thread in threads:
                        thread.join(timeout=30.0)
        finally:
            cluster.stop()

    if errors:
        raise RuntimeError(errors[0])
    phases = {}
    for (label, t0, c0), (_, t1, c1) in zip(phase_marks, phase_marks[1:]):
        wall = t1 - t0
        phases[label] = {
            "requests": c1 - c0,
            "wall_s": round(wall, 3),
            "throughput_rps": round((c1 - c0) / wall, 1) if wall else 0.0,
        }
    return {
        "workers": n_workers,
        "phases": phases,
        "max_decide_latency_s": round(max(max_latency), 4),
        "migrations": {
            "split": {
                "ticks": split["ticks"],
                "users_moved": split["users_moved"],
                "events_imported": split["events_imported"],
                "cutover_pause_s": round(split["cutover_pause_s"], 5),
            },
            "drain": {
                "ticks": drain["ticks"],
                "users_moved": drain["users_moved"],
                "events_imported": drain["events_imported"],
                "cutover_pause_s": round(drain["cutover_pause_s"], 5),
            },
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-sized run"
    )
    parser.add_argument(
        "--output", default=RESULTS_PATH, help="result JSON path"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_requests, n_users, n_clients = 400, 400, 4
        live_workers, phase_s = 2, 1.0
    else:
        n_requests, n_users, n_clients = 2400, 1200, 8
        live_workers, phase_s = 4, 3.0

    requests = list(
        decision_request_stream(n_requests, n_users=n_users, n_branches=8)
    )

    baseline = run_topology(2, requests, n_clients)
    print(
        f"2-node baseline: {baseline['throughput_rps']} rps "
        f"(slowest shard wall {baseline['wall_s']}s)"
    )
    post_split = run_topology(4, requests, n_clients)
    print(
        f"4-node post-split: {post_split['throughput_rps']} rps "
        f"(slowest shard wall {post_split['wall_s']}s)"
    )
    factor = (
        round(post_split["throughput_rps"] / baseline["throughput_rps"], 2)
        if baseline["throughput_rps"]
        else 0.0
    )
    print(f"post-split factor: {factor}x")

    live = run_live_resize(live_workers, phase_s)
    pauses = [
        live["migrations"]["split"]["cutover_pause_s"],
        live["migrations"]["drain"]["cutover_pause_s"],
    ]
    print(
        "live resize: "
        + " ".join(
            f"{label}={phase['throughput_rps']}rps"
            for label, phase in live["phases"].items()
        )
        + f" cutover pauses {pauses} s"
    )

    report = {
        "benchmark": "BENCH_elastic",
        "mode": "smoke" if args.smoke else "full",
        "methodology": (
            "capacity: per-node isolated ring-slice capacity as in "
            "BENCH_cluster (aggregate = total requests / slowest node "
            "wall); cost: in-process LocalCluster under closed-loop "
            "load through a live 2->3 split and 3->2 drain"
        ),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "store": "sqlite (capacity legs), memory (live resize)",
            "audit_fsync": "capacity legs only",
            "requests": n_requests,
            "distinct_users": n_users,
            "client_threads": n_clients,
        },
        "baseline_2_nodes": baseline,
        "post_split_4_nodes": post_split,
        "post_split_factor": factor,
        "live_resize": live,
    }
    if not args.smoke:
        report["acceptance"] = {
            "target_min_post_split_factor": 1.4,
            "post_split_factor_pass": factor >= 1.4,
            "max_cutover_pause_s": MAX_CUTOVER_PAUSE_S,
            "cutover_pause_pass": max(pauses) <= MAX_CUTOVER_PAUSE_S,
        }

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

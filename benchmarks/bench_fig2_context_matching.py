"""F2 — Figure 2 (business-context hierarchy): matching semantics + cost.

Reproduces the figure's three policy scopings — ``Branch=*, Period=!``,
``Branch=!, Period=!`` and ``Branch=York, Period=!`` — applied to a
concrete instance hierarchy, then measures context matching as names
deepen and policy sets grow.
"""

from conftest import emit, format_rows

from repro.core import ContextName

POLICIES = {
    "Branch=*, Period=!": "whole bank, per audit period",
    "Branch=!, Period=!": "per branch, per audit period",
    "Branch=York, Period=!": "York branch only, per period",
}

INSTANCES = [
    "Branch=York, Period=2006",
    "Branch=Leeds, Period=2006",
    "Branch=York, Period=2007",
    "Branch=York, Period=2006, Till=3",
]


def test_fig2_policy_scoping_table(benchmark):
    """Which policy business contexts match which concrete instances."""
    rows = []
    for instance_text in INSTANCES:
        instance = ContextName.parse(instance_text)
        row = [instance_text]
        for policy_text in POLICIES:
            policy = ContextName.parse(policy_text)
            if instance.is_equal_or_subordinate_to(policy):
                effective = policy.instantiate(instance)
                row.append(f"-> [{effective}]")
            else:
                row.append("no match")
        rows.append(row)
    table = format_rows(["instance"] + list(POLICIES), rows)
    emit("F2_context_scoping", table)

    # Shape assertions from the paper's Figure-2 discussion:
    york_2006 = ContextName.parse("Branch=York, Period=2006")
    leeds_2006 = ContextName.parse("Branch=Leeds, Period=2006")
    bank_wide = ContextName.parse("Branch=*, Period=!")
    per_branch = ContextName.parse("Branch=!, Period=!")
    york_only = ContextName.parse("Branch=York, Period=!")
    # Bank-wide: York and Leeds share one effective context per period.
    assert bank_wide.instantiate(york_2006) == bank_wide.instantiate(leeds_2006)
    # Per-branch: they do not.
    assert per_branch.instantiate(york_2006) != per_branch.instantiate(leeds_2006)
    # York-only matches only York.
    assert york_2006.is_equal_or_subordinate_to(york_only)
    assert not leeds_2006.is_equal_or_subordinate_to(york_only)

    policy = ContextName.parse("Branch=*, Period=!")
    instance = ContextName.parse("Branch=York, Period=2006")
    benchmark(instance.is_equal_or_subordinate_to, policy)


def test_fig2_matching_cost_vs_depth(benchmark):
    """Matching cost grows with name depth (linear component count)."""
    rows = []
    for depth in (2, 8, 32):
        policy = ContextName(
            ContextName.parse(
                ", ".join(f"L{i}=!" for i in range(depth))
            ).components
        )
        instance = ContextName.parse(
            ", ".join(f"L{i}=v{i}" for i in range(depth))
        )
        assert instance.is_equal_or_subordinate_to(policy)
        rows.append([depth, "matches"])
    emit(
        "F2_matching_depth",
        format_rows(["context depth", "result"], rows),
    )

    deep_policy = ContextName.parse(", ".join(f"L{i}=!" for i in range(32)))
    deep_instance = ContextName.parse(
        ", ".join(f"L{i}=v{i}" for i in range(32))
    )
    benchmark(deep_instance.is_equal_or_subordinate_to, deep_policy)


def test_fig2_instantiate_cost(benchmark):
    policy = ContextName.parse("Branch=*, Period=!, Desk=!, Till=!")
    instance = ContextName.parse("Branch=York, Period=2006, Desk=D1, Till=3")
    effective = benchmark(policy.instantiate, instance)
    assert str(effective) == "Branch=*, Period=2006, Desk=D1, Till=3"


def test_fig2_policy_selection_vs_policy_count(benchmark):
    """Step-1 policy selection over a 200-policy set."""
    from repro.core import MMER, MSoDPolicy, MSoDPolicySet, Role

    policies = []
    for index in range(200):
        policies.append(
            MSoDPolicy(
                ContextName.parse(f"Dept=D{index}, Task=!"),
                mmers=[
                    MMER(
                        [Role("employee", f"A{index}"), Role("employee", f"B{index}")],
                        2,
                    )
                ],
                policy_id=f"policy-{index}",
            )
        )
    policy_set = MSoDPolicySet(policies)
    instance = ContextName.parse("Dept=D150, Task=t9")
    matched = benchmark(policy_set.matching, instance)
    assert len(matched) == 1

"""BENCH_scale — bank-scale (10^6 users) retained-ADI store comparison.

Drives the :mod:`repro.workload.bank_scale` organisation (a million
users, 24 divisions, 192 roles, four-deep contexts, Zipf-skewed
traffic over a 5% active set) through the same multi-session preload
(retained history for every user, predating the measured window — the
inactive millions the always-resident stores must index and the tier
leaves warm) and the same seeded decision stream against three store
backends — always-resident ``memory``, always-
resident ``sqlite`` and the hot/warm ``tiered`` split — and reports,
per leg: closed-loop throughput, service-time p50/p99, peak RSS
(``ru_maxrss``), an open-loop phase at a fraction of the measured
closed-loop rate (latency measured from *scheduled arrival*, so
overload is reported honestly), and the store's ``stats()`` counters.

Each leg runs in its **own subprocess** so ``ru_maxrss`` is that
store's peak alone, not the max over every store tried in one process.
Store construction goes through the unified spec parser
(``repro.api.open_store``), exactly like the CLI and the server.

Two gates ride along (both run in ``--smoke``):

* **differential**: every leg must produce the identical decision-
  effect stream (sha256 over effect/adds/purges per request, across
  two mid-run policy epoch swaps) and the identical final store
  fingerprint — the tiered store is bit-identical to the SQLite
  oracle through eviction/rehydration cycles or this bench fails;
* **RSS bound**: the tiered leg's peak RSS must stay ≤ 25% of the
  always-resident sqlite leg's (full runs; smoke prints the ratio).

Results land in ``benchmarks/results/BENCH_scale.json``::

    PYTHONPATH=src python benchmarks/bench_scale.py          # 10^6 users
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke  # CI (10^4)
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time

LEGS = ("memory", "sqlite", "tiered")
BATCH_CHUNK = 512
RSS_BOUND_FRACTION = 0.25
DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_scale.json"
)


def leg_store_spec(leg: str, workdir: str, hot_users: int, shards: int) -> str:
    if leg == "memory":
        return "memory"
    if leg == "sqlite":
        return f"sqlite:{os.path.join(workdir, 'adi-sqlite.db')}"
    warm = os.path.join(workdir, "adi-tiered.db")
    return f"tiered:sqlite:{warm}?hot_users={hot_users}&shards={shards}"


def make_config(args: argparse.Namespace):
    from repro.workload import BankScaleConfig

    return BankScaleConfig(
        n_users=args.users,
        active_fraction=args.active_fraction,
        seed=args.seed,
    )


def extended_policy_set(config):
    """The base set plus duty pairs for divisions the traffic never
    touches: swapping to it (and back) advances the policy epoch and
    invalidates every store's effective-context memos without changing
    a single decision — the differential gate then proves the tiered
    store re-derives identical answers across epochs."""
    from repro.core.constraints import MMER
    from repro.core.context import ContextName
    from repro.core.policy import MSoDPolicy, MSoDPolicySet
    from repro.workload import bank_scale_policy_set, duty_roles

    base = bank_scale_policy_set(config)
    extra = []
    for division in (900, 901):
        extra.append(
            MSoDPolicy(
                ContextName.parse(
                    f"Region=*, Division=D{division:02d}, Branch=*, Period=!"
                ),
                mmers=[MMER(list(duty_roles(division, 0)), 2)],
                policy_id=f"bank-extra-D{division}",
            )
        )
    return MSoDPolicySet(list(base.policies) + extra)


def store_fingerprint(store) -> str:
    """Order-independent sha256 of the store's logical contents.

    Record ids are backend-assigned and excluded, like
    :func:`repro.core.store_digest`; computed streaming so the interim
    list, not the full digest tuple, is the only transient cost (and
    only after RSS has been sampled).
    """
    lines = []
    for record in store.records():
        roles = ",".join(sorted(str(role) for role in record.roles))
        lines.append(
            f"{record.user_id}|{roles}|{record.operation}|{record.target}|"
            f"{record.context_instance}|{record.request_id}"
        )
    lines.sort()
    hasher = hashlib.sha256()
    for line in lines:
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def percentile_ms(samples, fraction: float) -> float:
    from repro.workload import percentile

    return round(percentile(samples, fraction) * 1000.0, 3)


def run_leg(args: argparse.Namespace) -> dict:
    from repro.api import open_store
    from repro.core import MSoDEngine
    from repro.workload import (
        bank_scale_history,
        bank_scale_policy_set,
        bank_scale_request_stream,
        run_open_loop,
    )

    config = make_config(args)
    base_set = bank_scale_policy_set(config)
    spec = leg_store_spec(args.leg, args.workdir, args.hot_users, args.shards)
    store = open_store(spec)
    engine = MSoDEngine(base_set, store)
    extended = extended_policy_set(config)

    # Multi-session preload: retained history for the WHOLE population,
    # predating the measured window.  The always-resident backends will
    # index all of it; the tier leaves inactive users in the warm layer.
    preload_start = time.perf_counter()
    preloaded = 0
    if args.history_per_user:
        history = bank_scale_history(config, args.history_per_user)
        while True:
            chunk = []
            for record in history:
                chunk.append(record)
                if len(chunk) >= 4096:
                    break
            if not chunk:
                break
            with store.batch():
                for record in chunk:
                    store.add(record)
            preloaded += len(chunk)
    preload_elapsed = time.perf_counter() - preload_start

    effects = hashlib.sha256()
    grants = denies = 0

    def decide(request):
        nonlocal grants, denies
        decision = engine.check(request)
        if decision.granted:
            grants += 1
        else:
            denies += 1
        effects.update(
            f"{decision.effect}|{decision.records_added}|"
            f"{decision.records_purged}\n".encode("utf-8")
        )
        return decision

    total = args.requests + args.open_requests
    stream = bank_scale_request_stream(config, total)
    swap_points = {args.requests // 2: extended, (args.requests * 3) // 4: base_set}

    service_times: list[float] = []
    issued = 0
    closed_start = time.perf_counter()
    while issued < args.requests:
        chunk = min(BATCH_CHUNK, args.requests - issued)
        target = None
        for offset in range(issued, issued + chunk):
            if offset in swap_points:
                target = offset
                chunk = offset - issued
                break
        if chunk:
            with store.batch():
                for _ in range(chunk):
                    began = time.perf_counter()
                    decide(next(stream))
                    service_times.append(time.perf_counter() - began)
            issued += chunk
        if target is not None:
            engine.swap_policy(swap_points.pop(target), force=True)
    closed_elapsed = max(time.perf_counter() - closed_start, 1e-9)
    closed_rps = args.requests / closed_elapsed

    open_report = None
    if args.open_requests:
        remaining = (next(stream) for _ in range(args.open_requests))
        open_report = run_open_loop(
            decide, remaining, max(closed_rps * args.open_rate_fraction, 1.0)
        ).to_dict()

    stats = store.stats()
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    fingerprint = store_fingerprint(store)
    store.close()
    return {
        "leg": args.leg,
        "store_spec": spec,
        "requests": args.requests,
        "open_requests": args.open_requests,
        "preloaded_records": preloaded,
        "preload_s": round(preload_elapsed, 3),
        "grants": grants,
        "denies": denies,
        "closed_loop": {
            "throughput_rps": round(closed_rps, 1),
            "elapsed_s": round(closed_elapsed, 3),
            "service_p50_ms": percentile_ms(service_times, 0.50),
            "service_p99_ms": percentile_ms(service_times, 0.99),
        },
        "open_loop": open_report,
        "ru_maxrss_kb": rss_kb,
        "effects_sha256": effects.hexdigest(),
        "store_sha256": fingerprint,
        "store_stats": stats,
    }


def run_parent(args: argparse.Namespace) -> int:
    from repro.workload import BankScaleConfig  # noqa: F401 - import check

    started = time.time()
    legs: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench-scale-") as workdir:
        for leg in LEGS:
            leg_output = os.path.join(workdir, f"leg-{leg}.json")
            command = [
                sys.executable,
                os.path.abspath(__file__),
                "--leg", leg,
                "--leg-output", leg_output,
                "--workdir", workdir,
                "--users", str(args.users),
                "--requests", str(args.requests),
                "--open-requests", str(args.open_requests),
                "--history-per-user", str(args.history_per_user),
                "--hot-users", str(args.hot_users),
                "--shards", str(args.shards),
                "--active-fraction", str(args.active_fraction),
                "--open-rate-fraction", str(args.open_rate_fraction),
                "--seed", str(args.seed),
            ]
            print(f"[bench_scale] running {leg} leg...", flush=True)
            completed = subprocess.run(command)
            if completed.returncode != 0:
                print(f"[bench_scale] {leg} leg failed", file=sys.stderr)
                return completed.returncode
            with open(leg_output, encoding="utf-8") as handle:
                legs[leg] = json.load(handle)
            point = legs[leg]
            print(
                f"[bench_scale] {leg}: "
                f"{point['closed_loop']['throughput_rps']:.0f} rps, "
                f"p99 {point['closed_loop']['service_p99_ms']:.3f} ms, "
                f"rss {point['ru_maxrss_kb'] / 1024:.0f} MiB",
                flush=True,
            )

    effects = {leg: legs[leg]["effects_sha256"] for leg in LEGS}
    stores = {leg: legs[leg]["store_sha256"] for leg in LEGS}
    identical = len(set(effects.values())) == 1 and len(set(stores.values())) == 1
    rss_fraction = (
        legs["tiered"]["ru_maxrss_kb"] / legs["sqlite"]["ru_maxrss_kb"]
        if legs["sqlite"]["ru_maxrss_kb"]
        else float("inf")
    )
    tiered_stats = legs["tiered"]["store_stats"]
    report = {
        "benchmark": "scale",
        "smoke": args.smoke,
        "config": {
            "n_users": args.users,
            "requests": args.requests,
            "open_requests": args.open_requests,
            "history_per_user": args.history_per_user,
            "active_fraction": args.active_fraction,
            "hot_users": args.hot_users,
            "hot_shards": args.shards,
            "seed": args.seed,
        },
        "legs": legs,
        "differential": {
            "identical": identical,
            "effects_sha256": effects,
            "store_sha256": stores,
        },
        "rss": {
            "tiered_over_sqlite": round(rss_fraction, 4),
            "bound": RSS_BOUND_FRACTION,
            "within_bound": rss_fraction <= RSS_BOUND_FRACTION,
        },
        "tiered": {
            "evictions": tiered_stats.get("evictions", 0),
            "hydrations": tiered_stats.get("hydrations", 0),
            "resident_users": tiered_stats.get("resident_users", 0),
        },
        "elapsed_s": round(time.time() - started, 1),
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
    }

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    print(
        f"[bench_scale] differential gate: "
        f"{'identical' if identical else 'DIVERGED'} across {', '.join(LEGS)}"
    )
    print(
        f"[bench_scale] tiered rss = {rss_fraction:.1%} of sqlite "
        f"(bound {RSS_BOUND_FRACTION:.0%}), "
        f"{report['tiered']['evictions']} evictions, "
        f"{report['tiered']['hydrations']} hydrations"
    )
    print(f"  wrote {args.output}")
    if not identical:
        return 1
    # The RSS bound is an acceptance gate for the full-scale run; smoke
    # workloads are too small for the interpreter baseline not to
    # dominate both legs, so smoke only *reports* the ratio but still
    # requires the tier to actually cycle users.
    if args.smoke:
        if not report["tiered"]["evictions"]:
            print(
                "[bench_scale] smoke gate: tiered leg never evicted "
                "(hot cap too large for the workload?)",
                file=sys.stderr,
            )
            return 1
        return 0
    return 0 if report["rss"]["within_bound"] else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--open-requests", type=int, default=None)
    parser.add_argument("--history-per-user", type=int, default=None)
    parser.add_argument("--hot-users", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--active-fraction", type=float, default=0.05)
    parser.add_argument("--open-rate-fraction", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=29)
    parser.add_argument("--leg", choices=LEGS, help=argparse.SUPPRESS)
    parser.add_argument("--leg-output", help=argparse.SUPPRESS)
    parser.add_argument("--workdir", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.smoke:
        defaults = dict(
            users=10_000, requests=30_000, open_requests=3_000,
            history_per_user=2, hot_users=64, shards=4,
        )
    else:
        defaults = dict(
            users=1_000_000, requests=1_000_000, open_requests=100_000,
            history_per_user=4, hot_users=10_000, shards=8,
        )
    for key, value in defaults.items():
        if getattr(args, key) is None:
            setattr(args, key, value)

    if args.leg:
        result = run_leg(args)
        with open(args.leg_output, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        return 0
    return run_parent(args)


if __name__ == "__main__":
    sys.exit(main())

"""X1 — Section 3 / Appendix A: XML policy parsing and validation.

Round-trips the two policies exactly as the paper prints them, then
measures parse/write/validate throughput as policy documents grow.
"""

import pytest
from conftest import emit, format_rows

from repro.core import MMER, ContextName, MSoDPolicy, MSoDPolicySet, Role
from repro.xmlpolicy import (
    BANK_POLICY_XML,
    COMBINED_POLICY_XML,
    TAX_REFUND_POLICY_XML,
    parse_policy_set,
    validate_policy_document,
    write_policy_set,
)


def synthetic_policy_set(n_policies):
    policies = []
    for index in range(n_policies):
        policies.append(
            MSoDPolicy(
                ContextName.parse(f"Dept=D{index}, Task=!"),
                mmers=[
                    MMER(
                        [
                            Role("employee", f"Role{index}A"),
                            Role("employee", f"Role{index}B"),
                            Role("employee", f"Role{index}C"),
                        ],
                        2,
                    )
                ],
                policy_id=f"p{index}",
            )
        )
    return MSoDPolicySet(policies)


def test_x1_paper_policies_reproduction(benchmark):
    """Parse the published Section-3 policies and report their contents."""
    rows = []
    for name, xml in (
        ("bank cash processing", BANK_POLICY_XML),
        ("tax refund", TAX_REFUND_POLICY_XML),
    ):
        policy_set = parse_policy_set(xml)
        policy = policy_set.policies[0]
        rows.append(
            [
                name,
                str(policy.business_context),
                str(policy.first_step or "-"),
                str(policy.last_step or "-"),
                len(policy.mmers),
                len(policy.mmeps),
                validate_policy_document(xml) == [],
            ]
        )
    table = format_rows(
        ["policy", "business context", "first step", "last step",
         "#MMER", "#MMEP", "valid"],
        rows,
    )
    emit("X1_paper_policies", table)
    assert all(row[-1] for row in rows)

    policy_set = benchmark(parse_policy_set, COMBINED_POLICY_XML)
    assert len(policy_set) == 2


@pytest.mark.parametrize("n_policies", [10, 100])
def test_x1_parse_throughput(benchmark, n_policies):
    xml = write_policy_set(synthetic_policy_set(n_policies))
    policy_set = benchmark(parse_policy_set, xml)
    assert len(policy_set) == n_policies


def test_x1_write_throughput(benchmark):
    policy_set = synthetic_policy_set(100)
    xml = benchmark(write_policy_set, policy_set)
    assert xml.count("<MSoDPolicy ") == 100


def test_x1_validate_throughput(benchmark):
    xml = write_policy_set(synthetic_policy_set(100))
    problems = benchmark(validate_policy_document, xml)
    assert problems == []


def test_x1_permis_policy_round_trip(benchmark):
    """The enclosing PERMIS XML policy (with embedded MSoD component)."""
    from repro.core import Privilege
    from repro.permis import (
        PermisPolicyBuilder,
        parse_permis_policy,
        write_permis_policy,
    )

    builder = PermisPolicyBuilder()
    for index in range(50):
        role = Role("employee", f"R{index}")
        builder.allow_assignment(
            "cn=soa,o=org,c=gb", [role], "o=org,c=gb"
        ).grant(role, [Privilege(f"op{index}", f"t://{index}")])
    policy = builder.with_msod(synthetic_policy_set(20)).build()
    xml = write_permis_policy(policy)

    restored = benchmark(parse_permis_policy, xml)
    assert len(restored.assignment_rules) == 50
    assert len(restored.msod_policy_set) == 20

"""E2 — Example 2 (tax refund): reproduction + workflow throughput.

Reproduces every separation rule of the four-task process from the
paper's own Section-3 XML policy, then measures the cost of a complete
compliant process instance through PEP → PDP → MSoD.
"""

import itertools

from conftest import emit, format_rows

from repro.api import open_pdp
from repro.core import (
    ContextName,
    Privilege,
    Role,
)
from repro.framework import (
    PolicyEnforcementPoint,
    ReferenceRBACMSoDPDP,
    RoleTargetAccessPolicy,
    SimulatedClock,
)
from repro.workflow import ProcessInstance, tax_refund_process
from repro.xmlpolicy import tax_refund_policy_set

CLERK = Role("employee", "Clerk")
MANAGER = Role("employee", "Manager")
PREPARE = Privilege("prepareCheck", "http://www.myTaxOffice.com/Check")
APPROVE = Privilege("approve/disapproveCheck", "http://www.myTaxOffice.com/Check")
COMBINE = Privilege("combineResults", "http://secret.location.com/results")
CONFIRM = Privilege("confirmCheck", "http://secret.location.com/audit")

_IDS = itertools.count(1)


def build_pep():
    access = RoleTargetAccessPolicy(
        {CLERK: [PREPARE, CONFIRM], MANAGER: [APPROVE, COMBINE]}
    )
    engine = open_pdp(tax_refund_policy_set()).engine
    return PolicyEnforcementPoint(
        ReferenceRBACMSoDPDP(access, engine), SimulatedClock()
    )


def run_compliant_instance(pep):
    instance = ProcessInstance(
        tax_refund_process(),
        f"bench-{next(_IDS)}",
        ContextName.parse("TaxOffice=Leeds"),
        pep,
    )
    instance.attempt("T1", "clerk1", [CLERK])
    instance.attempt("T2", "mgr1", [MANAGER])
    instance.attempt("T2", "mgr2", [MANAGER])
    instance.attempt("T3", "mgr3", [MANAGER])
    instance.attempt("T4", "clerk2", [CLERK])
    return instance


def test_example2_reproduction_table(benchmark):
    """Each attempted violation of Example 2, with its verdict."""
    pep = build_pep()
    instance = ProcessInstance(
        tax_refund_process(), "repro", ContextName.parse("TaxOffice=Leeds"), pep
    )
    rows = []

    def attempt(task, user, role, expectation):
        decision = instance.attempt(task, user, [role])
        rows.append(
            [
                task,
                user,
                decision.effect.upper(),
                expectation,
            ]
        )
        return decision

    attempt("T1", "clerk1", CLERK, "clerk prepares the check")
    attempt("T2", "mgr1", MANAGER, "first approval")
    d = attempt("T2", "mgr1", MANAGER, "same manager again -> must DENY")
    assert d.denied
    attempt("T2", "mgr2", MANAGER, "second approval by a different manager")
    d = attempt("T3", "mgr1", MANAGER, "approver collects results -> must DENY")
    assert d.denied
    attempt("T3", "mgr3", MANAGER, "fresh manager collects results")
    d = attempt("T4", "clerk1", CLERK, "preparing clerk confirms -> must DENY")
    assert d.denied
    d = attempt("T4", "clerk2", CLERK, "different clerk issues the check")
    assert d.granted
    assert instance.is_complete()

    table = format_rows(["task", "user", "verdict", "paper rule"], rows)
    emit("E2_taxrefund_rules", table)

    # Throughput of a full compliant instance (5 PDP decisions).
    pep2 = build_pep()
    result = benchmark(run_compliant_instance, pep2)
    assert result.is_complete()


def test_example2_store_stays_bounded(benchmark):
    """confirmCheck is the last step: completed instances leave no
    retained ADI, so the store does not grow with completed processes."""
    pep = build_pep()
    for _ in range(100):
        run_compliant_instance(pep)
    store = pep.pdp.msod_engine.store
    assert store.count() == 0

    counts = benchmark(store.count)
    assert counts == 0


def test_example2_open_instances_grow_linearly(benchmark):
    """Instances that never reach the last step retain history."""
    pep = build_pep()
    store = pep.pdp.msod_engine.store
    rows = []

    def grow():
        for n_open in (10, 50, 100):
            start = store.count()
            for _ in range(n_open):
                instance = ProcessInstance(
                    tax_refund_process(),
                    f"open-{next(_IDS)}",
                    ContextName.parse("TaxOffice=Leeds"),
                    pep,
                )
                instance.attempt("T1", "clerk1", [CLERK])
                instance.attempt("T2", "mgr1", [MANAGER])
            rows.append([n_open, store.count() - start])

    benchmark.pedantic(grow, rounds=1, iterations=1)
    rows[:] = rows[:3]
    table = format_rows(["new open instances", "retained records added"], rows)
    emit("E2_open_instance_growth", table)
    # Three retained records per open instance: the T1 context-start
    # record, T1's MMEP match record, and one T2 approval record.
    assert rows[0][1] == 30
